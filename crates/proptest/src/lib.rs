//! A workspace-local property-testing shim.
//!
//! Hermetic build environments cannot fetch the real `proptest` crate, so
//! this crate implements the subset the workspace's tests use: the
//! [`proptest!`] macro over integer-range strategies, `ProptestConfig`
//! case counts, and the `prop_assert!`/`prop_assert_eq!` assertion forms.
//! Case generation is deterministic (seeded per test by the strategy
//! expressions), so failures always reproduce.

pub mod collection;
pub mod strategy;

/// Per-block configuration; only the case count is meaningful here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

/// Failure raised by the `prop_assert*` macros; carries the rendered
/// assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Declares a block of property tests.
///
/// Each function's arguments are drawn from range strategies, `config.cases`
/// times; the body may use `prop_assert!`-family macros, which abort just
/// the failing case with a descriptive panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Derive a per-test seed from the test name so distinct
            // properties explore distinct streams.
            let mut __state: u64 = stringify!($name)
                .bytes()
                .fold(0x51AB_CD00u64, |acc, b| {
                    acc.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64)
                });
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strategy), &mut __state);)*
                let __args: ::std::vec::Vec<::std::string::String> = ::std::vec![
                    $(::std::format!("{} = {:?}", stringify!($arg), $arg)),*
                ];
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed on case {}/{} ({}): {}",
                        stringify!($name),
                        __case + 1,
                        config.cases,
                        __args.join(", "),
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in 5usize..9) {
            prop_assert!(x < 100);
            prop_assert!((5..9).contains(&y), "y = {} escaped", y);
            prop_assert_eq!(y, y);
            prop_assert_ne!(y + 1, y);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 1u32..4) {
            prop_assert!((1..4).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_case_context() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
