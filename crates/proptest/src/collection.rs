//! Collection strategies.

use crate::strategy::Strategy;

/// A strategy producing `Vec`s of a fixed length drawn from an element
/// strategy.
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

/// Generates vectors of exactly `len` elements from `element`.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, state: &mut u64) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.pick(state)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length_vectors() {
        let strat = vec(0u32..10, 12);
        let mut state = 3u64;
        let v = strat.pick(&mut state);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn maps_compose_with_vectors() {
        let strat = vec(-1.0f32..1.0, 6).prop_map(|data| data.iter().sum::<f32>());
        let mut state = 4u64;
        let total = strat.pick(&mut state);
        assert!(total.abs() <= 6.0);
    }
}
