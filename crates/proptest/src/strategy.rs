//! Value-generation strategies.
//!
//! A strategy deterministically maps an evolving `u64` state to a value.
//! Integer ranges are the only strategies the workspace's properties use;
//! the first two cases of every range probe its boundaries (low, high-1)
//! before switching to uniform draws, mirroring proptest's bias toward
//! edge cases.

/// A deterministic value source for one [`proptest!`](crate::proptest)
/// argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws the next value, advancing `state`.
    fn pick(&self, state: &mut u64) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn pick(&self, state: &mut u64) -> T {
        (self.f)(self.inner.pick(state))
    }
}

/// A full-domain strategy for `T`; build it with [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates any value of `T` (integers uniform over the domain, `bool`
/// fair).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(state: &mut u64) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn pick(&self, state: &mut u64) -> T {
        T::arbitrary(state)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(state: &mut u64) -> Self {
                next(state) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(state: &mut u64) -> Self {
        next(state) & 1 != 0
    }
}

fn next(state: &mut u64) -> u64 {
    // SplitMix64 step.
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let draw = next(state);
                // Bias the first draws of each stream toward the edges.
                match draw % 8 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start.wrapping_add((draw % span) as $t),
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn pick(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (next(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let span = self.end as f64 - self.start as f64;
                (self.start as f64 + unit * span) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_stay_in_range() {
        let mut state = 7u64;
        for _ in 0..500 {
            let v = (10u64..20).pick(&mut state);
            assert!((10..20).contains(&v));
            let w = (0usize..3).pick(&mut state);
            assert!(w < 3);
        }
    }

    #[test]
    fn edges_are_probed() {
        let mut state = 0u64;
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            match (5u32..9).pick(&mut state) {
                5 => saw_low = true,
                8 => saw_high = true,
                _ => {}
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn deterministic_given_state() {
        let mut a = 99u64;
        let mut b = 99u64;
        for _ in 0..50 {
            assert_eq!((0u64..1000).pick(&mut a), (0u64..1000).pick(&mut b));
        }
    }
}
