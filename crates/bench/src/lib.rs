//! Shared infrastructure for the experiment harnesses that regenerate
//! every table and figure of the ALMOST paper.
//!
//! Each `benches/*.rs` target is a `harness = false` binary that prints the
//! same rows/series the paper reports and writes CSV files under
//! `target/exp/`. Scale is selected with `ALMOST_SCALE=quick|paper`
//! (default `quick`); see `almost_core::config::Scale`.
//!
//! The attack harnesses (`sat_attack`, `sat_resilience`, `table2_attacks`)
//! and the figure harnesses (`fig4_sa_search`, `fig5_resynthesis`,
//! `transferability`) fan their independent rows out across cores on the
//! [`pool`] work-stealing pool; worker count follows `ALMOST_JOBS` (set
//! `ALMOST_JOBS=1` for the serial reference run — row content is
//! identical either way, wall-clock columns aside). The pool itself lives
//! in the `almost_pool` crate (the GIN trainer uses it too); the `pool`
//! path is kept as a re-export for the harnesses.

pub use almost_pool as pool;
pub use almost_telemetry as telemetry;

use almost_circuits::IscasBenchmark;
use almost_core::Scale;
use almost_locking::{LockedCircuit, LockingScheme, Rll};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// The benchmark set for a given experiment at the current scale.
pub fn experiment_benchmarks(scale: Scale, figure: bool) -> Vec<IscasBenchmark> {
    let paper7 = IscasBenchmark::PAPER_SEVEN.to_vec();
    // Figures 4/5 plot six circuits (c1355 is dropped in Fig. 4; Fig. 5
    // drops c6288); we keep one consistent six-circuit set for figures.
    let figure6 = vec![
        IscasBenchmark::C1908,
        IscasBenchmark::C2670,
        IscasBenchmark::C3540,
        IscasBenchmark::C5315,
        IscasBenchmark::C6288,
        IscasBenchmark::C7552,
    ];
    match (scale, figure) {
        (Scale::Paper, false) => paper7,
        (Scale::Paper, true) => figure6,
        (Scale::Quick, false) => paper7,
        (Scale::Quick, true) => vec![
            IscasBenchmark::C1908,
            IscasBenchmark::C2670,
            IscasBenchmark::C3540,
        ],
    }
}

/// Locks a benchmark with RLL deterministically (seed derived from the
/// benchmark name and key size).
pub fn lock_benchmark(bench: IscasBenchmark, key_size: usize) -> LockedCircuit {
    let seed = bench.name().bytes().fold(0xA105u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(b as u64)
    }) ^ key_size as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let aig = bench.build();
    Rll::new(key_size)
        .lock(&aig, &mut rng)
        .unwrap_or_else(|e| panic!("{bench} cannot absorb {key_size} key gates: {e}"))
}

/// Locks a benchmark with an arbitrary scheme deterministically (seed
/// derived from the benchmark and scheme names plus `salt`) — the entry
/// point the SAT-resilience harnesses use for Anti-SAT/SARLock and
/// stacked compound locks.
pub fn lock_benchmark_with(
    scheme: &dyn LockingScheme,
    bench: IscasBenchmark,
    salt: u64,
) -> LockedCircuit {
    let seed = bench
        .name()
        .bytes()
        .chain(scheme.name().bytes())
        .fold(0xA105u64, |acc, b| {
            acc.wrapping_mul(131).wrapping_add(b as u64)
        })
        ^ salt;
    let mut rng = StdRng::seed_from_u64(seed);
    let aig = bench.build();
    scheme
        .lock(&aig, &mut rng)
        .unwrap_or_else(|e| panic!("{bench} cannot be locked with {}: {e}", scheme.name()))
}

/// The output directory for experiment CSVs (`target/exp`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("exp");
    fs::create_dir_all(&dir).expect("create target/exp");
    dir
}

/// Writes rows of comma-joined values with a header line.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("  [csv] {}", path.display());
}

/// Formats a fraction as a percentage with two decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Prints an experiment banner with the active scale.
pub fn banner(title: &str, scale: Scale) {
    println!();
    println!("=== {title} (scale: {}) ===", scale.label());
}

/// Standard harness telemetry setup: stderr progress + end-of-run summary
/// (with `BENCH_<name>.json` next to the CSVs), plus JSONL and Chrome
/// trace sinks when `ALMOST_TRACE=<path>` is set. Pair with [`observed`]
/// or call [`telemetry::finish`] before exit.
pub fn observe(name: &str) {
    telemetry::init_harness(name, Some(&out_dir()));
}

/// Runs a harness body under [`observe`]/[`telemetry::finish`], so every
/// exit path flushes the sinks and renders the summary table.
pub fn observed(name: &str, body: impl FnOnce()) {
    observe(name);
    body();
    telemetry::finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_benchmark_is_deterministic() {
        let a = lock_benchmark(IscasBenchmark::C432, 16);
        let b = lock_benchmark(IscasBenchmark::C432, 16);
        assert_eq!(a.key, b.key);
        assert_eq!(a.aig.num_ands(), b.aig.num_ands());
    }

    #[test]
    fn lock_benchmark_with_is_deterministic_and_scheme_aware() {
        use almost_locking::SarLock;
        let scheme = SarLock::new(6);
        let a = lock_benchmark_with(&scheme, IscasBenchmark::C432, 7);
        let b = lock_benchmark_with(&scheme, IscasBenchmark::C432, 7);
        assert_eq!(a.key, b.key);
        let c = lock_benchmark_with(&Rll::new(6), IscasBenchmark::C432, 7);
        assert_ne!(a.key, c.key, "scheme name feeds the seed");
    }

    #[test]
    fn benchmark_sets_are_nonempty() {
        for scale in [Scale::Quick, Scale::Paper] {
            for figure in [false, true] {
                assert!(!experiment_benchmarks(scale, figure).is_empty());
            }
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.00");
        assert_eq!(pct(0.57521), "57.52");
    }
}
