//! Table II: attack accuracy (%) of OMLA, SCOPE and the redundancy attack
//! on locked circuits synthesised with `resyn2` vs. the ALMOST-generated
//! recipe — plus the oracle-guided SAT attack as the contrast column.
//!
//! Paper shape to reproduce: OMLA drops from well-above-chance on resyn2
//! to ~50% on ALMOST recipes; SCOPE and redundancy fluctuate around or
//! below chance on both, with ALMOST never *helping* the attacks. The SAT
//! attack, which the ALMOST threat model excludes by assuming no oracle,
//! recovers a functionally correct key under *both* recipes — synthesis
//! tuning is a defence against learning, not against oracle access.

use almost_aig::Script;
use almost_attacks::{
    AttackTarget, DoubleDip, Omla, OmlaConfig, OracleGuidedAttack, OracleLessAttack, Redundancy,
    RedundancyConfig, SatAttack, SatAttackConfig, Scope, ScopeConfig,
};
use almost_bench::{
    banner, experiment_benchmarks, lock_benchmark, lock_benchmark_with, pct, pool, telemetry,
    write_csv,
};
use almost_core::{generate_secure_recipe, train_proxy, ProxyKind, Recipe, Scale};
use almost_locking::{CircuitOracle, LockingScheme, Rll, SarLock, Stacked};

fn main() {
    almost_bench::observed("table2_attacks", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("Table II: SOTA attacks, resyn2 vs ALMOST recipe", scale);

    let omla_cfg = |scale: Scale| {
        let p = scale.proxy_config(0);
        OmlaConfig {
            hidden: p.hidden,
            layers: p.layers,
            epochs: p.epochs,
            batch_size: p.batch_size,
            learning_rate: p.learning_rate,
            relock_key_size: p.relock_key_size,
            training_samples: p.initial_samples,
            subgraph: p.subgraph,
            functional_signatures: false,
            seed: 0x0317A,
        }
    };

    // Every (key-size, bench) cell trains its own proxy and runs its own
    // attacks — independent work, fanned out on the worker pool. Each job
    // returns (console lines, CSV rows, OMLA accuracy drop) and the
    // deterministic job order keeps the printed table and CSV stable.
    let mut jobs: Vec<(usize, almost_circuits::IscasBenchmark)> = Vec::new();
    for &key_size in scale.key_sizes() {
        for bench in experiment_benchmarks(scale, false) {
            jobs.push((key_size, bench));
        }
    }

    let cells: Vec<(Vec<String>, Vec<Vec<String>>, f64)> = pool::map_indexed(
        jobs,
        |_, (key_size, bench)| {
            let mut lines: Vec<String> = Vec::new();
            let mut rows: Vec<Vec<String>> = Vec::new();
            let locked = lock_benchmark(bench, key_size);
            // Defender side: train M* and search for S_ALMOST.
            let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(0x7AB2));
            let search = generate_secure_recipe(&locked, &proxy, &scale.sa_config(0x7AB2));
            let recipes = [("resyn2", Recipe::resyn2()), ("ALMOST", search.recipe)];

            let mut accs: Vec<(String, String, f64)> = Vec::new();
            for (recipe_name, recipe) in recipes {
                let target = AttackTarget::new(locked.clone(), recipe.as_script());
                let omla = Omla::new(omla_cfg(scale)).attack(&target);
                let scope = Scope::new(ScopeConfig {
                    max_bits: scale.attack_bit_sample(),
                    ..ScopeConfig::default()
                })
                .attack(&target);
                let redundancy = Redundancy::new(RedundancyConfig {
                    fault_samples: if scale == Scale::Paper { 24 } else { 4 },
                    max_bits: scale.attack_bit_sample().map(|b| b.min(4)),
                    ..RedundancyConfig::default()
                })
                .attack(&target);
                for out in [&omla, &scope, &redundancy] {
                    lines.push(format!(
                        "{:<8} {:>4} {:<10} {:<7} acc {:>6}%  (unresolved {})",
                        bench.name(),
                        key_size,
                        out.attack,
                        recipe_name,
                        pct(out.accuracy),
                        out.num_unresolved()
                    ));
                    rows.push(vec![
                        bench.name().into(),
                        key_size.to_string(),
                        out.attack.clone(),
                        recipe_name.into(),
                        pct(out.accuracy),
                    ]);
                    accs.push((out.attack.clone(), recipe_name.into(), out.accuracy));
                }

                // Contrast row: the oracle-guided SAT attack (budgeted so
                // SAT-hard structures like the c6288 multiplier cannot
                // stall the table; the dedicated `sat_attack` bench runs
                // the exact mode).
                let sat_oracle = CircuitOracle::from_locked(&target.locked);
                let sat = SatAttack::new(SatAttackConfig::approximate(16, 2_000))
                    .attack_with_oracle(&target, &sat_oracle);
                lines.push(format!(
                    "{:<8} {:>4} {:<10} {:<7} acc {:>6}%  ({} DIPs, functionally correct: {})",
                    bench.name(),
                    key_size,
                    sat.attack,
                    recipe_name,
                    pct(sat.accuracy),
                    sat.dip_count(),
                    sat.functionally_correct
                ));
                rows.push(vec![
                    bench.name().into(),
                    key_size.to_string(),
                    sat.attack.clone(),
                    recipe_name.into(),
                    pct(sat.accuracy),
                ]);
            }
            let get = |attack: &str, recipe: &str| {
                accs.iter()
                    .find(|(a, r, _)| a == attack && r == recipe)
                    .map(|(_, _, v)| *v)
                    .unwrap_or(0.0)
            };
            let omla_drop = get("OMLA", "resyn2") - get("OMLA", "ALMOST");

            // SAT-resilient contrast rows: the same benchmark under a
            // SARLock-over-RLL compound lock. The budgeted (AppSAT) SAT
            // attack stalls on the point function's DIP floor; Double DIP
            // strips it and resolves the base in a handful of queries.
            // Every solver call is conflict-budgeted so SAT-hard
            // structures (the c6288 multiplier) cannot stall the table;
            // Double DIP runs on the un-synthesised netlist, where the
            // constant-folded key residues stay small. (The defence
            // metric here is DIPs, not accuracy — the dedicated
            // `sat_resilience` harness prints the scaling table.)
            let compound = Stacked::new(Rll::new(8), SarLock::new(8));
            let locked = lock_benchmark_with(&compound, bench, key_size as u64);
            let deployed = AttackTarget::new(locked.clone(), Recipe::resyn2().as_script());
            let raw = AttackTarget::new(locked, Script::new());
            let sat_oracle = CircuitOracle::from_locked(&deployed.locked);
            let sat = SatAttack::new(SatAttackConfig::approximate(16, 2_000))
                .attack_with_oracle(&deployed, &sat_oracle);
            let dd_oracle = CircuitOracle::from_locked(&raw.locked);
            let dd = DoubleDip::budgeted(48, 50_000).attack_with_oracle(&raw, &dd_oracle);
            // Label each row with the recipe its netlist actually saw.
            for (out, recipe_label) in [(&sat, "resyn2"), (&dd, "none")] {
                let labelled = format!("{}@{}", out.attack, compound.name());
                lines.push(format!(
                    "{:<8} {:>4} {:<22} {:<7} acc {:>6}%  ({} DIPs vs 2^8 floor, functionally correct: {})",
                    bench.name(),
                    deployed.locked.key_size(),
                    labelled,
                    recipe_label,
                    pct(out.accuracy),
                    out.dip_count(),
                    out.functionally_correct
                ));
                rows.push(vec![
                    bench.name().into(),
                    deployed.locked.key_size().to_string(),
                    labelled,
                    recipe_label.into(),
                    pct(out.accuracy),
                ]);
            }
            // Liveness (stderr, completion order): cells take minutes
            // each and the ordered stdout table prints only after every
            // cell finishes, so stream this cell's result rows through
            // the event channel the moment they exist.
            for line in &lines {
                telemetry::progress(|| line.clone());
            }
            telemetry::cell_done(|| format!("{} k={}", bench.name(), key_size));
            (lines, rows, omla_drop)
        },
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut omla_drop = Vec::new();
    for (lines, cell_rows, drop) in cells {
        for line in lines {
            println!("{line}");
        }
        rows.extend(cell_rows);
        omla_drop.push(drop);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "mean OMLA accuracy drop (resyn2 -> ALMOST): {:+.2}%  (paper: 3%-12% drop, to ~50%)",
        mean(&omla_drop) * 100.0
    );

    write_csv(
        "table2_attacks.csv",
        "bench,key_size,attack,recipe,accuracy_pct",
        &rows,
    );
}
