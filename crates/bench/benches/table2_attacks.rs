//! Table II: attack accuracy (%) of OMLA, SCOPE and the redundancy attack
//! on locked circuits synthesised with `resyn2` vs. the ALMOST-generated
//! recipe — plus the oracle-guided SAT attack as the contrast column.
//!
//! Paper shape to reproduce: OMLA drops from well-above-chance on resyn2
//! to ~50% on ALMOST recipes; SCOPE and redundancy fluctuate around or
//! below chance on both, with ALMOST never *helping* the attacks. The SAT
//! attack, which the ALMOST threat model excludes by assuming no oracle,
//! recovers a functionally correct key under *both* recipes — synthesis
//! tuning is a defence against learning, not against oracle access.

use almost_attacks::{
    AttackTarget, Omla, OmlaConfig, OracleGuidedAttack, OracleLessAttack, Redundancy,
    RedundancyConfig, SatAttack, SatAttackConfig, Scope, ScopeConfig,
};
use almost_bench::{banner, experiment_benchmarks, lock_benchmark, pct, write_csv};
use almost_core::{generate_secure_recipe, train_proxy, ProxyKind, Recipe, Scale};
use almost_locking::CircuitOracle;

fn main() {
    let scale = Scale::from_env();
    banner("Table II: SOTA attacks, resyn2 vs ALMOST recipe", scale);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut omla_drop = Vec::new();

    let omla_cfg = |scale: Scale| {
        let p = scale.proxy_config(0);
        OmlaConfig {
            hidden: p.hidden,
            layers: p.layers,
            epochs: p.epochs,
            batch_size: p.batch_size,
            learning_rate: p.learning_rate,
            relock_key_size: p.relock_key_size,
            training_samples: p.initial_samples,
            subgraph: p.subgraph,
            seed: 0x0317A,
        }
    };

    for &key_size in scale.key_sizes() {
        for bench in experiment_benchmarks(scale, false) {
            let locked = lock_benchmark(bench, key_size);
            // Defender side: train M* and search for S_ALMOST.
            let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(0x7AB2));
            let search = generate_secure_recipe(&locked, &proxy, &scale.sa_config(0x7AB2));
            let recipes = [("resyn2", Recipe::resyn2()), ("ALMOST", search.recipe)];

            let mut accs: Vec<(String, String, f64)> = Vec::new();
            for (recipe_name, recipe) in recipes {
                let target = AttackTarget::new(locked.clone(), recipe.as_script());
                let omla = Omla::new(omla_cfg(scale)).attack(&target);
                let scope = Scope::new(ScopeConfig {
                    max_bits: scale.attack_bit_sample(),
                    ..ScopeConfig::default()
                })
                .attack(&target);
                let redundancy = Redundancy::new(RedundancyConfig {
                    fault_samples: if scale == Scale::Paper { 24 } else { 4 },
                    max_bits: scale.attack_bit_sample().map(|b| b.min(4)),
                    ..RedundancyConfig::default()
                })
                .attack(&target);
                for out in [&omla, &scope, &redundancy] {
                    println!(
                        "{:<8} {:>4} {:<10} {:<7} acc {:>6}%  (unresolved {})",
                        bench.name(),
                        key_size,
                        out.attack,
                        recipe_name,
                        pct(out.accuracy),
                        out.num_unresolved()
                    );
                    rows.push(vec![
                        bench.name().into(),
                        key_size.to_string(),
                        out.attack.clone(),
                        recipe_name.into(),
                        pct(out.accuracy),
                    ]);
                    accs.push((out.attack.clone(), recipe_name.into(), out.accuracy));
                }

                // Contrast row: the oracle-guided SAT attack (budgeted so
                // SAT-hard structures like the c6288 multiplier cannot
                // stall the table; the dedicated `sat_attack` bench runs
                // the exact mode).
                let sat_oracle = CircuitOracle::from_locked(&target.locked);
                let sat = SatAttack::new(SatAttackConfig::approximate(16, 2_000))
                    .attack_with_oracle(&target, &sat_oracle);
                println!(
                    "{:<8} {:>4} {:<10} {:<7} acc {:>6}%  ({} DIPs, functionally correct: {})",
                    bench.name(),
                    key_size,
                    sat.attack,
                    recipe_name,
                    pct(sat.accuracy),
                    sat.dip_count(),
                    sat.functionally_correct
                );
                rows.push(vec![
                    bench.name().into(),
                    key_size.to_string(),
                    sat.attack.clone(),
                    recipe_name.into(),
                    pct(sat.accuracy),
                ]);
            }
            let get = |attack: &str, recipe: &str| {
                accs.iter()
                    .find(|(a, r, _)| a == attack && r == recipe)
                    .map(|(_, _, v)| *v)
                    .unwrap_or(0.0)
            };
            omla_drop.push(get("OMLA", "resyn2") - get("OMLA", "ALMOST"));
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "mean OMLA accuracy drop (resyn2 -> ALMOST): {:+.2}%  (paper: 3%-12% drop, to ~50%)",
        mean(&omla_drop) * 100.0
    );

    write_csv(
        "table2_attacks.csv",
        "bench,key_size,attack,recipe,accuracy_pct",
        &rows,
    );
}
