//! Criterion performance benchmarks of the synthesis substrate itself:
//! per-pass throughput and full `resyn2` on the paper's circuits. These
//! are not a paper table — they document the cost model behind the SA
//! search budgets.

use almost_aig::{Pass, Script};
use almost_circuits::IscasBenchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_passes(c: &mut Criterion) {
    let aig = IscasBenchmark::C1355.build();
    let mut group = c.benchmark_group("passes_c1355");
    group.sample_size(10);
    for pass in Pass::ALL {
        group.bench_function(pass.command().replace(' ', "_"), |b| {
            b.iter(|| black_box(pass.apply(black_box(&aig))))
        });
    }
    group.finish();
}

fn bench_resyn2(c: &mut Criterion) {
    let mut group = c.benchmark_group("resyn2");
    group.sample_size(10);
    for bench in [IscasBenchmark::C432, IscasBenchmark::C1355] {
        let aig = bench.build();
        group.bench_function(bench.name(), |b| {
            b.iter(|| black_box(Script::resyn2().apply(black_box(&aig))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes, bench_resyn2);
criterion_main!(benches);
