//! §III-A transferability experiment: train two attack models M_S1 and
//! M_S2 on c5315 locked netlists synthesised with recipes S1 and S2, then
//! cross-evaluate on both test distributions T_S1 and T_S2.
//!
//! Paper numbers (key 64): acc(T_S1, M_S1) = 57.52 > acc(T_S1, M_S2) =
//! 52.27, and acc(T_S2, M_S2) = 58.91 > acc(T_S2, M_S1) = 53.78 — models
//! do not transfer across recipes, motivating the proxy model M\*.

use almost_attacks::{Omla, OmlaConfig};
use almost_bench::{banner, lock_benchmark, pct, pool, telemetry, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::{ProxyConfig, Recipe, Scale};

fn main() {
    almost_bench::observed("transferability", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("Transferability: accuracy(T_Si, M_Sj) on c5315", scale);
    let locked = lock_benchmark(IscasBenchmark::C5315, scale.key_sizes()[0]);
    let s1 = Recipe::resyn2();
    let s2 = Recipe::from_mnemonics("bsfWbSwFfb").expect("valid mnemonics");

    let p: ProxyConfig = scale.proxy_config(0x77);
    let omla = Omla::new(OmlaConfig {
        hidden: p.hidden,
        layers: p.layers,
        epochs: p.epochs,
        batch_size: p.batch_size,
        learning_rate: p.learning_rate,
        relock_key_size: p.relock_key_size,
        training_samples: p.initial_samples,
        subgraph: p.subgraph,
        functional_signatures: false,
        seed: 0x7A4,
    });

    let recipes = [("S1", &s1), ("S2", &s2)];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut matrix = [[0.0f64; 2]; 2];
    let deployments: Vec<_> = recipes.iter().map(|(_, r)| r.apply(&locked.aig)).collect();
    let positions: Vec<usize> = locked.key_input_positions().collect();

    // One job per attack model M_Sj (the expensive GIN training); each job
    // also evaluates its model on both test distributions. Jobs fan out on
    // the shared pool and come back in job order, so the printed lines and
    // CSV rows match a serial run.
    let jobs: Vec<usize> = (0..recipes.len()).collect();
    let per_model: Vec<Vec<f64>> = pool::map_indexed(jobs, |_, j| {
        let model = omla.train_model(&locked.aig, &recipes[j].1.as_script());
        let accs: Vec<f64> = deployments
            .iter()
            .map(|deployed| {
                let probs = omla.predict_bits(&model, deployed, &positions);
                let correct = probs
                    .iter()
                    .zip(locked.key.bits())
                    .filter(|(&prob, &bit)| (prob >= 0.5) == bit)
                    .count();
                correct as f64 / positions.len() as f64
            })
            .collect();
        // Liveness marker (stderr, completion order): the ordered output
        // prints only after both models finish.
        telemetry::cell_done(|| format!("M_{}", recipes[j].0));
        accs
    });

    for (j, (model_name, _)) in recipes.iter().enumerate() {
        for (i, (test_name, _)) in recipes.iter().enumerate() {
            let acc = per_model[j][i];
            matrix[i][j] = acc;
            println!("accuracy(T_{test_name}, M_{model_name}) = {}%", pct(acc));
            rows.push(vec![
                format!("T_{test_name}"),
                format!("M_{model_name}"),
                pct(acc),
            ]);
        }
    }

    println!();
    let diag = (matrix[0][0] + matrix[1][1]) / 2.0;
    let off = (matrix[0][1] + matrix[1][0]) / 2.0;
    println!(
        "mean on-recipe accuracy {}% vs cross-recipe {}%  (paper: on-recipe higher — no transfer)",
        pct(diag),
        pct(off)
    );

    write_csv("transferability.csv", "test_set,model,accuracy_pct", &rows);
}
