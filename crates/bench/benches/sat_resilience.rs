//! SAT-resilience harness: DIPs required vs. key size for the
//! point-function defence family, with the Double-DIP counter-attack.
//!
//! Literature shape to reproduce: RLL falls to the exact SAT attack with
//! DIP counts far below `2^k`; Anti-SAT and SARLock force the attack to
//! the exponential `2^k` / `2^k − 1` DIP floor (the defence metric is
//! DIPs required, not accuracy); Double DIP strips SARLock-over-RLL in
//! roughly the base scheme's DIP count — while Anti-SAT, whose wrong keys
//! flip in agreeing groups, resists it and keeps the exponential floor.
//!
//! Every (bench, key-size, scheme) row is independent — it builds its own
//! design, lock, oracle and solvers — so rows fan out across cores on
//! `almost_bench::pool`. Output row *content* is deterministic and ordered
//! the same whether the run is parallel or serial (`ALMOST_JOBS=1`); the
//! CI `perf-smoke` job diffs the two CSVs.

use almost_attacks::{
    render_dip_scaling, DipScalingRow, DoubleDip, DoubleDipConfig, SatAttack, SatAttackConfig,
    SatAttackMode, SolverStats,
};
use almost_bench::{banner, lock_benchmark_with, pool, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::Scale;
use almost_locking::{
    apply_key, AntiSat, CircuitOracle, LockedCircuit, LockingScheme, Rll, SarLock, Stacked,
};
use almost_sat::{check_equivalence_limited, Equivalence};

/// Conflict budget for the verification CEC of each row (never hangs the
/// harness; unresolved counts as not-correct).
const ROW_CEC_CONFLICTS: u64 = 50_000;

/// Key width of the RLL base under the stacked SARLock compound.
const STACK_BASE_BITS: usize = 8;

/// The scheme lineup of one (bench, key-size) cell. Schemes are built
/// inside the worker jobs (trait objects don't cross threads), so rows are
/// addressed by index into this lineup.
const NUM_SCHEMES: usize = 4;

fn scheme_for(idx: usize, k: usize) -> (Box<dyn LockingScheme>, Option<usize>) {
    match idx {
        0 => (Box::new(Rll::new(k)), None),
        1 => (Box::new(SarLock::new(k)), None),
        2 => (Box::new(AntiSat::new(k)), None),
        _ => (
            Box::new(Stacked::new(Rll::new(STACK_BASE_BITS), SarLock::new(k))),
            Some(STACK_BASE_BITS),
        ),
    }
}

fn exact_with_cap(max_iterations: usize) -> SatAttack {
    SatAttack::new(SatAttackConfig {
        mode: SatAttackMode::Exact,
        max_iterations,
        seed: 0x5A7,
    })
}

fn cec_ok(design: &almost_aig::Aig, locked: &LockedCircuit, key: &[bool]) -> bool {
    let restored = apply_key(&locked.aig, locked.key_input_start, key);
    check_equivalence_limited(design, &restored, ROW_CEC_CONFLICTS) == Some(Equivalence::Equivalent)
}

/// One rendered result row: the console line, the scaling-table row and
/// the CSV row, produced together so all three views agree.
type RenderedRow = (String, DipScalingRow, Vec<String>);

fn main() {
    almost_bench::observed("sat_resilience", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("SAT resilience: DIPs required vs key size", scale);
    let benches = match scale {
        Scale::Quick => vec![IscasBenchmark::C432],
        Scale::Paper => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
        ],
    };
    let key_sizes: &[usize] = match scale {
        Scale::Quick => &[4, 6, 8],
        Scale::Paper => &[4, 6, 8, 10],
    };

    let mut jobs: Vec<(IscasBenchmark, usize, usize)> = Vec::new();
    for &bench in &benches {
        for &k in key_sizes {
            for scheme_idx in 0..NUM_SCHEMES {
                jobs.push((bench, k, scheme_idx));
            }
        }
    }

    let results: Vec<Vec<RenderedRow>> = pool::map_indexed(jobs, |_, (bench, k, scheme_idx)| {
        let design = bench.build();
        // The exact attack gets a generous cap: past the 2^k ceiling
        // it would only be re-proving the floor the row already shows.
        let cap = (1usize << k) + 16;
        let (scheme, base_bits) = scheme_for(scheme_idx, k);
        let locked = lock_benchmark_with(scheme.as_ref(), bench, k as u64);
        let oracle = CircuitOracle::from_locked(&locked);
        let run = exact_with_cap(cap).run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        let sat_row = render_row(
            bench,
            scheme.name(),
            "SAT",
            k,
            run.iterations.len(),
            run.proved_exact,
            run.proved_exact && cec_ok(&design, &locked, &run.recovered),
            run.solver,
        );

        // Double DIP, same lock: for the stacked SARLock compound
        // the verdict is base-key recovery (overlay bits replaced
        // by ground truth before the CEC). Conflict-budgeted so a
        // resolution-hard instance degrades to an honest
        // `finished = false` row instead of stalling the harness.
        let dd_oracle = CircuitOracle::from_locked(&locked);
        let dd = DoubleDip::new(DoubleDipConfig {
            max_iterations: 2 * cap,
            conflict_budget: Some(200_000),
            ..DoubleDipConfig::default()
        })
        .run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &dd_oracle,
        );
        let mut base_key = dd.recovered.clone();
        if let Some(base) = base_bits {
            base_key[base..].copy_from_slice(&locked.key.bits()[base..]);
        }
        let dd_row = render_row(
            bench,
            scheme.name(),
            "DoubleDIP",
            k,
            dd.dip_count(),
            dd.two_dip_settled,
            dd.two_dip_settled && cec_ok(&design, &locked, &base_key),
            dd.solver,
        );
        vec![sat_row, dd_row]
    });

    let mut rows: Vec<DipScalingRow> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for (line, row, csv_row) in results.into_iter().flatten() {
        println!("{line}");
        rows.push(row);
        csv.push(csv_row);
    }

    println!("{}", render_dip_scaling(&rows));
    println!("(SARLock+RLL DoubleDIP rows verify *base-key* recovery: overlay bits");
    println!(" are replaced by ground truth before the CEC — the stripped point");
    println!(" function is exactly the corruption SARLock conceded.)");
    write_csv(
        "sat_resilience.csv",
        "bench,scheme,attack,key_size,dips,finished,correct,decisions,propagations,conflicts,restarts",
        &csv,
    );
}

#[allow(clippy::too_many_arguments)]
fn render_row(
    bench: IscasBenchmark,
    scheme: &str,
    attack: &str,
    k: usize,
    dips: usize,
    finished: bool,
    correct: bool,
    solver: SolverStats,
) -> RenderedRow {
    let line = format!(
        "{:<8} {:<14} {:<10} k={:<3} DIPs={:<5} finished={:<5} correct={:<5} conflicts={}",
        bench.name(),
        scheme,
        attack,
        k,
        dips,
        finished,
        correct,
        solver.conflicts
    );
    let row = DipScalingRow {
        scheme: scheme.into(),
        attack: attack.into(),
        key_size: k,
        dips,
        finished,
        correct,
        solver,
    };
    let csv_row = vec![
        bench.name().into(),
        scheme.into(),
        attack.into(),
        k.to_string(),
        dips.to_string(),
        finished.to_string(),
        correct.to_string(),
        solver.decisions.to_string(),
        solver.propagations.to_string(),
        solver.conflicts.to_string(),
        solver.restarts.to_string(),
    ];
    (line, row, csv_row)
}
