//! Fig. 4: simulated-annealing recipe search minimising attack accuracy to
//! ~50%, comparing the three accuracy evaluators (M\*, M_resyn2,
//! M_random).
//!
//! Paper shape to reproduce: with M_resyn2 the SA drops to ~50% quickly
//! (its accuracy estimates are unreliable off-distribution); with M\* the
//! search needs more iterations because the adversarially trained model
//! keeps seeing through weak recipes.
//!
//! Every (bench, evaluator) cell trains its own proxy and runs its own SA
//! search — independent work, fanned out on the shared worker pool
//! (`ALMOST_JOBS` sets the width; results are re-assembled in job order,
//! so the printed series and the CSV are identical to a serial run).

use almost_bench::{banner, experiment_benchmarks, lock_benchmark, pool, telemetry, write_csv};
use almost_core::{generate_secure_recipe, train_proxy, ProxyKind, Scale};

fn main() {
    almost_bench::observed("fig4_sa_search", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("Fig. 4: SA recipe search per evaluator", scale);
    let key_size = scale.key_sizes()[0];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut iters_to_50: Vec<(ProxyKind, f64)> = Vec::new();

    const KINDS: [ProxyKind; 3] = [ProxyKind::Adversarial, ProxyKind::Resyn2, ProxyKind::Random];
    let benches = experiment_benchmarks(scale, true);
    // Lock each benchmark once (deterministic) and share the locked
    // circuit across its three evaluator jobs.
    let lockeds: Vec<_> = benches
        .iter()
        .map(|&bench| lock_benchmark(bench, key_size))
        .collect();
    let mut jobs = Vec::new();
    for (&bench, locked) in benches.iter().zip(&lockeds) {
        for (i, kind) in KINDS.into_iter().enumerate() {
            jobs.push((bench, locked, i, kind));
        }
    }

    struct Cell {
        kind: ProxyKind,
        series: Vec<f64>,
        hit: usize,
        line: String,
        engine: almost_core::EngineStats,
    }
    let cells: Vec<Cell> = pool::map_indexed(jobs, |_, (bench, locked, i, kind)| {
        let proxy = train_proxy(locked, kind, &scale.proxy_config(0x41 + i as u64));
        let sa = scale.sa_config(0xF164 + i as u64);
        let result = generate_secure_recipe(locked, &proxy, &sa);
        // Candidates (proposal order) until the accuracy first dips
        // within 2% of 0.5.
        let budget = result.accuracy_series.len();
        let hit = result
            .accuracy_series
            .iter()
            .position(|a| (a - 0.5).abs() <= 0.02)
            .map(|p| p + 1)
            .unwrap_or(budget + 1);
        // "candidate" not "iteration": at ALMOST_PROPOSALS = K > 1 the
        // series carries K entries per temperature step, so the index is
        // a proposal-order candidate number (at K = 1 the two coincide
        // and match the paper's Fig. 4 x-axis).
        let line = format!(
            "  [{}] final acc {:.2}% recipe {} (reached ~50% at candidate {})",
            kind.label(),
            result.accuracy * 100.0,
            result.recipe,
            if hit <= budget {
                hit.to_string()
            } else {
                "never".into()
            }
        );
        // Liveness + cache markers (stderr, completion order): the
        // ordered table prints only after every pool cell finishes.
        telemetry::cell_done(|| format!("{} {}", bench.name(), kind.label()));
        telemetry::progress(|| {
            format!(
                "  [cache] {} {}: {}",
                bench.name(),
                kind.label(),
                result.engine.summary()
            )
        });
        Cell {
            kind,
            series: result.accuracy_series,
            hit,
            line,
            engine: result.engine,
        }
    });

    for (b, bench) in benches.iter().enumerate() {
        println!("\n{} (key {key_size}):", bench.name());
        println!("  cand  M*      M_resyn2  M_random");
        let per_bench = &cells[b * KINDS.len()..(b + 1) * KINDS.len()];
        for cell in per_bench {
            iters_to_50.push((cell.kind, cell.hit as f64));
            println!("{}", cell.line);
        }
        // Per-bench engine totals (summed over the three evaluator
        // cells), repeated on every CSV row of the bench.
        // (live_nodes is a per-trie point-in-time gauge — summing it
        // across the three engines would be meaningless, so it is left
        // at the first cell's value and not emitted.)
        let totals = per_bench
            .iter()
            .skip(1)
            .fold(per_bench[0].engine, |mut acc, c| {
                acc.cache.hits += c.engine.cache.hits;
                acc.cache.misses += c.engine.cache.misses;
                acc.cache.evictions += c.engine.cache.evictions;
                acc.candidates += c.engine.candidates;
                acc.elapsed += c.engine.elapsed;
                acc
            });
        let len = per_bench.iter().map(|c| c.series.len()).max().unwrap_or(0);
        for it in 0..len {
            let get = |c: &Cell| {
                c.series
                    .get(it)
                    .map(|a| format!("{a:.4}"))
                    .unwrap_or_default()
            };
            rows.push(vec![
                bench.name().into(),
                (it + 1).to_string(),
                get(&per_bench[0]),
                get(&per_bench[1]),
                get(&per_bench[2]),
                totals.cache.hits.to_string(),
                totals.cache.misses.to_string(),
                totals.cache.evictions.to_string(),
                format!("{:.2}", totals.candidates_per_sec()),
            ]);
        }
    }

    let mean_hit = |k: ProxyKind| {
        let v: Vec<f64> = iters_to_50
            .iter()
            .filter(|(kind, _)| *kind == k)
            .map(|(_, h)| *h)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!();
    println!(
        "mean candidates to reach ~50%: M* {:.1}, M_resyn2 {:.1}, M_random {:.1}",
        mean_hit(ProxyKind::Adversarial),
        mean_hit(ProxyKind::Resyn2),
        mean_hit(ProxyKind::Random)
    );
    println!("(paper: M* takes the most iterations — its estimates are hardest to fool)");

    write_csv(
        "fig4_sa_search.csv",
        "bench,candidate,acc_adversarial,acc_resyn2,acc_random,\
         cache_hits,cache_misses,cache_evictions,cands_per_sec",
        &rows,
    );
}
