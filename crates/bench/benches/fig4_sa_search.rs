//! Fig. 4: simulated-annealing recipe search minimising attack accuracy to
//! ~50%, comparing the three accuracy evaluators (M\*, M_resyn2,
//! M_random).
//!
//! Paper shape to reproduce: with M_resyn2 the SA drops to ~50% quickly
//! (its accuracy estimates are unreliable off-distribution); with M\* the
//! search needs more iterations because the adversarially trained model
//! keeps seeing through weak recipes.
//!
//! Every (bench, evaluator) cell trains its own proxy and runs its own SA
//! search — independent work, fanned out on the shared worker pool
//! (`ALMOST_JOBS` sets the width; results are re-assembled in job order,
//! so the printed series and the CSV are identical to a serial run).

use almost_bench::{banner, experiment_benchmarks, lock_benchmark, pool, write_csv};
use almost_core::{generate_secure_recipe, train_proxy, ProxyKind, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 4: SA recipe search per evaluator", scale);
    let key_size = scale.key_sizes()[0];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut iters_to_50: Vec<(ProxyKind, f64)> = Vec::new();

    const KINDS: [ProxyKind; 3] = [ProxyKind::Adversarial, ProxyKind::Resyn2, ProxyKind::Random];
    let benches = experiment_benchmarks(scale, true);
    // Lock each benchmark once (deterministic) and share the locked
    // circuit across its three evaluator jobs.
    let lockeds: Vec<_> = benches
        .iter()
        .map(|&bench| lock_benchmark(bench, key_size))
        .collect();
    let mut jobs = Vec::new();
    for (&bench, locked) in benches.iter().zip(&lockeds) {
        for (i, kind) in KINDS.into_iter().enumerate() {
            jobs.push((bench, locked, i, kind));
        }
    }

    struct Cell {
        kind: ProxyKind,
        series: Vec<f64>,
        hit: usize,
        line: String,
    }
    let cells: Vec<Cell> = pool::map_indexed(jobs, |_, (bench, locked, i, kind)| {
        let proxy = train_proxy(locked, kind, &scale.proxy_config(0x41 + i as u64));
        let sa = scale.sa_config(0xF164 + i as u64);
        let result = generate_secure_recipe(locked, &proxy, &sa);
        // Iterations until the accuracy first dips within 2% of 0.5.
        let hit = result
            .accuracy_series
            .iter()
            .position(|a| (a - 0.5).abs() <= 0.02)
            .map(|p| p + 1)
            .unwrap_or(sa.iterations + 1);
        let line = format!(
            "  [{}] final acc {:.2}% recipe {} (reached ~50% at iter {})",
            kind.label(),
            result.accuracy * 100.0,
            result.recipe,
            if hit <= sa.iterations {
                hit.to_string()
            } else {
                "never".into()
            }
        );
        // Liveness marker (stderr, completion order): the ordered table
        // prints only after every pool cell finishes.
        eprintln!("  [cell done] {} {}", bench.name(), kind.label());
        Cell {
            kind,
            series: result.accuracy_series,
            hit,
            line,
        }
    });

    for (b, bench) in benches.iter().enumerate() {
        println!("\n{} (key {key_size}):", bench.name());
        println!("  iter  M*      M_resyn2  M_random");
        let per_bench = &cells[b * KINDS.len()..(b + 1) * KINDS.len()];
        for cell in per_bench {
            iters_to_50.push((cell.kind, cell.hit as f64));
            println!("{}", cell.line);
        }
        let len = per_bench.iter().map(|c| c.series.len()).max().unwrap_or(0);
        for it in 0..len {
            let get = |c: &Cell| {
                c.series
                    .get(it)
                    .map(|a| format!("{a:.4}"))
                    .unwrap_or_default()
            };
            rows.push(vec![
                bench.name().into(),
                (it + 1).to_string(),
                get(&per_bench[0]),
                get(&per_bench[1]),
                get(&per_bench[2]),
            ]);
        }
    }

    let mean_hit = |k: ProxyKind| {
        let v: Vec<f64> = iters_to_50
            .iter()
            .filter(|(kind, _)| *kind == k)
            .map(|(_, h)| *h)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!();
    println!(
        "mean iterations to reach ~50%: M* {:.1}, M_resyn2 {:.1}, M_random {:.1}",
        mean_hit(ProxyKind::Adversarial),
        mean_hit(ProxyKind::Resyn2),
        mean_hit(ProxyKind::Random)
    );
    println!("(paper: M* takes the most iterations — its estimates are hardest to fool)");

    write_csv(
        "fig4_sa_search.csv",
        "bench,iteration,acc_adversarial,acc_resyn2,acc_random",
        &rows,
    );
}
