//! Table III: power/performance/area overhead (%) of ALMOST-synthesised
//! circuits vs. the locked baseline, under no optimisation (`-opt`) and
//! extreme optimisation (`+opt`).
//!
//! Paper shape to reproduce: area within ~±3%, power within ~±5%, delay
//! mostly small with occasional outliers (c2670 +18%, c7552 −15%).

use almost_bench::{banner, experiment_benchmarks, lock_benchmark, write_csv};
use almost_core::{generate_secure_recipe, train_proxy, ProxyKind, Recipe, Scale};
use almost_netlist::{analyze, map_aig, CellLibrary, MapConfig};

fn main() {
    almost_bench::observed("table3_ppa", run);
}

fn run() {
    let scale = Scale::from_env();
    banner(
        "Table III: PPA overhead of ALMOST vs locked baseline",
        scale,
    );
    let lib = CellLibrary::nangate45();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut area_ovh = Vec::new();
    let mut power_ovh = Vec::new();

    println!(
        "{:<8} {:>4} {:<5} {:>9} {:>9} {:>9}",
        "bench", "key", "opt", "area%", "delay%", "power%"
    );
    for &key_size in scale.key_sizes() {
        for bench in experiment_benchmarks(scale, false) {
            let locked = lock_benchmark(bench, key_size);
            let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(0x9A3));
            let search = generate_secure_recipe(&locked, &proxy, &scale.sa_config(0x9A3));
            // Baseline: the locked netlist as the paper uses it (resyn2-
            // synthesised locked design).
            let base_aig = Recipe::resyn2().apply(&locked.aig);
            let almost_aig = search.recipe.apply(&locked.aig);
            for (label, cfg) in [
                ("-opt", MapConfig::no_opt()),
                ("+opt", MapConfig::extreme_opt()),
            ] {
                let base_nl = map_aig(&base_aig, &lib, &cfg);
                let base = analyze(&base_nl, &base_aig, &lib, 8, 3);
                let alm_nl = map_aig(&almost_aig, &lib, &cfg);
                let alm = analyze(&alm_nl, &almost_aig, &lib, 8, 3);
                let (a, d, p) = alm.overhead_vs(&base);
                println!(
                    "{:<8} {:>4} {:<5} {:>+9.2} {:>+9.2} {:>+9.2}",
                    bench.name(),
                    key_size,
                    label,
                    a,
                    d,
                    p
                );
                rows.push(vec![
                    bench.name().into(),
                    key_size.to_string(),
                    label.into(),
                    format!("{a:.2}"),
                    format!("{d:.2}"),
                    format!("{p:.2}"),
                ]);
                area_ovh.push(a);
                power_ovh.push(p);
            }
        }
    }

    let mean_abs = |v: &[f64]| v.iter().map(|x| x.abs()).sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "mean |area overhead| {:.2}% (paper ~±3%), mean |power overhead| {:.2}% (paper ~±5%)",
        mean_abs(&area_ovh),
        mean_abs(&power_ovh)
    );

    write_csv(
        "table3_ppa.csv",
        "bench,key_size,opt,area_overhead_pct,delay_overhead_pct,power_overhead_pct",
        &rows,
    );
}
