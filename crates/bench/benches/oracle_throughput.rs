//! Oracle backend throughput: patterns/second for the compiled
//! instruction-buffer evaluator vs the interpreted node walk, plus the
//! one-off compile cost, across ISCAS-profile benchmarks.
//!
//! Shape to reproduce: the compiled backend answers batched queries one
//! to two orders of magnitude faster than the walk (no enum dispatch, 64
//! patterns per instruction), which is what makes AppSAT-style
//! random-query settlement and signature sweeps cheap. The CI perf-smoke
//! job pins a 10x floor on c1355 (`tests/oracle_throughput.rs`); this
//! harness records the actual margins.

use almost_bench::{banner, pool, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::Scale;
use almost_locking::{BatchOracle, CompiledOracle, InterpretedOracle};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    almost_bench::observed("oracle_throughput", run);
}

fn patterns_for(num_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..num_inputs).map(|_| rng.random()).collect())
        .collect()
}

fn run() {
    let scale = Scale::from_env();
    banner(
        "Oracle throughput: compiled batch evaluator vs node walk",
        scale,
    );
    let benches = match scale {
        Scale::Quick => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
        ],
        Scale::Paper => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
            IscasBenchmark::C1908,
            IscasBenchmark::C3540,
        ],
    };
    let num_patterns = match scale {
        Scale::Quick => 4096,
        Scale::Paper => 65_536,
    };

    println!(
        "{:<8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "bench", "ands", "patterns", "walk pat/s", "comp pat/s", "compile", "speedup"
    );
    let results = pool::map_indexed(benches, |_, bench| {
        let design = bench.build();
        let patterns = patterns_for(design.num_inputs(), num_patterns, 0xC1355);

        let walk = InterpretedOracle::new(design.clone());
        let started = Instant::now();
        let walk_answers = walk.query_batch(&patterns);
        let walk_secs = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let compiled = CompiledOracle::new(design.clone()).expect("compilable");
        let compile_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let compiled_answers = compiled.query_batch(&patterns);
        let compiled_secs = started.elapsed().as_secs_f64();
        assert_eq!(walk_answers, compiled_answers, "backends must agree");

        let walk_rate = num_patterns as f64 / walk_secs.max(1e-12);
        let compiled_rate = num_patterns as f64 / compiled_secs.max(1e-12);
        let speedup = compiled_rate / walk_rate;
        let stats = compiled.compile_stats();
        let line = format!(
            "{:<8} {:>6} {:>8} {:>12.0} {:>12.0} {:>10.1}ms {:>7.1}x",
            bench.name(),
            design.num_ands(),
            num_patterns,
            walk_rate,
            compiled_rate,
            compile_secs * 1e3,
            speedup
        );
        let row = vec![
            bench.name().into(),
            design.num_ands().to_string(),
            stats.instructions.to_string(),
            num_patterns.to_string(),
            format!("{walk_secs:.6}"),
            format!("{compiled_secs:.6}"),
            format!("{compile_secs:.6}"),
            format!("{walk_rate:.0}"),
            format!("{compiled_rate:.0}"),
            format!("{speedup:.2}"),
        ];
        (line, row)
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (line, row) in results {
        println!("{line}");
        rows.push(row);
    }

    write_csv(
        "oracle_throughput.csv",
        "bench,ands,instructions,patterns,walk_seconds,compiled_seconds,compile_seconds,walk_patterns_per_sec,compiled_patterns_per_sec,speedup",
        &rows,
    );
}
