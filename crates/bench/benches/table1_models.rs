//! Table I: predicted attack accuracy (%) of the three proxy models —
//! M_resyn2, M_random, M\* — when attacking the resyn2-synthesised locked
//! circuit vs. the random-recipe set.
//!
//! Paper shape to reproduce: M_resyn2 is strong on `resyn2` but drops
//! several points on the random set; M_random is flatter but noisy; M\*
//! is the most consistent and the strongest on the random set.

use almost_bench::{banner, experiment_benchmarks, lock_benchmark, pct, write_csv};
use almost_core::{accuracy_on_random_set, train_proxy, ProxyKind, Recipe, Scale};

fn main() {
    almost_bench::observed("table1_models", run);
}

fn run() {
    let scale = Scale::from_env();
    banner(
        "Table I: proxy-model accuracy (resyn2 vs random set)",
        scale,
    );
    println!(
        "{:<8} {:>4} {:<10} {:>8} {:>8}",
        "bench", "key", "model", "resyn2", "random"
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gap_resyn2 = Vec::new();
    let mut gap_adv = Vec::new();
    let mut random_set_adv = Vec::new();
    let mut random_set_resyn2 = Vec::new();

    for &key_size in scale.key_sizes() {
        for bench in experiment_benchmarks(scale, false) {
            let locked = lock_benchmark(bench, key_size);
            let deployed_resyn2 = Recipe::resyn2().apply(&locked.aig);
            for (i, kind) in [ProxyKind::Resyn2, ProxyKind::Random, ProxyKind::Adversarial]
                .into_iter()
                .enumerate()
            {
                let cfg = scale.proxy_config(0x71 + i as u64);
                let model = train_proxy(&locked, kind, &cfg);
                let acc_resyn2 = model.predict_accuracy(&locked, &deployed_resyn2);
                let acc_random = accuracy_on_random_set(
                    &model,
                    &locked,
                    scale.random_set_size(),
                    0xbeef + i as u64,
                );
                println!(
                    "{:<8} {:>4} {:<10} {:>8} {:>8}",
                    bench.name(),
                    key_size,
                    kind.label(),
                    pct(acc_resyn2),
                    pct(acc_random)
                );
                rows.push(vec![
                    bench.name().into(),
                    key_size.to_string(),
                    kind.label().into(),
                    pct(acc_resyn2),
                    pct(acc_random),
                ]);
                match kind {
                    ProxyKind::Resyn2 => {
                        gap_resyn2.push(acc_resyn2 - acc_random);
                        random_set_resyn2.push(acc_random);
                    }
                    ProxyKind::Adversarial => {
                        gap_adv.push((acc_resyn2 - acc_random).abs());
                        random_set_adv.push(acc_random);
                    }
                    ProxyKind::Random => {}
                }
            }
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "M_resyn2 mean (resyn2 - random-set) gap: {:+.2}%  (paper: avg +4.8%)",
        mean(&gap_resyn2) * 100.0
    );
    println!(
        "M* mean |resyn2 - random-set| gap:       {:.2}%  (paper: 0.18%-2.28%)",
        mean(&gap_adv) * 100.0
    );
    println!(
        "random-set accuracy, M* vs M_resyn2:     {:.2}% vs {:.2}%  (paper: M* higher)",
        mean(&random_set_adv) * 100.0,
        mean(&random_set_resyn2) * 100.0
    );

    write_csv(
        "table1_models.csv",
        "bench,key_size,model,acc_resyn2_pct,acc_random_pct",
        &rows,
    );
}
