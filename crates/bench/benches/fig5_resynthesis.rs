//! Fig. 5: attacker re-synthesis of the ALMOST-deployed netlist with SA
//! minimising delay (left plots) or area (right plots), tracking the
//! proxy-predicted attack accuracy and the delay/area ratio vs. resyn2.
//!
//! Paper shape to reproduce: the PPA metric improves over iterations while
//! attack accuracy wanders with **no usable correlation** — re-synthesis
//! gives the attacker no gradient back to a learnable structure.
//!
//! Each benchmark (proxy training + secure-recipe search + two
//! re-synthesis searches) is an independent job fanned out on the shared
//! worker pool; results come back in job order, so console lines and CSV
//! rows are identical to a serial run (`ALMOST_JOBS=1`).

use almost_bench::{banner, experiment_benchmarks, lock_benchmark, pool, telemetry, write_csv};
use almost_core::{
    generate_secure_recipe, resynthesis_search, train_proxy, PpaObjective, ProxyKind, Recipe, Scale,
};
use almost_netlist::{analyze, map_aig, CellLibrary, MapConfig};

fn main() {
    almost_bench::observed("fig5_resynthesis", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("Fig. 5: attacker re-synthesis for delay/area", scale);
    let key_size = scale.key_sizes()[0];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut correlations = Vec::new();

    /// One benchmark's console lines, CSV rows and correlations.
    type Cell = (Vec<String>, Vec<Vec<String>>, Vec<f64>);
    let lib = CellLibrary::nangate45();
    let lib = &lib;
    let cells: Vec<Cell> = pool::map_indexed(experiment_benchmarks(scale, true), |_, bench| {
        let mut lines: Vec<String> = Vec::new();
        let mut cell_rows: Vec<Vec<String>> = Vec::new();
        let mut cell_corrs: Vec<f64> = Vec::new();
        let locked = lock_benchmark(bench, key_size);
        let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(0xF15));
        let search = generate_secure_recipe(&locked, &proxy, &scale.sa_config(0xF15));
        let deployed = locked.clone().with_aig(search.recipe.apply(&locked.aig));

        // Baseline PPA: resyn2 on the locked design (paper's reference).
        let base_aig = Recipe::resyn2().apply(&locked.aig);
        let base_nl = map_aig(&base_aig, lib, &MapConfig::no_opt());
        let baseline = analyze(&base_nl, &base_aig, lib, 4, 5);

        for objective in [PpaObjective::Delay, PpaObjective::Area] {
            let result = resynthesis_search(
                &deployed,
                &proxy,
                objective,
                &baseline,
                lib,
                &scale.sa_config(0x5F1 ^ objective as u64),
            );
            let last = result.series.last().copied();
            lines.push(format!(
                    "{} minimize-{}: {} iters, final ratio {:.3}, final acc {:.2}%, corr(acc,{}) = {:+.3}",
                    bench.name(),
                    objective.label(),
                    result.series.len(),
                    last.map(|p| p.ratio).unwrap_or(f64::NAN),
                    last.map(|p| p.accuracy * 100.0).unwrap_or(f64::NAN),
                    objective.label(),
                    result.correlation
                ));
            telemetry::progress(|| {
                format!(
                    "  [cache] {} minimize-{}: {}",
                    bench.name(),
                    objective.label(),
                    result.engine.summary()
                )
            });
            cell_corrs.push(result.correlation);
            let stats = result.engine;
            for (i, p) in result.series.iter().enumerate() {
                cell_rows.push(vec![
                    bench.name().into(),
                    objective.label().into(),
                    (i + 1).to_string(),
                    format!("{:.4}", p.accuracy),
                    format!("{:.4}", p.ratio),
                    stats.cache.hits.to_string(),
                    stats.cache.misses.to_string(),
                    stats.cache.evictions.to_string(),
                    format!("{:.2}", stats.candidates_per_sec()),
                ]);
            }
        }
        // Liveness marker (stderr, completion order): the ordered output
        // prints only after every pool cell finishes.
        telemetry::cell_done(|| bench.name().to_string());
        (lines, cell_rows, cell_corrs)
    });

    for (lines, cell_rows, cell_corrs) in cells {
        for line in lines {
            println!("{line}");
        }
        rows.extend(cell_rows);
        correlations.extend(cell_corrs);
    }

    let mean_abs =
        correlations.iter().map(|c| c.abs()).sum::<f64>() / correlations.len().max(1) as f64;
    println!();
    println!(
        "mean |corr(accuracy, ppa-ratio)| = {:.3}  (paper: no clear correlation)",
        mean_abs
    );

    write_csv(
        "fig5_resynthesis.csv",
        "bench,objective,candidate,accuracy,ppa_ratio,\
         cache_hits,cache_misses,cache_evictions,cands_per_sec",
        &rows,
    );
}
