//! CEC throughput: fraig-first sweeping vs the legacy budgeted
//! monolithic miter, across ISCAS-profile benchmarks.
//!
//! Shape to reproduce: on structurally similar pairs (the common CEC
//! case — original vs. restructured, locked vs. key-programmed) the
//! fraig sweep decomposes the proof into many small input-to-output
//! queries and settles *unbudgeted*, while the monolithic miter either
//! burns its whole conflict budget for `None` (arithmetic circuits —
//! c6288) or pays far more for the same verdict. The CI perf-smoke job
//! pins a 5x floor on the c6288 pair (`tests/cec_envelope.rs`); this
//! harness records the actual margins.
//!
//! Each row checks a benchmark against a *redundified* copy of itself:
//! every 16th AND is wrapped in the absorption identity
//! `u -> (u & s) | (u & !s)`, which survives strash, so the sweep has to
//! prove every wrapper away with real SAT queries before the output
//! cones collapse.

use almost_aig::{Aig, Lit, NodeKind};
use almost_bench::{banner, pool, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::Scale;
use almost_sat::{check_equivalence, check_equivalence_limited, Equivalence};
use std::time::Instant;

/// Conflict budget for the legacy reference point (matches
/// `tests/cec_envelope.rs`).
const LEGACY_BUDGET: u64 = 20_000;

fn main() {
    almost_bench::observed("cec", run);
}

/// Functionally identical, structurally divergent copy: every
/// `stride`-th AND is wrapped in `u -> (u & s) | (u & !s)`.
fn redundify(aig: &Aig, stride: usize) -> Aig {
    let mut out = Aig::new();
    let inputs: Vec<Lit> = (0..aig.num_inputs()).map(|_| out.add_input()).collect();
    let select = inputs[0];
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, &v) in aig.inputs().iter().enumerate() {
        map[v as usize] = inputs[i];
    }
    let mut ands = 0usize;
    for v in 0..aig.num_nodes() {
        if let NodeKind::And(fa, fb) = aig.node(v as u32) {
            let a = map[fa.var() as usize].xor_complement(fa.is_complement());
            let b = map[fb.var() as usize].xor_complement(fb.is_complement());
            let mut lit = out.and(a, b);
            ands += 1;
            if ands.is_multiple_of(stride) && !lit.is_const() {
                let then_arm = out.and(lit, select);
                let else_arm = out.and(lit, !select);
                lit = out.or(then_arm, else_arm);
            }
            map[v] = lit;
        }
    }
    for &o in aig.outputs() {
        out.add_output(map[o.var() as usize].xor_complement(o.is_complement()));
    }
    out
}

fn verdict_label(v: &Option<Equivalence>) -> &'static str {
    match v {
        None => "undecided",
        Some(Equivalence::Equivalent) => "equivalent",
        Some(Equivalence::Counterexample(_)) => "counterexample",
    }
}

fn run() {
    let scale = Scale::from_env();
    banner("CEC throughput: fraig-first sweep vs budgeted miter", scale);
    let benches = match scale {
        Scale::Quick => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C1355,
            IscasBenchmark::C6288,
        ],
        Scale::Paper => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
            IscasBenchmark::C1908,
            IscasBenchmark::C3540,
            IscasBenchmark::C6288,
        ],
    };

    println!(
        "{:<8} {:>6} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "bench", "ands", "pair", "legacy", "fraig", "verdict", "speedup"
    );
    let results = pool::map_indexed(benches, |_, bench| {
        let original = bench.build();
        let restructured = redundify(&original, 16);

        let started = Instant::now();
        let legacy = check_equivalence_limited(&original, &restructured, LEGACY_BUDGET);
        let legacy_secs = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let verdict = check_equivalence(&original, &restructured);
        let fraig_secs = started.elapsed().as_secs_f64();
        assert_eq!(
            verdict,
            Equivalence::Equivalent,
            "{bench}: redundified pair must certify equivalent"
        );

        let speedup = legacy_secs / fraig_secs.max(1e-12);
        let line = format!(
            "{:<8} {:>6} {:>8} {:>10.3}s {:>10.3}s {:>12} {:>7.1}x",
            bench.name(),
            original.num_ands(),
            restructured.num_ands(),
            legacy_secs,
            fraig_secs,
            verdict_label(&legacy),
            speedup
        );
        let row = vec![
            bench.name().into(),
            original.num_ands().to_string(),
            restructured.num_ands().to_string(),
            LEGACY_BUDGET.to_string(),
            format!("{legacy_secs:.6}"),
            verdict_label(&legacy).into(),
            format!("{fraig_secs:.6}"),
            "equivalent".into(),
            format!("{speedup:.2}"),
        ];
        (line, row)
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (line, row) in results {
        println!("{line}");
        rows.push(row);
    }

    write_csv(
        "cec_throughput.csv",
        "bench,ands,restructured_ands,legacy_budget,legacy_seconds,legacy_verdict,fraig_seconds,fraig_verdict,speedup",
        &rows,
    );
}
