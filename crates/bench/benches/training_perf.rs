//! Before/after timing of the GIN training hot path on table-2-profile
//! OMLA cells: the dense serial reference
//! (`almost_ml::train::train_dense_reference`) against the CSR +
//! data-parallel trainer (`almost_ml::train::train`).
//!
//! The reference is **not** the PR-3 trainer: it shares the new engine
//! (batched blocks, zero-clone tape, blocked kernels) and differs only
//! in aggregation kernel — dense O(n²·d) matmul on one core vs CSR
//! O(E·d) fanned across workers. That is exactly what makes the loss
//! curves bit-comparable; it also makes `dense_ref_ms` a *conservative*
//! baseline (the genuinely old per-graph cloning trainer, measured once
//! against this harness's cells, was ~1.5-2x slower than the reference —
//! see the PR 4 entry in CHANGES.md for those numbers).
//!
//! Both runs train the *same* initial model on the *same* manufactured
//! locality dataset, and the sparse run must reproduce the dense loss
//! curve within 1e-5 (they are bit-identical by construction — the CSR
//! kernel adds the same products in the same order, and the reduction
//! order is fixed). The CSV this writes is uploaded by the CI
//! `perf-smoke` job as the speedup record.

use almost_aig::Script;
use almost_attacks::subgraph::NUM_FEATURES;
use almost_attacks::{Omla, OmlaConfig};
use almost_bench::{banner, lock_benchmark, pool, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::Scale;
use almost_ml::gin::GinClassifier;
use almost_ml::train::{train, train_dense_reference, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    almost_bench::observed("training_perf", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("Training perf: dense serial vs CSR + data-parallel", scale);
    println!("  workers: {} (ALMOST_JOBS overrides)", pool::num_workers());

    let p = scale.proxy_config(0);
    let omla_cfg = OmlaConfig {
        hidden: p.hidden,
        layers: p.layers,
        epochs: p.epochs,
        batch_size: p.batch_size,
        learning_rate: p.learning_rate,
        relock_key_size: p.relock_key_size,
        training_samples: p.initial_samples,
        subgraph: p.subgraph,
        functional_signatures: false,
        seed: 0x0317A,
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (bench, key_size) in [
        (IscasBenchmark::C432, 64usize),
        (IscasBenchmark::C880, 64),
        (IscasBenchmark::C1355, 64),
    ] {
        let locked = lock_benchmark(bench, key_size);
        let omla = Omla::new(omla_cfg);
        let mut rng = StdRng::seed_from_u64(omla_cfg.seed);
        let data = omla.generate_training_data(&locked.aig, &Script::resyn2(), &mut rng);
        let tc = TrainConfig {
            epochs: omla_cfg.epochs,
            batch_size: omla_cfg.batch_size,
            learning_rate: omla_cfg.learning_rate,
            seed: omla_cfg.seed ^ 0x5eed,
        };
        let model = GinClassifier::new(
            NUM_FEATURES,
            omla_cfg.hidden,
            omla_cfg.layers,
            omla_cfg.seed,
        );

        // Min of three reps: the runs are deterministic, so the spread is
        // pure scheduler noise and the minimum is the honest estimate.
        let time3 = |f: &mut dyn FnMut() -> Vec<f32>| {
            let mut best_ms = f64::INFINITY;
            let mut losses = Vec::new();
            for _ in 0..3 {
                let t = Instant::now();
                losses = f();
                best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
            }
            (best_ms, losses)
        };
        let (dense_ms, dense_losses) =
            time3(&mut || train_dense_reference(&mut model.clone(), &data, &tc).epoch_losses);
        let (sparse_ms, sparse_losses) =
            time3(&mut || train(&mut model.clone(), &data, &tc).epoch_losses);
        let (dense, sparse) = (dense_losses, sparse_losses);

        let max_delta = dense
            .iter()
            .zip(&sparse)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_delta <= 1e-5,
            "{bench}: sparse loss curve diverged from the dense reference ({max_delta})"
        );
        let speedup = dense_ms / sparse_ms;
        println!(
            "{:<8} {} graphs, {} epochs: dense-ref {:>8.1} ms -> sparse-parallel {:>8.1} ms  ({speedup:.1}x, max loss delta {max_delta:.1e})",
            bench.name(),
            data.len(),
            tc.epochs,
            dense_ms,
            sparse_ms,
        );
        rows.push(vec![
            bench.name().into(),
            data.len().to_string(),
            tc.epochs.to_string(),
            format!("{dense_ms:.2}"),
            format!("{sparse_ms:.2}"),
            format!("{speedup:.2}"),
            format!("{max_delta:.2e}"),
        ]);
    }

    write_csv(
        "training_perf.csv",
        "bench,graphs,epochs,dense_ref_ms,sparse_parallel_ms,speedup,max_loss_delta",
        &rows,
    );
}
