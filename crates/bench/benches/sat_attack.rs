//! Oracle-guided SAT-attack harness: DIP counts, oracle queries, solver
//! effort and wall time for exact and AppSAT-approximate key recovery
//! across benchmarks and key sizes.
//!
//! Literature shape to reproduce: RLL falls to the exact attack in seconds
//! with DIP counts far below 2^k, growing mildly with key size; the
//! approximate mode reaches a functionally correct key with bounded solver
//! effort. XOR-dominated circuits (c1355 profile) need the most conflicts.
//!
//! Rows are independent (every row builds its own lock, oracle and
//! solver), so they fan out across cores on `almost_bench::pool`; results
//! are printed and written in deterministic row order regardless of
//! scheduling (`ALMOST_JOBS=1` forces the serial reference run).

use almost_attacks::{AttackTarget, OracleGuidedAttack, SatAttack, SatAttackConfig};
use almost_bench::{banner, lock_benchmark, pct, pool, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::{Recipe, Scale};
use almost_locking::CircuitOracle;
use std::time::Instant;

fn main() {
    almost_bench::observed("sat_attack", run);
}

fn run() {
    let scale = Scale::from_env();
    banner("SAT attack: exact vs approximate key recovery", scale);
    let benches = match scale {
        Scale::Quick => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
        ],
        Scale::Paper => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
            IscasBenchmark::C1908,
            IscasBenchmark::C3540,
        ],
    };
    let key_sizes: &[usize] = match scale {
        Scale::Quick => &[8, 16, 32],
        Scale::Paper => &[8, 16, 32, 64],
    };

    let mut jobs: Vec<(IscasBenchmark, usize, &'static str, SatAttack)> = Vec::new();
    for &bench in &benches {
        for &key_size in key_sizes {
            jobs.push((bench, key_size, "exact", SatAttack::exact()));
            jobs.push((
                bench,
                key_size,
                "appsat",
                SatAttack::new(SatAttackConfig::approximate(8, 500)),
            ));
        }
    }

    println!(
        "{:<8} {:>4} {:<7} {:>6} {:>8} {:>10} {:>10} {:>8} {:>9} {:>8}",
        "bench",
        "key",
        "mode",
        "DIPs",
        "queries",
        "decisions",
        "conflicts",
        "restarts",
        "time",
        "correct"
    );
    let results = pool::map_indexed(jobs, |_, (bench, key_size, mode, attack)| {
        let locked = lock_benchmark(bench, key_size);
        let target = AttackTarget::new(locked, Recipe::resyn2().as_script());
        let oracle = CircuitOracle::from_locked(&target.locked);
        let started = Instant::now();
        let outcome = attack.attack_with_oracle(&target, &oracle);
        let elapsed = started.elapsed();
        let line = format!(
            "{:<8} {:>4} {:<7} {:>6} {:>8} {:>10} {:>10} {:>8} {:>8.2}s {:>8}",
            bench.name(),
            key_size,
            mode,
            outcome.dip_count(),
            outcome.oracle_queries,
            outcome.solver.decisions,
            outcome.solver.conflicts,
            outcome.solver.restarts,
            elapsed.as_secs_f64(),
            outcome.functionally_correct
        );
        let row = vec![
            bench.name().into(),
            key_size.to_string(),
            mode.into(),
            outcome.dip_count().to_string(),
            outcome.oracle_queries.to_string(),
            outcome.solver.decisions.to_string(),
            outcome.solver.propagations.to_string(),
            outcome.solver.conflicts.to_string(),
            outcome.solver.restarts.to_string(),
            format!("{:.4}", elapsed.as_secs_f64()),
            pct(outcome.accuracy),
            outcome.functionally_correct.to_string(),
        ];
        (line, row)
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (line, row) in results {
        println!("{line}");
        rows.push(row);
    }

    write_csv(
        "sat_attack.csv",
        "bench,key_size,mode,dips,oracle_queries,decisions,propagations,conflicts,restarts,seconds,bit_agreement_pct,functionally_correct",
        &rows,
    );
    println!("\n(every `correct=true` row is a SAT-CEC-verified key recovery)");
}
