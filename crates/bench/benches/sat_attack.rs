//! Oracle-guided SAT-attack harness: DIP counts, oracle queries and wall
//! time for exact and AppSAT-approximate key recovery across benchmarks
//! and key sizes.
//!
//! Literature shape to reproduce: RLL falls to the exact attack in seconds
//! with DIP counts far below 2^k, growing mildly with key size; the
//! approximate mode reaches a functionally correct key with bounded solver
//! effort. XOR-dominated circuits (c1355 profile) need the most conflicts.

use almost_attacks::{AttackTarget, OracleGuidedAttack, SatAttack, SatAttackConfig};
use almost_bench::{banner, lock_benchmark, pct, write_csv};
use almost_circuits::IscasBenchmark;
use almost_core::{Recipe, Scale};
use almost_locking::CircuitOracle;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    banner("SAT attack: exact vs approximate key recovery", scale);
    let benches = match scale {
        Scale::Quick => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
        ],
        Scale::Paper => vec![
            IscasBenchmark::C432,
            IscasBenchmark::C880,
            IscasBenchmark::C1355,
            IscasBenchmark::C1908,
            IscasBenchmark::C3540,
        ],
    };
    let key_sizes: &[usize] = match scale {
        Scale::Quick => &[8, 16, 32],
        Scale::Paper => &[8, 16, 32, 64],
    };

    println!(
        "{:<8} {:>4} {:<7} {:>6} {:>8} {:>10} {:>9} {:>8}",
        "bench", "key", "mode", "DIPs", "queries", "conflicts", "time", "correct"
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for bench in benches {
        for &key_size in key_sizes {
            let locked = lock_benchmark(bench, key_size);
            let target = AttackTarget::new(locked, Recipe::resyn2().as_script());
            let attacks = [
                ("exact", SatAttack::exact()),
                (
                    "appsat",
                    SatAttack::new(SatAttackConfig::approximate(8, 500)),
                ),
            ];
            for (mode, attack) in attacks {
                let oracle = CircuitOracle::from_locked(&target.locked);
                let started = Instant::now();
                let outcome = attack.attack_with_oracle(&target, &oracle);
                let elapsed = started.elapsed();
                let conflicts = outcome.iterations.last().map_or(0, |it| it.conflicts);
                println!(
                    "{:<8} {:>4} {:<7} {:>6} {:>8} {:>10} {:>8.2}s {:>8}",
                    bench.name(),
                    key_size,
                    mode,
                    outcome.dip_count(),
                    outcome.oracle_queries,
                    conflicts,
                    elapsed.as_secs_f64(),
                    outcome.functionally_correct
                );
                rows.push(vec![
                    bench.name().into(),
                    key_size.to_string(),
                    mode.into(),
                    outcome.dip_count().to_string(),
                    outcome.oracle_queries.to_string(),
                    conflicts.to_string(),
                    format!("{:.4}", elapsed.as_secs_f64()),
                    pct(outcome.accuracy),
                    outcome.functionally_correct.to_string(),
                ]);
            }
        }
    }

    write_csv(
        "sat_attack.csv",
        "bench,key_size,mode,dips,oracle_queries,conflicts,seconds,bit_agreement_pct,functionally_correct",
        &rows,
    );
    println!("\n(every `correct=true` row is a SAT-CEC-verified key recovery)");
}
