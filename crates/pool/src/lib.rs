//! A hermetic work-stealing worker pool.
//!
//! Two kinds of callers share this crate: the experiment harnesses, whose
//! (bench, key-size, scheme) rows are embarrassingly parallel — every row
//! builds its own circuit, lock, oracle and solver — and the GIN trainer
//! in `almost_ml`, which fans the fixed-size gradient sub-blocks of each
//! minibatch out with [`map_indexed`]. Implementation is std-only (scoped
//! threads, one `Mutex<VecDeque>` per worker, an mpsc channel for
//! results): jobs are dealt round-robin to per-worker deques, each worker
//! pops its own queue from the front and *steals from the back* of its
//! siblings' queues when it runs dry, so a long row (say, a c6288 miter)
//! never strands the other cores behind it.
//!
//! Determinism: results are returned **in job order**, whatever the
//! completion order was, so a harness's output is byte-identical between
//! a parallel run and a serial one (`ALMOST_JOBS=1`) — wall-clock
//! columns aside, which is why the CI `perf-smoke` job diffs
//! `sat_resilience.csv`, the CSV with no timing column.

use almost_telemetry as telemetry;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

std::thread_local! {
    /// True while this thread is a pool worker. Nested [`map_indexed`]
    /// calls (e.g. the GIN trainer's per-minibatch fan-out running inside
    /// a harness's per-cell job) detect it and run serially: the outer
    /// level already owns the cores, so spawning another worker set per
    /// inner call would only add thread churn and oversubscription —
    /// and serial execution is the same bit-for-bit result by the pool's
    /// determinism contract.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Worker count: `ALMOST_JOBS` when set (≥ 1), else the machine's
/// available parallelism.
pub fn num_workers() -> usize {
    std::env::var("ALMOST_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `f(index, item)` for every item on the worker pool and returns the
/// results **in item order** (deterministic regardless of scheduling).
///
/// With one worker (or one item) the pool is bypassed and the closure runs
/// serially on the calling thread — the reference execution the parallel
/// output must match.
pub fn map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = num_workers().min(n.max(1));
    if workers <= 1 || IN_POOL_WORKER.with(|flag| flag.get()) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    // Latch the tracing flag once per batch: the per-job path must not
    // even load the atomic when telemetry is disabled, and a sink
    // installed mid-batch should not produce a half-instrumented batch.
    let trace_on = telemetry::tracing();

    // Deal jobs round-robin onto per-worker deques.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers]
            .lock()
            .expect("queue lock")
            .push_back((i, item));
    }
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    // Per-worker tallies for the end-of-batch summary event; only
    // written by worker `w`, read after the scope joins.
    let tallies: Vec<Mutex<telemetry::WorkerTally>> = if trace_on {
        (0..workers)
            .map(|_| Mutex::new(telemetry::WorkerTally::default()))
            .collect()
    } else {
        Vec::new()
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let (queues, f, tallies) = (&queues, &f, &tallies);
            scope.spawn(move || {
                IN_POOL_WORKER.with(|flag| flag.set(true));
                loop {
                    // Own queue first (front), then steal from siblings
                    // (back). The own-queue pop is its own statement so
                    // its guard drops before any sibling lock is probed:
                    // holding one queue lock while acquiring another
                    // would make the lock order cyclic across workers
                    // (deadlock).
                    let own = queues[w].lock().expect("queue lock").pop_front();
                    let stolen = own.is_none();
                    let job = own.or_else(|| {
                        (1..workers).find_map(|d| {
                            queues[(w + d) % workers]
                                .lock()
                                .expect("queue lock")
                                .pop_back()
                        })
                    });
                    match job {
                        Some((i, item)) => {
                            if trace_on {
                                let start_us = telemetry::clock::now_us();
                                let result = f(i, item);
                                let dur_us = telemetry::clock::now_us().saturating_sub(start_us);
                                telemetry::trace(|| telemetry::EventKind::PoolJob {
                                    worker: w as u32,
                                    job: i as u32,
                                    stolen,
                                    start_us,
                                    dur_us,
                                });
                                let mut tally = tallies[w].lock().expect("tally lock");
                                tally.executed += 1;
                                tally.stolen += u32::from(stolen);
                                tally.busy_us += dur_us;
                                drop(tally);
                                let _ = tx.send((i, result));
                            } else {
                                let _ = tx.send((i, f(i, item)));
                            }
                        }
                        // No job is ever enqueued after the deal above,
                        // so a full sweep finding every queue empty means
                        // all jobs are claimed — this worker is done (no
                        // idle spinning while long rows finish
                        // elsewhere).
                        None => break,
                    }
                }
            });
        }
        drop(tx);
    });

    if trace_on {
        telemetry::trace(|| telemetry::EventKind::PoolBatch {
            jobs: n as u32,
            workers: workers as u32,
            per_worker: tallies
                .iter()
                .map(|t| *t.lock().expect("tally lock"))
                .collect(),
        });
    }

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job sends exactly one result"))
        .collect()
}

/// Outcome of a [`race`]: which runner finished first, what it returned,
/// and how long the losers took to park after the stop flag went up.
#[derive(Debug)]
pub struct RaceOutcome<R> {
    /// Index of the runner whose answer was taken.
    pub winner: usize,
    /// The winning runner's result.
    pub result: R,
    /// Microseconds from the winner publishing its answer to every other
    /// runner having returned (the cancellation latency the CI envelope
    /// test pins).
    pub cancel_us: u64,
}

/// Races `runners` against each other on scoped threads; the first runner
/// to return `Some` wins, trips the shared [`AtomicBool`] stop flag, and
/// everyone else is expected to notice the flag and bail out with `None`.
///
/// Each runner receives the stop flag and must treat a raised flag as a
/// budget-style early return — give back `None`, never a guessed verdict.
/// A runner that exhausts its own budget also returns `None` *without*
/// touching the flag, so `None` from every runner means "no one finished"
/// (the caller's budget-exhausted case) and yields `None` overall.
///
/// With a single runner no thread is spawned: the runner executes on the
/// calling thread with a flag nothing will ever raise. That serial path is
/// the pinned reference execution (`cancel_us` is 0 by definition).
pub fn race<R, F>(runners: Vec<F>) -> Option<RaceOutcome<R>>
where
    R: Send,
    F: FnOnce(&AtomicBool) -> Option<R> + Send,
{
    let stop = AtomicBool::new(false);
    if runners.len() <= 1 {
        let result = runners.into_iter().next()?(&stop)?;
        return Some(RaceOutcome {
            winner: 0,
            result,
            cancel_us: 0,
        });
    }
    let n = runners.len();
    // usize::MAX = "no winner yet"; the first successful CAS claims it.
    let winner = AtomicUsize::new(usize::MAX);
    let win_at_us = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (i, runner) in runners.into_iter().enumerate() {
            let (stop, winner, win_at_us, slots) = (&stop, &winner, &win_at_us, &slots);
            scope.spawn(move || {
                if let Some(result) = runner(stop) {
                    if winner
                        .compare_exchange(usize::MAX, i, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        win_at_us.store(telemetry::clock::now_us(), Ordering::Release);
                        *slots[i].lock().expect("race slot lock") = Some(result);
                        stop.store(true, Ordering::Release);
                    }
                    // A runner that finished second keeps its answer to
                    // itself: by construction it agrees with the winner's
                    // verdict, and dropping it keeps the outcome single-
                    // sourced.
                }
            });
        }
    });
    let w = winner.load(Ordering::Acquire);
    if w == usize::MAX {
        return None;
    }
    let parked_us = telemetry::clock::now_us();
    let result = slots[w]
        .lock()
        .expect("race slot lock")
        .take()
        .expect("winner stored its result before raising the flag");
    Some(RaceOutcome {
        winner: w,
        result,
        cancel_us: parked_us.saturating_sub(win_at_us.load(Ordering::Acquire)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        // Jobs deliberately finish out of order (later jobs are cheaper).
        let items: Vec<usize> = (0..64).collect();
        let out = map_indexed(items, |i, x| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_output_equals_the_serial_reference() {
        let work = |i: usize, x: u64| -> String { format!("row-{i}:{}", x.wrapping_mul(0x9E37)) };
        let items: Vec<u64> = (0..40).map(|x| x * 3 + 1).collect();
        let serial: Vec<String> = items.iter().enumerate().map(|(i, &x)| work(i, x)).collect();
        let parallel = map_indexed(items, work);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        assert_eq!(map_indexed(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(map_indexed(vec![9u8], |i, x| (i as u8) + x), vec![9]);
    }

    #[test]
    fn num_workers_is_at_least_one() {
        assert!(num_workers() >= 1);
    }

    #[test]
    fn race_single_runner_is_the_serial_reference() {
        let out = race(vec![|_stop: &AtomicBool| Some(42u32)]).expect("runner finished");
        assert_eq!(out.winner, 0);
        assert_eq!(out.result, 42);
        assert_eq!(out.cancel_us, 0);
    }

    #[test]
    fn race_first_finisher_cancels_the_rest() {
        // Runner 1 answers immediately; runner 0 spins until the flag is
        // raised and then bails with None, as a real solver would.
        type Runner = Box<dyn FnOnce(&AtomicBool) -> Option<u32> + Send>;
        let runners: Vec<Runner> = vec![
            Box::new(|stop: &AtomicBool| {
                while !stop.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                None
            }),
            Box::new(|_stop: &AtomicBool| Some(7)),
        ];
        let out = race(runners).expect("someone finished");
        assert_eq!(out.winner, 1);
        assert_eq!(out.result, 7);
    }

    #[test]
    fn race_with_no_finisher_returns_none() {
        let runners: Vec<fn(&AtomicBool) -> Option<u32>> = vec![|_| None, |_| None];
        assert!(race(runners).is_none());
        assert!(race(Vec::<fn(&AtomicBool) -> Option<u32>>::new()).is_none());
    }

    #[test]
    fn nested_calls_run_serially_with_identical_results() {
        // An inner map_indexed inside a pool job must not spawn another
        // worker set (the outer level already owns the cores) — and by
        // the determinism contract, running it serially changes nothing.
        let outer: Vec<u32> = (0..8).collect();
        let nested = map_indexed(outer.clone(), |_, x| {
            map_indexed((0..16u32).collect(), move |j, y| {
                u64::from(x) * 1000 + u64::from(y) + j as u64
            })
        });
        let flat: Vec<Vec<u64>> = outer
            .iter()
            .map(|&x| {
                (0..16u32)
                    .enumerate()
                    .map(|(j, y)| u64::from(x) * 1000 + u64::from(y) + j as u64)
                    .collect()
            })
            .collect();
        assert_eq!(nested, flat);
    }
}
