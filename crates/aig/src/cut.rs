//! K-feasible cut enumeration.
//!
//! A *cut* of node `n` is a set of nodes (leaves) such that every path from
//! the inputs to `n` passes through a leaf. Cuts of at most `k` leaves are
//! enumerated bottom-up by merging the fanin cut sets, with dominance
//! filtering and a per-node cap — the classical priority-cuts algorithm used
//! by ABC's rewriting and technology mapping.

use crate::aig::{Aig, NodeKind, Var};
use crate::truth::Tt;

/// A single cut: a sorted set of leaf variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    leaves: Vec<Var>,
    signature: u64,
}

impl Cut {
    /// The trivial cut of a node: the node itself.
    pub fn trivial(var: Var) -> Self {
        Cut {
            leaves: vec![var],
            signature: 1 << (var % 64),
        }
    }

    fn from_sorted(leaves: Vec<Var>) -> Self {
        let signature = leaves.iter().fold(0u64, |s, &v| s | 1 << (v % 64));
        Cut { leaves, signature }
    }

    /// The sorted leaf variables.
    pub fn leaves(&self) -> &[Var] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges two cuts; returns `None` if the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        // Quick reject: distinct signature bits are a lower bound on the
        // union size (hash collisions only make the bound smaller).
        if (self.signature | other.signature).count_ones() as usize > k {
            return None;
        }
        let mut leaves = Vec::with_capacity(k + 1);
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a == b {
                        i += 1;
                        j += 1;
                        a
                    } else if a < b {
                        i += 1;
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut::from_sorted(leaves))
    }

    /// Returns true if `self`'s leaves are a subset of `other`'s (then
    /// `other` is dominated and can be discarded).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        if self.signature & !other.signature != 0 {
            return false;
        }
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Per-node cut sets for an entire AIG.
#[derive(Debug)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
    k: usize,
}

/// Configuration for cut enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CutConfig {
    /// Maximum leaves per cut.
    pub k: usize,
    /// Maximum cuts kept per node (the trivial cut does not count).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig { k: 4, max_cuts: 8 }
    }
}

impl CutSet {
    /// Enumerates cuts for every node of `aig`.
    ///
    /// # Panics
    ///
    /// Panics if `config.k` is 0 or greater than 16 (the truth-table limit).
    pub fn compute(aig: &Aig, config: CutConfig) -> Self {
        assert!(config.k >= 1 && config.k <= 16);
        let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
        for v in aig.iter_vars() {
            let node_cuts = match aig.node(v) {
                NodeKind::Const0 | NodeKind::Input(_) => vec![Cut::trivial(v)],
                NodeKind::And(a, b) => {
                    let mut new_cuts: Vec<Cut> = Vec::new();
                    let ca = &cuts[a.var() as usize];
                    let cb = &cuts[b.var() as usize];
                    for x in ca {
                        for y in cb {
                            if let Some(m) = x.merge(y, config.k) {
                                if !new_cuts.iter().any(|c| c.dominates(&m)) {
                                    new_cuts.retain(|c| !m.dominates(c));
                                    new_cuts.push(m);
                                }
                            }
                        }
                    }
                    // Prefer smaller cuts when trimming to the cap.
                    new_cuts.sort_by_key(Cut::size);
                    new_cuts.truncate(config.max_cuts);
                    // The structural fanin cut must always survive: the
                    // technology mapper and rewriting rely on every node
                    // having at least one matchable cut.
                    let mut fanin_leaves = vec![a.var(), b.var()];
                    fanin_leaves.sort_unstable();
                    fanin_leaves.dedup();
                    let fanin_cut = Cut::from_sorted(fanin_leaves);
                    if !new_cuts.iter().any(|c| c == &fanin_cut) {
                        new_cuts.push(fanin_cut);
                    }
                    new_cuts.push(Cut::trivial(v));
                    new_cuts
                }
            };
            cuts.push(node_cuts);
        }
        CutSet { cuts, k: config.k }
    }

    /// The cuts of node `var` (the last entry is the trivial cut).
    pub fn cuts_of(&self, var: Var) -> &[Cut] {
        &self.cuts[var as usize]
    }

    /// The k used for enumeration.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Computes the truth table of `root` as a function of the cut leaves.
///
/// Leaf `i` of the cut becomes variable `i` of the table. All interior nodes
/// must be AND nodes.
pub fn cut_function(aig: &Aig, root: Var, cut: &Cut) -> Tt {
    let nvars = cut.size();
    let mut memo: std::collections::HashMap<Var, Tt> = std::collections::HashMap::new();
    memo.insert(0, Tt::zero(nvars));
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        memo.insert(leaf, Tt::var(i, nvars));
    }
    fn go(aig: &Aig, v: Var, memo: &mut std::collections::HashMap<Var, Tt>) -> Tt {
        if let Some(t) = memo.get(&v) {
            return t.clone();
        }
        match aig.node(v) {
            NodeKind::And(a, b) => {
                let mut ta = go(aig, a.var(), memo);
                let mut tb = go(aig, b.var(), memo);
                if a.is_complement() {
                    ta = ta.not();
                }
                if b.is_complement() {
                    tb = tb.not();
                }
                let t = ta.and(&tb);
                memo.insert(v, t.clone());
                t
            }
            _ => panic!("cut does not cover node {v}"),
        }
    }
    go(aig, root, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn merge_respects_limit() {
        let a = Cut::trivial(1);
        let b = Cut::trivial(2);
        let ab = a.merge(&b, 4).expect("fits");
        assert_eq!(ab.leaves(), &[1, 2]);
        let c = Cut::from_sorted(vec![3, 4, 5]);
        assert!(ab.merge(&c, 4).is_none());
        assert!(ab.merge(&c, 5).is_some());
    }

    #[test]
    fn dominance() {
        let small = Cut::from_sorted(vec![1, 2]);
        let big = Cut::from_sorted(vec![1, 2, 3]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small.clone()));
    }

    #[test]
    fn cut_enumeration_finds_mux_cut() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(s, t, e);
        aig.add_output(m);
        let cuts = CutSet::compute(&aig, CutConfig::default());
        let root_cuts = cuts.cuts_of(m.var());
        // Some cut must be exactly the three inputs.
        let want: Vec<Var> = {
            let mut v = vec![s.var(), t.var(), e.var()];
            v.sort_unstable();
            v
        };
        assert!(
            root_cuts.iter().any(|c| c.leaves() == want.as_slice()),
            "cuts: {root_cuts:?}"
        );
    }

    #[test]
    fn cut_function_matches_semantics() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(s, t, e);
        aig.add_output(m);
        let cuts = CutSet::compute(&aig, CutConfig::default());
        let want: Vec<Var> = {
            let mut v = vec![s.var(), t.var(), e.var()];
            v.sort_unstable();
            v
        };
        let cut = cuts
            .cuts_of(m.var())
            .iter()
            .find(|c| c.leaves() == want.as_slice())
            .expect("input cut exists")
            .clone();
        let tt = cut_function(&aig, m.var(), &cut);
        // Cut leaves are sorted by var; inputs were created in order s,t,e so
        // leaf order is (s,t,e) -> vars (0,1,2) of the table. cut_function
        // computes the function of the *node*, so complement through the
        // root literal's phase.
        for idx in 0..8usize {
            let vs = (idx & 1) != 0;
            let vt = (idx & 2) != 0;
            let ve = (idx & 4) != 0;
            let expect = (if vs { vt } else { ve }) ^ m.is_complement();
            assert_eq!(tt.get_bit(idx), expect, "idx={idx}");
        }
    }

    #[test]
    fn trivial_cut_function_is_projection() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        let cuts = CutSet::compute(&aig, CutConfig::default());
        let triv = cuts.cuts_of(f.var()).last().expect("has trivial").clone();
        assert_eq!(triv.leaves(), &[f.var()]);
        let tt = cut_function(&aig, f.var(), &triv);
        assert_eq!(tt, Tt::var(0, 1));
    }
}
