//! Irredundant sum-of-products extraction (Minato–Morreale ISOP) and
//! SOP-based AIG re-synthesis.
//!
//! Given a truth table, [`isop`] computes an irredundant cube cover, and
//! [`build_sop`] / [`build_from_tt`] turn covers back into AIG structure.
//! This is the re-synthesis engine behind the `rewrite` and `refactor`
//! passes.

use crate::aig::{Aig, Lit};
use crate::truth::Tt;

/// A product term over the variables of a truth table.
///
/// Bit `i` of `pos` means variable `i` appears positively; bit `i` of `neg`
/// means it appears negated. The two masks are disjoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cube {
    /// Positive-literal mask.
    pub pos: u32,
    /// Negative-literal mask.
    pub neg: u32,
}

impl Cube {
    /// The universal cube (no literals).
    pub const UNIVERSE: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_literals(self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Evaluates the cube on an input assignment given as a bit vector.
    pub fn eval(self, assignment: u32) -> bool {
        (assignment & self.pos) == self.pos && (assignment & self.neg) == 0
    }

    /// The cube's characteristic function as a truth table.
    pub fn to_tt(self, nvars: usize) -> Tt {
        let mut t = Tt::one(nvars);
        for v in 0..nvars {
            if self.pos >> v & 1 != 0 {
                t = t.and(&Tt::var(v, nvars));
            } else if self.neg >> v & 1 != 0 {
                t = t.and(&Tt::var(v, nvars).not());
            }
        }
        t
    }
}

/// Computes an irredundant sum-of-products cover of `f` (no don't-cares).
///
/// Returns the list of cubes; ORing [`Cube::to_tt`] over them reproduces `f`
/// exactly (checked in tests and by `debug_assert!`).
pub fn isop(f: &Tt) -> Vec<Cube> {
    let (cubes, cover) = isop_rec(f, f, f.nvars());
    debug_assert_eq!(&cover, f, "ISOP cover must equal the function");
    cubes
}

/// Minato–Morreale recursion: computes a cover F with `lower ⊆ F ⊆ upper`.
fn isop_rec(lower: &Tt, upper: &Tt, top: usize) -> (Vec<Cube>, Tt) {
    let nvars = lower.nvars();
    if lower.is_zero() {
        return (Vec::new(), Tt::zero(nvars));
    }
    if upper.is_one() {
        return (vec![Cube::UNIVERSE], Tt::one(nvars));
    }
    // Find the topmost variable either bound depends on.
    let mut var = None;
    for v in (0..top).rev() {
        if lower.depends_on(v) || upper.depends_on(v) {
            var = Some(v);
            break;
        }
    }
    let var = match var {
        Some(v) => v,
        None => {
            // Neither depends on remaining variables; lower is nonzero and
            // constant over them, so the universe cube is the cover.
            return (vec![Cube::UNIVERSE], Tt::one(nvars));
        }
    };

    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // Minterms that can only be covered in the var=0 branch.
    let (mut c0, f0) = isop_rec(&l0.and(&u1.not()), &u0, var);
    // Minterms that can only be covered in the var=1 branch.
    let (mut c1, f1) = isop_rec(&l1.and(&u0.not()), &u1, var);
    // Remaining minterms, coverable without the variable.
    let lnew = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let (c2, f2) = isop_rec(&lnew, &u0.and(&u1), var);

    for c in &mut c0 {
        c.neg |= 1 << var;
    }
    for c in &mut c1 {
        c.pos |= 1 << var;
    }
    let tv = Tt::var(var, nvars);
    let cover = f2.or(&tv.not().and(&f0)).or(&tv.and(&f1));
    let mut cubes = c0;
    cubes.extend(c1);
    cubes.extend(c2);
    (cubes, cover)
}

/// Builds an AIG structure computing the SOP `cubes` over the given leaf
/// literals and returns the root literal.
///
/// Construction goes through the structural hash of `dest`, so shared logic
/// is reused for free.
pub fn build_sop(dest: &mut Aig, cubes: &[Cube], leaves: &[Lit]) -> Lit {
    let mut terms = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut lits = Vec::with_capacity(cube.num_literals() as usize);
        for (v, &leaf) in leaves.iter().enumerate() {
            if cube.pos >> v & 1 != 0 {
                lits.push(leaf);
            } else if cube.neg >> v & 1 != 0 {
                lits.push(!leaf);
            }
        }
        terms.push(dest.and_many(&lits));
    }
    dest.or_many(&terms)
}

/// Builds an AIG computing the truth table `tt` over `leaves`, choosing the
/// cheaper of: ISOP of `tt`, ISOP of `!tt` (complemented), or top-variable
/// Shannon decomposition, measured in AND nodes actually added to `dest`.
///
/// Speculative candidates are constructed and rolled back via
/// [`Aig::checkpoint`]/[`Aig::rollback`], so only the winner remains.
///
/// # Panics
///
/// Panics if `leaves.len() != tt.nvars()`.
pub fn build_from_tt(dest: &mut Aig, tt: &Tt, leaves: &[Lit]) -> Lit {
    assert_eq!(leaves.len(), tt.nvars(), "leaf count must match variables");
    if tt.is_zero() {
        return Lit::FALSE;
    }
    if tt.is_one() {
        return Lit::TRUE;
    }
    // Single-variable function?
    for (v, &leaf) in leaves.iter().enumerate() {
        if &Tt::var(v, tt.nvars()) == tt {
            return leaf;
        }
        if &Tt::var(v, tt.nvars()).not() == tt {
            return !leaf;
        }
    }

    let cubes_pos = isop(tt);
    let cubes_neg = isop(&tt.not());

    // For covers that are too wide, SOP construction would explode (e.g.
    // parity); fall back to a committed Shannon decomposition instead.
    const MAX_CUBES: usize = 96;
    if cubes_pos.len().min(cubes_neg.len()) > MAX_CUBES {
        let v = most_binate_var(tt).expect("non-degenerate function has support");
        let l0 = build_from_tt(dest, &tt.cofactor0(v), leaves);
        let l1 = build_from_tt(dest, &tt.cofactor1(v), leaves);
        return dest.mux(leaves[v], l1, l0);
    }

    // Candidate 1: ISOP of tt.
    let cp = dest.checkpoint();
    build_sop(dest, &cubes_pos, leaves);
    let cost_pos = dest.checkpoint() - cp;
    dest.rollback(cp);

    // Candidate 2: complemented ISOP.
    build_sop(dest, &cubes_neg, leaves);
    let cost_neg = dest.checkpoint() - cp;
    dest.rollback(cp);

    // Candidate 3 (small functions only, to bound the probing recursion):
    // Shannon decomposition on the most binate variable.
    let shannon_var = if tt.nvars() <= 5 {
        most_binate_var(tt)
    } else {
        None
    };
    let cost_shannon = shannon_var.map(|v| {
        let l0 = build_from_tt(dest, &tt.cofactor0(v), leaves);
        let l1 = build_from_tt(dest, &tt.cofactor1(v), leaves);
        let _m = dest.mux(leaves[v], l1, l0);
        let cost = dest.checkpoint() - cp;
        dest.rollback(cp);
        cost
    });

    // Commit the cheapest candidate.
    let best = [Some(cost_pos), Some(cost_neg), cost_shannon]
        .iter()
        .flatten()
        .min()
        .copied()
        .expect("at least one candidate");

    if best == cost_pos {
        build_sop(dest, &cubes_pos, leaves)
    } else if best == cost_neg {
        !build_sop(dest, &cubes_neg, leaves)
    } else {
        let v = shannon_var.expect("shannon candidate was chosen");
        let l0 = build_from_tt(dest, &tt.cofactor0(v), leaves);
        let l1 = build_from_tt(dest, &tt.cofactor1(v), leaves);
        dest.mux(leaves[v], l1, l0)
    }
}

/// Picks the variable on which the function is "most binate" (both cofactors
/// differ most from each other), a good Shannon pivot.
fn most_binate_var(tt: &Tt) -> Option<usize> {
    let mut best = None;
    let mut best_score = 0u32;
    for v in 0..tt.nvars() {
        if !tt.depends_on(v) {
            continue;
        }
        let diff = tt.cofactor0(v).xor(&tt.cofactor1(v)).count_ones();
        if best.is_none() || diff > best_score {
            best = Some(v);
            best_score = diff;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_tt(cubes: &[Cube], nvars: usize) -> Tt {
        cubes
            .iter()
            .fold(Tt::zero(nvars), |acc, c| acc.or(&c.to_tt(nvars)))
    }

    #[test]
    fn isop_covers_exactly() {
        // Exhaustive over all 3-variable functions.
        for bits in 0..256u64 {
            let f = Tt::from_u64(3, bits);
            let cubes = isop(&f);
            assert_eq!(cover_tt(&cubes, 3), f, "f={bits:02x}");
        }
    }

    #[test]
    fn isop_of_xor_has_expected_cubes() {
        let a = Tt::var(0, 2);
        let b = Tt::var(1, 2);
        let f = a.xor(&b);
        let cubes = isop(&f);
        assert_eq!(cubes.len(), 2);
        assert!(cubes.iter().all(|c| c.num_literals() == 2));
    }

    #[test]
    fn cube_eval() {
        let c = Cube {
            pos: 0b01,
            neg: 0b10,
        };
        assert!(c.eval(0b01));
        assert!(!c.eval(0b11));
        assert!(!c.eval(0b00));
    }

    #[test]
    fn build_from_tt_is_functionally_correct() {
        // All 4-variable functions would be 65536 cases; sample a spread.
        let mut seed = 0x9E37_79B9_u64;
        for _ in 0..200 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = seed >> 48;
            let f = Tt::from_u64(4, bits);
            let mut aig = Aig::new();
            let leaves: Vec<Lit> = (0..4).map(|_| aig.add_input()).collect();
            let root = build_from_tt(&mut aig, &f, &leaves);
            aig.add_output(root);
            for idx in 0..16usize {
                let ins: Vec<bool> = (0..4).map(|i| idx >> i & 1 != 0).collect();
                assert_eq!(
                    aig.eval(&ins)[0],
                    f.get_bit(idx),
                    "bits={bits:04x} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn build_from_tt_handles_degenerate_cases() {
        let mut aig = Aig::new();
        let leaves: Vec<Lit> = (0..3).map(|_| aig.add_input()).collect();
        assert_eq!(build_from_tt(&mut aig, &Tt::zero(3), &leaves), Lit::FALSE);
        assert_eq!(build_from_tt(&mut aig, &Tt::one(3), &leaves), Lit::TRUE);
        assert_eq!(build_from_tt(&mut aig, &Tt::var(1, 3), &leaves), leaves[1]);
        assert_eq!(
            build_from_tt(&mut aig, &Tt::var(2, 3).not(), &leaves),
            !leaves[2]
        );
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn build_from_tt_large_function() {
        // 8-variable parity: stresses the word-level truth tables.
        let mut f = Tt::zero(8);
        for v in 0..8 {
            f = f.xor(&Tt::var(v, 8));
        }
        let mut aig = Aig::new();
        let leaves: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
        let root = build_from_tt(&mut aig, &f, &leaves);
        aig.add_output(root);
        for idx in [0usize, 1, 3, 7, 85, 170, 255, 128, 200] {
            let ins: Vec<bool> = (0..8).map(|i| idx >> i & 1 != 0).collect();
            let expect = (idx.count_ones() % 2) == 1;
            assert_eq!(aig.eval(&ins)[0], expect, "idx={idx}");
        }
    }
}
