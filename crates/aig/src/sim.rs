//! Bit-parallel random simulation of AIGs.
//!
//! Simulation backs three users in this workspace: equivalence spot-checks in
//! tests, divisor filtering in [resubstitution](crate::passes::resub), and
//! switching-activity estimation for power analysis in `almost-netlist`.

use crate::aig::{Aig, Lit, NodeKind, Var};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bit-parallel simulation vectors: one `Vec<u64>` of `num_words` words per
/// node, 64 input patterns per word.
///
/// # Example
///
/// ```
/// use almost_aig::Aig;
/// use almost_aig::sim::SimVectors;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and(a, b);
/// aig.add_output(f);
/// let sim = SimVectors::random(&aig, 4, 42);
/// let pa = sim.node_pattern(a.var());
/// let pb = sim.node_pattern(b.var());
/// let pf = sim.lit_pattern(f);
/// for w in 0..4 {
///     assert_eq!(pf[w], pa[w] & pb[w]);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SimVectors {
    num_words: usize,
    patterns: Vec<Vec<u64>>,
}

impl SimVectors {
    /// Simulates `aig` on `num_words * 64` uniformly random input patterns
    /// drawn from a deterministic generator seeded with `seed`.
    pub fn random(aig: &Aig, num_words: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let input_patterns: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|_| (0..num_words).map(|_| rng.random()).collect())
            .collect();
        Self::with_input_patterns(aig, &input_patterns)
    }

    /// Simulates `aig` with caller-provided input patterns (one vector of
    /// words per input).
    ///
    /// # Panics
    ///
    /// Panics if the number of pattern vectors differs from the number of
    /// inputs, or the vectors have inconsistent lengths.
    pub fn with_input_patterns(aig: &Aig, input_patterns: &[Vec<u64>]) -> Self {
        assert_eq!(input_patterns.len(), aig.num_inputs());
        let num_words = input_patterns.first().map_or(1, Vec::len);
        for p in input_patterns {
            assert_eq!(p.len(), num_words, "inconsistent pattern lengths");
        }
        let mut patterns: Vec<Vec<u64>> = Vec::with_capacity(aig.num_nodes());
        for v in aig.iter_vars() {
            let row = match aig.node(v) {
                NodeKind::Const0 => vec![0u64; num_words],
                NodeKind::Input(i) => input_patterns[i as usize].clone(),
                NodeKind::And(a, b) => {
                    let (pa, pb) = (&patterns[a.var() as usize], &patterns[b.var() as usize]);
                    let (ca, cb) = (a.is_complement(), b.is_complement());
                    (0..num_words)
                        .map(|w| {
                            let wa = if ca { !pa[w] } else { pa[w] };
                            let wb = if cb { !pb[w] } else { pb[w] };
                            wa & wb
                        })
                        .collect()
                }
            };
            patterns.push(row);
        }
        SimVectors {
            num_words,
            patterns,
        }
    }

    /// Number of 64-bit words per node.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Total number of simulated patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_words * 64
    }

    /// The raw pattern words of node `var`.
    pub fn node_pattern(&self, var: Var) -> &[u64] {
        &self.patterns[var as usize]
    }

    /// The pattern of a literal (complemented if needed), as an owned vector.
    pub fn lit_pattern(&self, lit: Lit) -> Vec<u64> {
        let p = &self.patterns[lit.var() as usize];
        if lit.is_complement() {
            p.iter().map(|&w| !w).collect()
        } else {
            p.to_vec()
        }
    }

    /// Fraction of simulated patterns on which the node evaluates to 1.
    ///
    /// Used as the signal probability for power estimation.
    pub fn signal_probability(&self, var: Var) -> f64 {
        let ones: u32 = self.patterns[var as usize]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        ones as f64 / self.num_patterns() as f64
    }

    /// Estimate of switching activity: `2 p (1 - p)` where `p` is the signal
    /// probability (the probability two independent consecutive patterns
    /// differ).
    pub fn switching_activity(&self, var: Var) -> f64 {
        let p = self.signal_probability(var);
        2.0 * p * (1.0 - p)
    }

    /// One pattern word of a literal (complemented on the fly).
    ///
    /// The allocation-free building block behind [`Self::lits_equal`] and
    /// [`Self::lits_equal_across`]; prefer it over [`Self::lit_pattern`]
    /// (which materialises an owned vector) anywhere comparisons happen in
    /// a loop — the fraig class-refinement loop above all.
    #[inline]
    pub fn lit_word(&self, lit: Lit, word: usize) -> u64 {
        let w = self.patterns[lit.var() as usize][word];
        if lit.is_complement() {
            !w
        } else {
            w
        }
    }

    /// Returns true if two literals agree on every simulated pattern.
    ///
    /// Complement-aware and allocation-free: the comparison walks the two
    /// nodes' word vectors directly instead of materialising complemented
    /// copies via [`Self::lit_pattern`].
    pub fn lits_equal(&self, a: Lit, b: Lit) -> bool {
        let pa = &self.patterns[a.var() as usize];
        let pb = &self.patterns[b.var() as usize];
        let flip = a.is_complement() != b.is_complement();
        pa.iter()
            .zip(pb)
            .all(|(&wa, &wb)| if flip { wa == !wb } else { wa == wb })
    }

    /// Returns true if literal `a` of these vectors agrees with literal `b`
    /// of `other` on every pattern (the vectors must have been simulated
    /// with the same input patterns and word count).
    ///
    /// Like [`Self::lits_equal`], complement-aware with no allocation —
    /// this is what [`probably_equivalent`] compares outputs with.
    ///
    /// # Panics
    ///
    /// Panics if the two vector sets have different word counts.
    pub fn lits_equal_across(&self, a: Lit, other: &SimVectors, b: Lit) -> bool {
        assert_eq!(
            self.num_words, other.num_words,
            "comparing vectors of different widths"
        );
        let pa = &self.patterns[a.var() as usize];
        let pb = &other.patterns[b.var() as usize];
        let flip = a.is_complement() != b.is_complement();
        pa.iter()
            .zip(pb)
            .all(|(&wa, &wb)| if flip { wa == !wb } else { wa == wb })
    }
}

/// Compares two AIGs with the same interface on random patterns.
///
/// Returns `true` if no counterexample is found within `num_words * 64`
/// random patterns; this is a probabilistic check, not a proof (use
/// `almost-sat`'s CEC for proofs).
///
/// # Panics
///
/// Panics if the two AIGs have different input or output counts.
pub fn probably_equivalent(a: &Aig, b: &Aig, num_words: usize, seed: u64) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut rng = StdRng::seed_from_u64(seed);
    let input_patterns: Vec<Vec<u64>> = (0..a.num_inputs())
        .map(|_| (0..num_words).map(|_| rng.random()).collect())
        .collect();
    let sa = SimVectors::with_input_patterns(a, &input_patterns);
    let sb = SimVectors::with_input_patterns(b, &input_patterns);
    a.outputs()
        .iter()
        .zip(b.outputs())
        .all(|(&oa, &ob)| sa.lits_equal_across(oa, &sb, ob))
}

/// A three-valued logic value: `0`, `1`, or unknown (`X`).
///
/// Ternary simulation propagates controlling values through the AND/NOT
/// structure: `0 AND X = 0`, `1 AND X = X`. A node that settles to a
/// definite value with **every input at `X`** is structurally constant —
/// the cheap constant-detection pre-pass of the fraig engine
/// ([`crate::fraig`]), which SAT-confirms each candidate before merging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ternary {
    /// Definitely 0.
    Zero,
    /// Definitely 1.
    One,
    /// Unknown.
    X,
}

impl Ternary {
    /// Three-valued AND: 0 dominates, X absorbs 1.
    #[inline]
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::Zero, _) | (_, Ternary::Zero) => Ternary::Zero,
            (Ternary::One, Ternary::One) => Ternary::One,
            _ => Ternary::X,
        }
    }

    /// Applies a complement flag (three-valued NOT when `complement`).
    #[inline]
    pub fn xor_complement(self, complement: bool) -> Ternary {
        if complement {
            !self
        } else {
            self
        }
    }
}

/// Three-valued NOT: X stays X.
impl std::ops::Not for Ternary {
    type Output = Ternary;

    #[inline]
    fn not(self) -> Ternary {
        match self {
            Ternary::Zero => Ternary::One,
            Ternary::One => Ternary::Zero,
            Ternary::X => Ternary::X,
        }
    }
}

/// Ternary (X-valued) simulation of every node of `aig` under the given
/// input values; returns one [`Ternary`] per node, indexed by variable.
///
/// Any node that comes back definite is guaranteed to hold that value
/// for *every* completion of the `X` inputs. On a strashed AIG all-X
/// inputs never yield a definite AND (every fanin is a non-constant
/// `X`), so the interesting uses pin a subset of inputs: a node definite
/// to the *same* value under both cofactors of an input is a constant
/// (how the fraig pass seeds constant candidates — see
/// `fraig`), and observability analyses watch which
/// cones go definite as inputs are pinned.
///
/// # Panics
///
/// Panics if `inputs` does not have one value per primary input.
pub fn ternary_node_values(aig: &Aig, inputs: &[Ternary]) -> Vec<Ternary> {
    assert_eq!(inputs.len(), aig.num_inputs(), "one value per input");
    let mut values = vec![Ternary::Zero; aig.num_nodes()];
    for v in aig.iter_vars() {
        values[v as usize] = match aig.node(v) {
            NodeKind::Const0 => Ternary::Zero,
            NodeKind::Input(i) => inputs[i as usize],
            NodeKind::And(a, b) => {
                let va = values[a.var() as usize].xor_complement(a.is_complement());
                let vb = values[b.var() as usize].xor_complement(b.is_complement());
                va.and(vb)
            }
        };
    }
    values
}

/// Ternary simulation of the primary outputs (see [`ternary_node_values`]).
///
/// # Panics
///
/// Panics if `inputs` does not have one value per primary input.
pub fn ternary_eval(aig: &Aig, inputs: &[Ternary]) -> Vec<Ternary> {
    let values = ternary_node_values(aig, inputs);
    aig.outputs()
        .iter()
        .map(|o| values[o.var() as usize].xor_complement(o.is_complement()))
        .collect()
}

/// Computes the truth table patterns of every node of a *cone* over given
/// leaf patterns, without touching the rest of the graph.
///
/// `leaf_patterns` maps leaf vars to their pattern words; all cone nodes
/// between the leaves and `root` must be AND nodes.
///
/// # Panics
///
/// Panics if the cone reaches an input or constant that is not in
/// `leaf_patterns` (the constant node 0 is implicitly all-zero).
pub fn simulate_cone(
    aig: &Aig,
    root: Var,
    leaf_patterns: &std::collections::HashMap<Var, Vec<u64>>,
    num_words: usize,
) -> Vec<u64> {
    use std::collections::HashMap;
    let mut memo: HashMap<Var, Vec<u64>> = leaf_patterns.clone();
    memo.insert(0, vec![0u64; num_words]);
    fn go(
        aig: &Aig,
        v: Var,
        memo: &mut std::collections::HashMap<Var, Vec<u64>>,
        num_words: usize,
    ) -> Vec<u64> {
        if let Some(p) = memo.get(&v) {
            return p.clone();
        }
        match aig.node(v) {
            NodeKind::And(a, b) => {
                let pa = go(aig, a.var(), memo, num_words);
                let pb = go(aig, b.var(), memo, num_words);
                let out: Vec<u64> = (0..num_words)
                    .map(|w| {
                        let wa = if a.is_complement() { !pa[w] } else { pa[w] };
                        let wb = if b.is_complement() { !pb[w] } else { pb[w] };
                        wa & wb
                    })
                    .collect();
                memo.insert(v, out.clone());
                out
            }
            _ => panic!("cone reached unmapped non-AND node {v}"),
        }
    }
    go(aig, root, &mut memo, num_words)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        (aig, a, b, f)
    }

    #[test]
    fn simulation_matches_eval() {
        let (aig, _, _, _) = xor_aig();
        let sim = SimVectors::random(&aig, 2, 1);
        for pat in 0..sim.num_patterns() {
            let (w, bit) = (pat / 64, pat % 64);
            let ins: Vec<bool> = (0..aig.num_inputs())
                .map(|i| (sim.node_pattern(aig.inputs()[i])[w] >> bit) & 1 != 0)
                .collect();
            let expect = aig.eval(&ins);
            let got = (sim.lit_pattern(aig.outputs()[0])[w] >> bit) & 1 != 0;
            assert_eq!(got, expect[0]);
        }
    }

    #[test]
    fn probably_equivalent_accepts_identical() {
        let (a, _, _, _) = xor_aig();
        let b = a.clone();
        assert!(probably_equivalent(&a, &b, 4, 3));
    }

    #[test]
    fn probably_equivalent_rejects_different() {
        let (a, _, _, _) = xor_aig();
        let mut b = Aig::new();
        let x = b.add_input();
        let y = b.add_input();
        let f = b.and(x, y);
        b.add_output(f);
        assert!(!probably_equivalent(&a, &b, 4, 3));
    }

    #[test]
    fn signal_probability_of_constant() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.add_output(a);
        let sim = SimVectors::random(&aig, 8, 9);
        assert_eq!(sim.signal_probability(0), 0.0);
        let p = sim.signal_probability(a.var());
        assert!((p - 0.5).abs() < 0.1, "input probability ~0.5, got {p}");
    }

    #[test]
    fn lits_equal_detects_complement() {
        let (aig, a, _, _) = xor_aig();
        let sim = SimVectors::random(&aig, 4, 7);
        assert!(sim.lits_equal(a, a));
        assert!(!sim.lits_equal(a, !a));
    }

    #[test]
    fn lit_word_and_cross_compare_agree_with_lit_pattern() {
        let (aig, a, b, f) = xor_aig();
        let sim = SimVectors::random(&aig, 4, 11);
        for lit in [a, b, f, !f] {
            let owned = sim.lit_pattern(lit);
            for (w, &word) in owned.iter().enumerate() {
                assert_eq!(sim.lit_word(lit, w), word);
            }
        }
        let other = sim.clone();
        assert!(sim.lits_equal_across(f, &other, f));
        assert!(!sim.lits_equal_across(f, &other, !f));
    }

    #[test]
    fn ternary_case_split_finds_hidden_constant() {
        // g = (a & b) & !a == 0, built through two distinct AND nodes so
        // one-level strash simplification cannot see it. All-X ternary
        // simulation cannot either (every fanin stays X) — but pinning
        // `a` to each cofactor makes g definite-zero both ways, which is
        // exactly how the fraig pre-pass seeds constant candidates.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let g = aig.and(ab, !a);
        aig.add_output(g);
        assert!(!g.is_const(), "strash must not fold the two-level identity");
        let all_x = ternary_node_values(&aig, &[Ternary::X, Ternary::X]);
        assert_eq!(
            all_x[g.var() as usize],
            Ternary::X,
            "all-X alone is blind here"
        );
        let lo = ternary_node_values(&aig, &[Ternary::Zero, Ternary::X]);
        let hi = ternary_node_values(&aig, &[Ternary::One, Ternary::X]);
        assert_eq!(lo[g.var() as usize], Ternary::Zero);
        assert_eq!(hi[g.var() as usize], Ternary::Zero);
        assert_eq!(
            ternary_eval(&aig, &[Ternary::Zero, Ternary::X]),
            vec![Ternary::Zero]
        );
    }

    #[test]
    fn ternary_matches_boolean_eval_on_definite_inputs() {
        let (aig, _, _, _) = xor_aig();
        for pat in 0..4u32 {
            let bools: Vec<bool> = (0..2).map(|i| pat >> i & 1 != 0).collect();
            let terns: Vec<Ternary> = bools
                .iter()
                .map(|&v| if v { Ternary::One } else { Ternary::Zero })
                .collect();
            let want: Vec<Ternary> = aig
                .eval(&bools)
                .into_iter()
                .map(|v| if v { Ternary::One } else { Ternary::Zero })
                .collect();
            assert_eq!(ternary_eval(&aig, &terns), want);
        }
    }

    #[test]
    fn ternary_x_propagates_only_where_observable() {
        // f = a & b: with a = 0, the X on b is blocked (f = 0); with
        // a = 1 it is observable (f = X).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        assert_eq!(
            ternary_eval(&aig, &[Ternary::Zero, Ternary::X]),
            vec![Ternary::Zero]
        );
        assert_eq!(
            ternary_eval(&aig, &[Ternary::One, Ternary::X]),
            vec![Ternary::X]
        );
    }

    #[test]
    fn cone_simulation() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let mut leaves = std::collections::HashMap::new();
        leaves.insert(a.var(), vec![0b1100u64]);
        leaves.insert(b.var(), vec![0b1010u64]);
        let out = simulate_cone(&aig, f.var(), &leaves, 1);
        assert_eq!(out[0], 0b1000);
    }
}
