//! Truth tables over up to 16 variables, stored as bit-parallel `u64` words.
//!
//! Truth tables are the workhorse of cut-based synthesis: a cut's function is
//! computed by simulating the cone over the elementary variable tables, then
//! canonised ([NPN](crate::npn)), matched, or re-synthesised
//! ([ISOP](crate::isop)).

use std::fmt;

/// Maximum number of variables supported by [`Tt`].
pub const MAX_VARS: usize = 16;

const MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A truth table over `nvars` variables.
///
/// Bit `i` of the table is the function value for the input assignment whose
/// binary encoding is `i` (variable 0 is the least significant).
///
/// # Example
///
/// ```
/// use almost_aig::Tt;
/// let a = Tt::var(0, 2);
/// let b = Tt::var(1, 2);
/// let f = a.and(&b);
/// assert_eq!(f.count_ones(), 1);
/// assert!(f.get_bit(0b11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tt {
    nvars: usize,
    words: Vec<u64>,
}

fn words_for(nvars: usize) -> usize {
    if nvars <= 6 {
        1
    } else {
        1 << (nvars - 6)
    }
}

/// Mask selecting the valid bits of the (single) word of a small table.
fn small_mask(nvars: usize) -> u64 {
    if nvars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << nvars)) - 1
    }
}

impl Tt {
    /// The constant-false table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 16`.
    pub fn zero(nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "at most {MAX_VARS} variables supported");
        Tt {
            nvars,
            words: vec![0; words_for(nvars)],
        }
    }

    /// The constant-true table over `nvars` variables.
    pub fn one(nvars: usize) -> Self {
        let mut tt = Tt::zero(nvars);
        for w in &mut tt.words {
            *w = u64::MAX;
        }
        tt.mask();
        tt
    }

    /// The projection function for variable `var` over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars` or `nvars > 16`.
    pub fn var(var: usize, nvars: usize) -> Self {
        assert!(var < nvars, "variable {var} out of range for {nvars} vars");
        let mut tt = Tt::zero(nvars);
        if var < 6 {
            for w in &mut tt.words {
                *w = MASKS[var];
            }
        } else {
            let stride = 1 << (var - 6);
            let mut i = 0;
            while i < tt.words.len() {
                for j in 0..stride {
                    if i + stride + j < tt.words.len() {
                        tt.words[i + stride + j] = u64::MAX;
                    }
                }
                i += 2 * stride;
            }
        }
        tt.mask();
        tt
    }

    /// Builds a table from raw words.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match the word count for `nvars`.
    pub fn from_words(nvars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(nvars));
        let mut tt = Tt { nvars, words };
        tt.mask();
        tt
    }

    /// Builds a ≤6-variable table from a single word.
    pub fn from_u64(nvars: usize, word: u64) -> Self {
        assert!(nvars <= 6);
        let mut tt = Tt {
            nvars,
            words: vec![word],
        };
        tt.mask();
        tt
    }

    fn mask(&mut self) {
        if self.nvars < 6 {
            self.words[0] &= small_mask(self.nvars);
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The underlying words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// For tables of ≤6 variables, the single backing word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 variables.
    pub fn as_u64(&self) -> u64 {
        assert!(self.nvars <= 6);
        self.words[0]
    }

    /// Reads the function value for input assignment `index`.
    pub fn get_bit(&self, index: usize) -> bool {
        (self.words[index >> 6] >> (index & 63)) & 1 != 0
    }

    /// Sets the function value for input assignment `index`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        if value {
            self.words[index >> 6] |= 1 << (index & 63);
        } else {
            self.words[index >> 6] &= !(1 << (index & 63));
        }
    }

    /// Number of input assignments (2^nvars).
    pub fn num_bits(&self) -> usize {
        1 << self.nvars
    }

    /// Number of minterms (assignments mapped to true).
    pub fn count_ones(&self) -> u32 {
        if self.nvars < 6 {
            (self.words[0] & small_mask(self.nvars)).count_ones()
        } else {
            self.words.iter().map(|w| w.count_ones()).sum()
        }
    }

    /// Returns true if the table is constant false.
    pub fn is_zero(&self) -> bool {
        self.count_ones() == 0
    }

    /// Returns true if the table is constant true.
    pub fn is_one(&self) -> bool {
        self.count_ones() as usize == self.num_bits()
    }

    /// Bitwise complement.
    pub fn not(&self) -> Tt {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask();
        out
    }

    /// Bitwise AND with another table over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn and(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Tt) -> Tt {
        self.zip(other, |a, b| a ^ b)
    }

    fn zip(&self, other: &Tt, op: fn(u64, u64) -> u64) -> Tt {
        assert_eq!(self.nvars, other.nvars, "variable counts differ");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| op(a, b))
            .collect();
        let mut tt = Tt {
            nvars: self.nvars,
            words,
        };
        tt.mask();
        tt
    }

    /// Positive cofactor: the function with `var` fixed to 1 (the result
    /// still ranges over the same variable set, with `var` redundant).
    pub fn cofactor1(&self, var: usize) -> Tt {
        assert!(var < self.nvars);
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            for w in &mut out.words {
                let hi = *w & MASKS[var];
                *w = hi | (hi >> shift);
            }
        } else {
            let stride = 1 << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    out.words[i + j] = out.words[i + stride + j];
                }
                i += 2 * stride;
            }
        }
        out.mask();
        out
    }

    /// Negative cofactor: the function with `var` fixed to 0.
    pub fn cofactor0(&self, var: usize) -> Tt {
        assert!(var < self.nvars);
        let mut out = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            for w in &mut out.words {
                let lo = *w & !MASKS[var];
                *w = lo | (lo << shift);
            }
        } else {
            let stride = 1 << (var - 6);
            let n = out.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    out.words[i + stride + j] = out.words[i + j];
                }
                i += 2 * stride;
            }
        }
        out.mask();
        out
    }

    /// Returns true if the function depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.nvars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Swaps two variables of the function.
    pub fn swap_vars(&self, a: usize, b: usize) -> Tt {
        if a == b {
            return self.clone();
        }
        let ta = Tt::var(a, self.nvars);
        let tb = Tt::var(b, self.nvars);
        // f' = (f with a=1,b=1 on a&b) | ... via cofactor recomposition.
        let f11 = self.cofactor1(a).cofactor1(b);
        let f10 = self.cofactor1(a).cofactor0(b);
        let f01 = self.cofactor0(a).cofactor1(b);
        let f00 = self.cofactor0(a).cofactor0(b);
        // After swapping, (a,b) plays the role of (b,a).
        let mut out = Tt::zero(self.nvars);
        out = out.or(&ta.and(&tb).and(&f11));
        out = out.or(&ta.and(&tb.not()).and(&f01));
        out = out.or(&ta.not().and(&tb).and(&f10));
        out = out.or(&ta.not().and(&tb.not()).and(&f00));
        out
    }

    /// Flips (complements) one input variable of the function.
    pub fn flip_var(&self, var: usize) -> Tt {
        let tv = Tt::var(var, self.nvars);
        let c0 = self.cofactor0(var);
        let c1 = self.cofactor1(var);
        tv.and(&c0).or(&tv.not().and(&c1))
    }

    /// Applies an input permutation: output variable `i` takes the role of
    /// input variable `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nvars`.
    pub fn permute(&self, perm: &[usize]) -> Tt {
        assert_eq!(perm.len(), self.nvars);
        let mut out = Tt::zero(self.nvars);
        for idx in 0..self.num_bits() {
            if self.get_bit(idx) {
                let mut new_idx = 0usize;
                for (new_var, &old_var) in perm.iter().enumerate() {
                    if (idx >> old_var) & 1 != 0 {
                        new_idx |= 1 << new_var;
                    }
                }
                out.set_bit(new_idx, true);
            }
        }
        out
    }

    /// Extends the table to `nvars` variables (the new variables are
    /// redundant).
    ///
    /// # Panics
    ///
    /// Panics if `nvars` is smaller than the current variable count.
    pub fn extend_to(&self, nvars: usize) -> Tt {
        assert!(nvars >= self.nvars);
        if nvars == self.nvars {
            return self.clone();
        }
        let mut out = Tt::zero(nvars);
        let self_bits = self.num_bits();
        for idx in 0..out.num_bits() {
            if self.get_bit(idx % self_bits) {
                out.set_bit(idx, true);
            }
        }
        out
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt({}v,", self.nvars)?;
        for w in self.words.iter().rev() {
            write!(f, " {w:016x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_variables() {
        for nvars in 1..=8 {
            for v in 0..nvars {
                let tt = Tt::var(v, nvars);
                for idx in 0..tt.num_bits() {
                    assert_eq!(tt.get_bit(idx), (idx >> v) & 1 != 0, "v={v} idx={idx}");
                }
            }
        }
    }

    #[test]
    fn constants() {
        let z = Tt::zero(4);
        let o = Tt::one(4);
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(o.count_ones(), 16);
        assert_eq!(z.not(), o);
    }

    #[test]
    fn small_tables_stay_masked() {
        let o = Tt::one(2);
        assert_eq!(o.as_u64(), 0xF);
        let a = Tt::var(0, 1);
        assert_eq!(a.as_u64(), 0b10);
        assert_eq!(a.not().as_u64(), 0b01);
    }

    #[test]
    fn boolean_ops() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(&b).or(&c.not());
        for idx in 0..8 {
            let (va, vb, vc) = (idx & 1 != 0, idx & 2 != 0, idx & 4 != 0);
            assert_eq!(f.get_bit(idx), (va && vb) || !vc);
        }
    }

    #[test]
    fn cofactors_small() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let f = a.xor(&b);
        assert_eq!(f.cofactor0(0), b);
        assert_eq!(f.cofactor1(0), b.not());
        assert!(!f.depends_on(2));
        assert_eq!(f.support(), vec![0, 1]);
    }

    #[test]
    fn cofactors_large() {
        // 8-variable table: f = x7 XOR x0.
        let a = Tt::var(0, 8);
        let h = Tt::var(7, 8);
        let f = a.xor(&h);
        assert_eq!(f.cofactor0(7), a);
        assert_eq!(f.cofactor1(7), a.not());
        assert_eq!(f.cofactor0(0), h);
        assert!(f.depends_on(7));
        assert!(!f.depends_on(3));
    }

    #[test]
    fn swap_and_flip() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let f = a.and(&b.not());
        let g = f.swap_vars(0, 1);
        assert_eq!(g, b.and(&a.not()));
        let h = f.flip_var(1);
        assert_eq!(h, a.and(&b));
    }

    #[test]
    fn permute_matches_definition() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(&b).or(&c);
        let perm = [1usize, 2, 0];
        let g = f.permute(&perm);
        // g(new_idx) = f(idx) where new_idx bit i = idx bit perm[i].
        for idx in 0..8usize {
            let mut new_idx = 0usize;
            for (new_var, &old_var) in perm.iter().enumerate() {
                if (idx >> old_var) & 1 != 0 {
                    new_idx |= 1 << new_var;
                }
            }
            assert_eq!(g.get_bit(new_idx), f.get_bit(idx), "idx={idx}");
        }
        // A swap expressed as a permutation equals swap_vars.
        let swap = f.permute(&[1, 0, 2]);
        assert_eq!(swap, f.swap_vars(0, 1));
    }

    #[test]
    fn extend_keeps_function() {
        let a = Tt::var(0, 2);
        let b = Tt::var(1, 2);
        let f = a.xor(&b);
        let g = f.extend_to(4);
        for idx in 0..16 {
            assert_eq!(g.get_bit(idx), f.get_bit(idx & 3));
        }
        assert!(!g.depends_on(2));
        assert!(!g.depends_on(3));
    }
}
