//! Maximum fanout-free cone (MFFC) computation.
//!
//! The MFFC of a node `n` with respect to a cut is the set of AND nodes that
//! would become dead if `n` were replaced by new logic built from the cut
//! leaves. Its size is the "gain credit" used by the rewriting and
//! resubstitution passes.

use crate::aig::{Aig, Var};
use std::collections::HashSet;

/// Computes the size (in AND nodes, including `root`) of the MFFC of `root`
/// with respect to `leaves`.
///
/// `refs` must be the current fanout counts (see [`Aig::fanout_counts`]);
/// it is mutated during the computation but restored before returning.
pub fn mffc_size(aig: &Aig, root: Var, leaves: &HashSet<Var>, refs: &mut [u32]) -> usize {
    let count = deref(aig, root, leaves, refs);
    reref(aig, root, leaves, refs);
    count
}

/// Collects the MFFC node set itself (including `root`).
pub fn mffc_nodes(aig: &Aig, root: Var, leaves: &HashSet<Var>, refs: &mut [u32]) -> Vec<Var> {
    let mut nodes = Vec::new();
    deref_collect(aig, root, leaves, refs, &mut nodes);
    reref(aig, root, leaves, refs);
    nodes
}

fn deref(aig: &Aig, v: Var, leaves: &HashSet<Var>, refs: &mut [u32]) -> usize {
    let mut count = 1;
    let (a, b) = aig.and_fanins(v).expect("MFFC root must be an AND node");
    for fanin in [a.var(), b.var()] {
        if leaves.contains(&fanin) || !aig.is_and(fanin) {
            continue;
        }
        debug_assert!(refs[fanin as usize] > 0);
        refs[fanin as usize] -= 1;
        if refs[fanin as usize] == 0 {
            count += deref(aig, fanin, leaves, refs);
        }
    }
    count
}

fn deref_collect(aig: &Aig, v: Var, leaves: &HashSet<Var>, refs: &mut [u32], nodes: &mut Vec<Var>) {
    nodes.push(v);
    let (a, b) = aig.and_fanins(v).expect("MFFC root must be an AND node");
    for fanin in [a.var(), b.var()] {
        if leaves.contains(&fanin) || !aig.is_and(fanin) {
            continue;
        }
        refs[fanin as usize] -= 1;
        if refs[fanin as usize] == 0 {
            deref_collect(aig, fanin, leaves, refs, nodes);
        }
    }
}

fn reref(aig: &Aig, v: Var, leaves: &HashSet<Var>, refs: &mut [u32]) {
    let (a, b) = aig.and_fanins(v).expect("MFFC root must be an AND node");
    for fanin in [a.var(), b.var()] {
        if leaves.contains(&fanin) || !aig.is_and(fanin) {
            continue;
        }
        if refs[fanin as usize] == 0 {
            reref(aig, fanin, leaves, refs);
        }
        refs[fanin as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn chain_mffc_is_whole_cone() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        let mut refs = aig.fanout_counts();
        let leaves: HashSet<Var> = [a.var(), b.var(), c.var()].into_iter().collect();
        let size = mffc_size(&aig, abc.var(), &leaves, &mut refs);
        assert_eq!(size, 2);
        // refs restored
        assert_eq!(refs, aig.fanout_counts());
    }

    #[test]
    fn shared_node_not_in_mffc() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        aig.add_output(ab); // ab now has external fanout
        let mut refs = aig.fanout_counts();
        let leaves: HashSet<Var> = [a.var(), b.var(), c.var()].into_iter().collect();
        let size = mffc_size(&aig, abc.var(), &leaves, &mut refs);
        assert_eq!(size, 1, "ab is shared, only abc is freed");
        assert_eq!(refs, aig.fanout_counts());
    }

    #[test]
    fn leaves_stop_the_recursion() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        let mut refs = aig.fanout_counts();
        // Treat ab as a cut leaf: only abc itself is in the MFFC.
        let leaves: HashSet<Var> = [ab.var(), c.var()].into_iter().collect();
        let size = mffc_size(&aig, abc.var(), &leaves, &mut refs);
        assert_eq!(size, 1);
    }

    #[test]
    fn mffc_nodes_matches_size() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..4).map(|_| aig.add_input()).collect();
        let x = aig.and(ins[0], ins[1]);
        let y = aig.and(ins[2], ins[3]);
        let z = aig.and(x, y);
        aig.add_output(z);
        let mut refs = aig.fanout_counts();
        let leaves: HashSet<Var> = ins.iter().map(|l| l.var()).collect();
        let nodes = mffc_nodes(&aig, z.var(), &leaves, &mut refs);
        assert_eq!(nodes.len(), 3);
        assert_eq!(refs, aig.fanout_counts());
    }
}
