//! NPN canonisation of small truth tables.
//!
//! Two functions are NPN-equivalent if one can be obtained from the other by
//! Negating inputs, Permuting inputs, and/or Negating the output. Canonising
//! cut functions lets the rewriting pass and the technology mapper treat all
//! 65 536 four-variable functions as 222 classes.

use crate::truth::Tt;

/// A concrete NPN transformation: apply input negations (`input_flips`),
/// then the permutation (`perm[i]` = which original variable feeds new
/// position `i`), then optional output negation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// Bitmask of inputs complemented before permutation.
    pub input_flips: u32,
    /// Permutation applied after flipping.
    pub perm: Vec<usize>,
    /// Whether the output is complemented.
    pub output_flip: bool,
}

impl NpnTransform {
    /// The identity transformation over `nvars` variables.
    pub fn identity(nvars: usize) -> Self {
        NpnTransform {
            input_flips: 0,
            perm: (0..nvars).collect(),
            output_flip: false,
        }
    }

    /// Applies this transformation to a truth table.
    pub fn apply(&self, tt: &Tt) -> Tt {
        let mut t = tt.clone();
        for v in 0..t.nvars() {
            if self.input_flips >> v & 1 != 0 {
                t = t.flip_var(v);
            }
        }
        t = t.permute(&self.perm);
        if self.output_flip {
            t = t.not();
        }
        t
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, remaining: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            let v = remaining.remove(i);
            prefix.push(v);
            rec(prefix, remaining, out);
            prefix.pop();
            remaining.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

/// Canonises a truth table of up to 4 variables under NPN equivalence by
/// exhaustive search (at most 2·16·24 = 768 transforms).
///
/// Returns the canonical representative (the minimum table under word
/// ordering) and a transformation such that `transform.apply(tt) ==
/// canonical`.
///
/// # Panics
///
/// Panics if `tt` has more than 4 variables.
pub fn canonize(tt: &Tt) -> (Tt, NpnTransform) {
    let n = tt.nvars();
    assert!(
        n <= 4,
        "exhaustive NPN canonisation is limited to 4 variables"
    );
    let perms = permutations(n);
    let mut best: Option<(Tt, NpnTransform)> = None;
    for flips in 0..(1u32 << n) {
        let mut flipped = tt.clone();
        for v in 0..n {
            if flips >> v & 1 != 0 {
                flipped = flipped.flip_var(v);
            }
        }
        for perm in &perms {
            let permuted = flipped.permute(perm);
            for &out_flip in &[false, true] {
                let cand = if out_flip {
                    permuted.not()
                } else {
                    permuted.clone()
                };
                let better = match &best {
                    None => true,
                    Some((b, _)) => cand.words() < b.words(),
                };
                if better {
                    best = Some((
                        cand,
                        NpnTransform {
                            input_flips: flips,
                            perm: perm.clone(),
                            output_flip: out_flip,
                        },
                    ));
                }
            }
        }
    }
    best.expect("at least the identity transform exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_roundtrip() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(&b).or(&c.not());
        let (canon, tr) = canonize(&f);
        assert_eq!(tr.apply(&f), canon);
    }

    #[test]
    fn npn_equivalent_functions_share_canon() {
        let a = Tt::var(0, 2);
        let b = Tt::var(1, 2);
        // AND, NOR, a&!b, !a&b, NAND, OR ... all NPN-equivalent to AND2.
        let funcs = [
            a.and(&b),
            a.not().and(&b.not()),
            a.and(&b.not()),
            a.not().and(&b),
            a.and(&b).not(),
            a.or(&b),
        ];
        let canon0 = canonize(&funcs[0]).0;
        for f in &funcs[1..] {
            assert_eq!(canonize(f).0, canon0);
        }
        // XOR is in a different class.
        assert_ne!(canonize(&a.xor(&b)).0, canon0);
    }

    #[test]
    fn four_var_class_count_is_plausible() {
        // Count NPN classes over a sample of 4-var functions; the classic
        // result is 222 classes over all 65536 functions. A random sample
        // must never produce more canonical forms than inputs and every
        // canonical form must be a fixed point.
        let mut classes = std::collections::HashSet::new();
        let mut seed = 1u64;
        for _ in 0..64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let f = Tt::from_u64(4, seed >> 32);
            let (canon, _) = canonize(&f);
            let (canon2, _) = canonize(&canon);
            assert_eq!(canon, canon2, "canonisation must be idempotent");
            classes.insert(canon.words().to_vec());
        }
        assert!(classes.len() <= 64);
        assert!(classes.len() > 5, "random sample spans several classes");
    }

    #[test]
    fn identity_transform_is_noop() {
        let f = Tt::from_u64(3, 0x5A);
        let id = NpnTransform::identity(3);
        assert_eq!(id.apply(&f), f);
    }
}
