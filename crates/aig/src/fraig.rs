//! Fraig / SAT sweeping: sim-guided incremental equivalence merging.
//!
//! A *fraig* (functionally reduced AIG) contains no two nodes that compute
//! the same function (up to complement) of the primary inputs. This module
//! rebuilds an [`Aig`] node by node in topological order, and before
//! admitting each freshly strashed AND it asks: *is this node equivalent to
//! one we already have?* The answer is computed in three tiers, cheapest
//! first:
//!
//! 1. **Ternary simulation** — a cofactor scan over the source netlist
//!    ([`sim::ternary_node_values`]): each input in turn is pinned to `0`
//!    and to `1` with every other input `X`; a node definite to the same
//!    value in both cofactors is a *constant* that one-level strash
//!    simplification cannot see (e.g. `(a&b) & !a`). Flagged nodes are
//!    proved against the constant directly, skipping the class machinery.
//! 2. **Random simulation signatures** — every node carries a
//!    64-bit-per-word signature over shared random input patterns. Nodes
//!    whose signatures differ (under both phases) are *certainly* different;
//!    only signature-equal nodes become merge candidates. Signatures are
//!    hashed complement-canonically (complement the row if its first bit is
//!    set), so one hash lookup finds both same-phase and opposite-phase
//!    candidates.
//! 3. **Incremental SAT** — a candidate pair is handed to a single
//!    incremental [`Solver`] that sweeps the whole netlist: the two cones
//!    are Tseitin-encoded lazily (shared across all queries), a fresh
//!    difference literal `d ⇒ (x ⊕ y)` is added, and the query is solved
//!    under the assumption `[d]`. UNSAT proves equivalence — the node is
//!    *merged*: its consumers are rebuilt on the representative (through
//!    strash, so downstream structure re-converges), and the equality is
//!    asserted as two binary clauses that accelerate later queries. SAT
//!    yields a counterexample, which is **fed back into the simulation
//!    vectors**: a new word whose bit 0 is the exact counterexample and
//!    whose remaining 63 bits are random perturbations of it, splitting
//!    every not-actually-equal class the cex distinguishes.
//!
//! Queries that exhaust the per-query conflict budget
//! ([`FraigConfig::hard_conflicts`]) are optionally *escalated*: the two
//! cones are re-encoded into a fresh [`PortfolioSolver`] (honouring
//! `ALMOST_SOLVERS`) and solved without a budget. With escalation off
//! ([`FraigConfig::recipe`]) a budget exhaustion simply skips the merge —
//! sound, bounded, and deterministic at any worker count.
//!
//! # Determinism
//!
//! For a fixed seed the merged network is identical at any portfolio
//! width: truly equivalent nodes never sim-split, candidates are tested in
//! deterministic (topological insertion) order, and an UNSAT verdict does
//! not depend on which solver found it. Only effort *stats* (conflicts,
//! escalations) vary with `ALMOST_SOLVERS`.

use std::collections::HashMap;
use std::time::Instant;

use almost_cdcl::portfolio::PortfolioSolver;
use almost_cdcl::solver::{SatLit, SatResult, SatVar, Solver};
use almost_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::aig::{Aig, Lit, NodeKind, Var};
use crate::sim::{self, Ternary};

/// Tuning knobs for a fraig sweep.
#[derive(Clone, Debug)]
pub struct FraigConfig {
    /// Initial random simulation words per node (64 patterns each).
    pub sim_words: usize,
    /// Seed for the simulation patterns and counterexample perturbation.
    pub seed: u64,
    /// Per-query conflict budget for the incremental sweep solver. A query
    /// that trips it is escalated (if [`FraigConfig::escalate`]) or
    /// skipped.
    pub hard_conflicts: u64,
    /// Route budget-exhausted proofs through a fresh unbudgeted
    /// [`PortfolioSolver`] over just the two cones (`ALMOST_SOLVERS`
    /// controls its width). Off = skip the merge instead, keeping the
    /// sweep bounded and thread-free.
    pub escalate: bool,
    /// Cap on counterexample feedback words appended over the whole sweep;
    /// once reached, refuted candidates are split only by the signatures
    /// already present.
    pub max_cex_words: usize,
}

impl Default for FraigConfig {
    /// The full-strength configuration used for CEC: escalation on, no
    /// merge left unproved for budget reasons unless the portfolio itself
    /// is interrupted.
    fn default() -> Self {
        FraigConfig {
            sim_words: 8,
            seed: 0x0F8A_161D,
            hard_conflicts: 4096,
            escalate: true,
            max_cex_words: 64,
        }
    }
}

impl FraigConfig {
    /// The bounded configuration behind the `fraig` recipe letter
    /// ([`crate::passes::Pass::Fraig`]): smaller budgets, no portfolio
    /// escalation (budget-skips are sound), so a sweep inside the
    /// simulated-annealing inner loop stays cheap and deterministic at any
    /// `ALMOST_JOBS`/`ALMOST_SOLVERS` setting.
    pub fn recipe() -> Self {
        FraigConfig {
            sim_words: 4,
            hard_conflicts: 512,
            escalate: false,
            max_cex_words: 16,
            ..FraigConfig::default()
        }
    }
}

/// Effort and outcome counters for one fraig sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FraigStats {
    /// Candidate equivalence classes formed (signature representatives,
    /// excluding the built-in constant class).
    pub classes: u64,
    /// Candidate pairs proved equivalent by SAT (UNSAT verdicts).
    pub proved: u64,
    /// Candidate pairs refuted by SAT (a counterexample was found).
    pub refuted: u64,
    /// Candidate pairs skipped on budget exhaustion (only with
    /// [`FraigConfig::escalate`] off, or a cancelled portfolio query).
    pub skipped: u64,
    /// Nodes merged into a representative (equals `proved`; kept separate
    /// because it is the number of fanout rewrites applied).
    pub merges: u64,
    /// Merges whose representative is a constant.
    pub constants: u64,
    /// Structural constants flagged by the ternary all-`X` pre-pass
    /// (a subset of `constants` once SAT-confirmed).
    pub ternary_constants: u64,
    /// Budget-exhausted queries re-run on a fresh portfolio solver.
    pub escalations: u64,
    /// Total SAT queries posed (sweep solver + escalations).
    pub sat_calls: u64,
    /// Counterexample feedback words appended to the simulation vectors.
    pub sim_words_added: u64,
    /// AND count of the input netlist.
    pub ands_before: u64,
    /// AND count of the swept netlist.
    pub ands_after: u64,
    /// Wall-clock time of the sweep, in microseconds.
    pub wall_us: u64,
}

/// Sweeps `aig` with the full-strength [`FraigConfig::default`],
/// returning the functionally reduced network.
pub fn fraig(aig: &Aig) -> Aig {
    fraig_with(aig, &FraigConfig::default()).0
}

/// Sweeps `aig` under `config`, returning the reduced network and the
/// sweep's [`FraigStats`]. Emits one `fraig_pass` telemetry event.
pub fn fraig_with(aig: &Aig, config: &FraigConfig) -> (Aig, FraigStats) {
    let start = Instant::now();
    let mut sweeper = Sweeper::new(aig, config);
    let result = sweeper.run();
    let mut stats = sweeper.stats;
    stats.classes = sweeper.members.len() as u64 - 1;
    stats.ands_before = aig.num_ands() as u64;
    stats.ands_after = result.num_ands() as u64;
    stats.wall_us = start.elapsed().as_micros() as u64;
    telemetry::trace(|| telemetry::EventKind::FraigPass {
        classes: stats.classes,
        proved: stats.proved,
        refuted: stats.refuted,
        skipped: stats.skipped,
        merges: stats.merges,
        constants: stats.constants,
        escalations: stats.escalations,
        sat_calls: stats.sat_calls,
        sim_words_added: stats.sim_words_added,
        ands_before: stats.ands_before,
        ands_after: stats.ands_after,
        wall_us: stats.wall_us,
    });
    (result, stats)
}

/// Outcome of one equivalence query.
enum Outcome {
    Proved,
    Refuted(Vec<bool>),
    Skipped,
}

/// Outcome of scanning one candidate class.
enum Scan {
    /// Proved equal to this representative literal.
    Merged(Lit),
    /// Counterexample words were appended; signatures (and the class key)
    /// changed — redo the lookup.
    Rescan,
    /// No provably-equal member: the node becomes a representative.
    NewRep,
}

struct Sweeper<'a> {
    config: &'a FraigConfig,
    src: &'a Aig,
    out: Aig,
    /// Simulation signature per `out` var, `num_words` words each.
    sigs: Vec<Vec<u64>>,
    num_words: usize,
    base_words: usize,
    rng: StdRng,
    /// Representative literal per `out` var — identity unless the node was
    /// proved equal to an earlier one.
    repr: Vec<Lit>,
    /// Lazily assigned SAT literal per `out` var (sweep solver).
    sat_of: Vec<Option<SatLit>>,
    solver: Solver,
    /// SAT vars of the `out` inputs, in input order (for cex extraction).
    input_sat: Vec<SatVar>,
    /// Complement-canonical signature hash → class members, in insertion
    /// (topological) order. Seeded with the constant node.
    classes: HashMap<u64, Vec<Var>>,
    /// All class representatives in insertion order, for deterministic
    /// class-table rebuilds after a signature extension.
    members: Vec<Var>,
    stats: FraigStats,
}

impl<'a> Sweeper<'a> {
    fn new(src: &'a Aig, config: &'a FraigConfig) -> Self {
        let num_words = config.sim_words.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut out = Aig::new();
        let mut solver = Solver::new();

        // Node 0: constant false, in both worlds. Its SAT literal is a
        // variable pinned false by a unit clause.
        let f = solver.new_var();
        solver.add_clause(&[SatLit::negative(f)]);
        let mut sigs = vec![vec![0u64; num_words]];
        let mut sat_of = vec![Some(SatLit::positive(f))];
        let mut repr = vec![Lit::FALSE];

        let mut input_sat = Vec::with_capacity(src.num_inputs());
        for i in 0..src.num_inputs() {
            let lit = out.add_named_input(src.input_name(i));
            sigs.push((0..num_words).map(|_| rng.random::<u64>()).collect());
            let v = solver.new_var();
            sat_of.push(Some(SatLit::positive(v)));
            input_sat.push(v);
            repr.push(lit);
        }

        let mut sweeper = Sweeper {
            config,
            src,
            out,
            sigs,
            num_words,
            base_words: num_words,
            rng,
            repr,
            sat_of,
            solver,
            input_sat,
            classes: HashMap::new(),
            members: vec![0],
            stats: FraigStats::default(),
        };
        let key = sweeper.canonical_key(0);
        sweeper.classes.insert(key, vec![0]);
        sweeper
    }

    fn run(&mut self) -> Aig {
        // Ternary pre-pass: structural constants, provable without a
        // class lookup.
        let ternary = ternary_constant_scan(self.src);

        let mut map: Vec<Lit> = vec![Lit::FALSE; self.src.num_nodes()];
        for (i, &iv) in self.src.inputs().iter().enumerate() {
            map[iv as usize] = Lit::positive(self.out.inputs()[i]);
        }

        for v in self.src.iter_vars() {
            let NodeKind::And(a, b) = self.src.node(v) else {
                continue;
            };
            let fa = map[a.var() as usize].xor_complement(a.is_complement());
            let fb = map[b.var() as usize].xor_complement(b.is_complement());
            let cand = self.out.and(fa, fb);
            if cand.is_const() {
                map[v as usize] = cand;
                continue;
            }
            let cv = cand.var();
            if (cv as usize) < self.sigs.len() {
                // Strash hit on an existing node: follow its representative.
                map[v as usize] = self.repr[cv as usize].xor_complement(cand.is_complement());
                continue;
            }
            debug_assert_eq!(cv as usize, self.sigs.len(), "fresh nodes are dense");
            self.push_node(cv);
            let rep = match ternary[v as usize] {
                Ternary::Zero => self.merge_constant(cv, Lit::FALSE),
                Ternary::One => self.merge_constant(cv, Lit::TRUE),
                Ternary::X => self.classify(cv),
            };
            self.repr[cv as usize] = rep;
            map[v as usize] = rep.xor_complement(cand.is_complement());
        }

        for (i, &o) in self.src.outputs().iter().enumerate() {
            let lit = map[o.var() as usize].xor_complement(o.is_complement());
            self.out.add_named_output(lit, self.src.output_name(i));
        }
        // Merged-away nodes are dangling now; compact drops them (inputs
        // keep their order and names).
        self.out.compact()
    }

    /// Computes and stores the signature row of a freshly created AND.
    fn push_node(&mut self, cv: Var) {
        let (a, b) = self.out.and_fanins(cv).expect("fresh fraig node is an AND");
        let row = (0..self.num_words)
            .map(|w| sig_word(&self.sigs, a, w) & sig_word(&self.sigs, b, w))
            .collect();
        self.sigs.push(row);
        self.sat_of.push(None);
        self.repr.push(Lit::positive(cv));
    }

    /// Proves a ternary-flagged structural constant against `constant`.
    /// Refutation is impossible (ternary simulation is conservative); a
    /// budget skip falls back to the ordinary class machinery.
    fn merge_constant(&mut self, cv: Var, constant: Lit) -> Lit {
        self.stats.ternary_constants += 1;
        match self.prove_equal(Lit::positive(cv), constant) {
            Outcome::Proved => {
                self.stats.proved += 1;
                self.stats.merges += 1;
                self.stats.constants += 1;
                constant
            }
            Outcome::Refuted(_) => {
                unreachable!("ternary simulation flagged a non-constant node")
            }
            Outcome::Skipped => {
                self.stats.skipped += 1;
                self.classify(cv)
            }
        }
    }

    /// Finds the representative literal for a fresh node: merges it into a
    /// proven-equivalent class, or registers it as a new representative.
    fn classify(&mut self, cv: Var) -> Lit {
        loop {
            let key = self.canonical_key(cv);
            match self.scan_class(cv, key) {
                Scan::Merged(rep) => return rep,
                Scan::Rescan => continue,
                Scan::NewRep => {
                    self.classes.entry(key).or_default().push(cv);
                    self.members.push(cv);
                    return Lit::positive(cv);
                }
            }
        }
    }

    fn scan_class(&mut self, cv: Var, key: u64) -> Scan {
        let Some(candidates) = self.classes.get(&key).cloned() else {
            return Scan::NewRep;
        };
        let phase = self.sigs[cv as usize][0] & 1 != 0;
        for m in candidates {
            let flip = phase != (self.sigs[m as usize][0] & 1 != 0);
            if !self.sig_rows_equal(cv, m, flip) {
                continue; // hash collision or an already-split pair
            }
            let rep = Lit::new(m, flip);
            match self.prove_equal(Lit::positive(cv), rep) {
                Outcome::Proved => {
                    self.stats.proved += 1;
                    self.stats.merges += 1;
                    if m == 0 {
                        self.stats.constants += 1;
                    }
                    return Scan::Merged(rep);
                }
                Outcome::Refuted(cex) => {
                    self.stats.refuted += 1;
                    if self.append_cex(&cex) {
                        // The new word distinguishes cv from m, so the
                        // rescan cannot retry this pair.
                        return Scan::Rescan;
                    }
                    // Cex cap reached: signatures unchanged, keep scanning.
                }
                Outcome::Skipped => self.stats.skipped += 1,
            }
        }
        Scan::NewRep
    }

    /// Complement-canonical FNV hash of a node's signature row.
    fn canonical_key(&self, v: Var) -> u64 {
        let row = &self.sigs[v as usize];
        let flip = row[0] & 1 != 0;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in row {
            h = (h ^ if flip { !w } else { w }).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn sig_rows_equal(&self, a: Var, b: Var, flip: bool) -> bool {
        self.sigs[a as usize]
            .iter()
            .zip(&self.sigs[b as usize])
            .all(|(&x, &y)| x == if flip { !y } else { y })
    }

    /// One equivalence query `x == y` against the incremental sweep
    /// solver, with optional portfolio escalation on budget exhaustion.
    /// A proof is locked in as two binary clauses.
    fn prove_equal(&mut self, x: Lit, y: Lit) -> Outcome {
        let lx = encode_cone(&self.out, &mut self.solver, &mut self.sat_of, x);
        let ly = encode_cone(&self.out, &mut self.solver, &mut self.sat_of, y);
        let d = SatLit::positive(self.solver.new_var());
        // d ⇒ (lx ⊕ ly): only the forward direction is needed, d is only
        // ever assumed positive.
        self.solver.add_clause(&[!d, lx, ly]);
        self.solver.add_clause(&[!d, !lx, !ly]);
        self.stats.sat_calls += 1;
        let outcome = match self
            .solver
            .solve_limited(&[d], self.config.hard_conflicts.max(1))
        {
            Some(SatResult::Unsat) => Outcome::Proved,
            Some(SatResult::Sat) => Outcome::Refuted(
                self.input_sat
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
            None if self.config.escalate => self.escalate(x, y),
            None => Outcome::Skipped,
        };
        // Retire the difference literal; on a proof, assert the equality
        // so later queries get it for free.
        self.solver.add_clause(&[!d]);
        if matches!(outcome, Outcome::Proved) {
            self.solver.add_clause(&[!lx, ly]);
            self.solver.add_clause(&[lx, !ly]);
        }
        outcome
    }

    /// Re-proves a budget-exhausted query on a fresh unbudgeted portfolio
    /// over just the two cones.
    fn escalate(&mut self, x: Lit, y: Lit) -> Outcome {
        self.stats.escalations += 1;
        self.stats.sat_calls += 1;
        let mut portfolio = PortfolioSolver::new("fraig");
        let mut emap: Vec<Option<SatLit>> = vec![None; self.sigs.len()];
        let f = portfolio.new_var();
        portfolio.add_clause(&[SatLit::negative(f)]);
        emap[0] = Some(SatLit::positive(f));
        let mut inputs = Vec::with_capacity(self.input_sat.len());
        for &iv in self.out.inputs() {
            let v = portfolio.new_var();
            emap[iv as usize] = Some(SatLit::positive(v));
            inputs.push(v);
        }
        let lx = encode_cone(&self.out, &mut portfolio, &mut emap, x);
        let ly = encode_cone(&self.out, &mut portfolio, &mut emap, y);
        // Assert the difference directly — no assumptions, one-shot query.
        portfolio.add_clause(&[lx, ly]);
        portfolio.add_clause(&[!lx, !ly]);
        match portfolio.try_solve(&[], None) {
            Ok(SatResult::Unsat) => Outcome::Proved,
            Ok(SatResult::Sat) => Outcome::Refuted(
                inputs
                    .iter()
                    .map(|&v| portfolio.value(v).unwrap_or(false))
                    .collect(),
            ),
            Err(_) => Outcome::Skipped, // cancelled — treat as indeterminate
        }
    }

    /// Appends one simulation word derived from a counterexample: bit 0 is
    /// the exact cex, bits 1..63 random perturbations of it (≈ 1/8 flip
    /// density). Returns false (no-op) once the cex-word cap is reached.
    fn append_cex(&mut self, cex: &[bool]) -> bool {
        if self.num_words - self.base_words >= self.config.max_cex_words {
            return false;
        }
        let w = self.num_words;
        self.num_words += 1;
        self.stats.sim_words_added += 1;
        for v in 0..self.out.num_nodes() as Var {
            let word = match self.out.node(v) {
                NodeKind::Const0 => 0,
                NodeKind::Input(i) => {
                    let base = if cex[i as usize] { !0u64 } else { 0 };
                    let mask = (self.rng.random::<u64>()
                        & self.rng.random::<u64>()
                        & self.rng.random::<u64>())
                        & !1;
                    base ^ mask
                }
                NodeKind::And(a, b) => sig_word(&self.sigs, a, w) & sig_word(&self.sigs, b, w),
            };
            self.sigs[v as usize].push(word);
        }
        // Signatures (and canonical keys) changed: rebuild the class table
        // in the original insertion order.
        self.classes.clear();
        for i in 0..self.members.len() {
            let m = self.members[i];
            let key = self.canonical_key(m);
            self.classes.entry(key).or_default().push(m);
        }
        true
    }
}

/// Inputs case-split on by the ternary constant scan, at most. The scan
/// is `O(splits · nodes)`; past this many inputs the class machinery
/// (which catches every constant anyway, just via random sim + SAT) takes
/// over alone.
const TERNARY_SPLITS: usize = 64;

/// Finds structural constants by one-input case splitting: a node that is
/// definite to the same value under both cofactors of some input holds
/// that value everywhere. Sound but incomplete — exactly the cheap tier
/// of constant detection; [`Ternary::X`] marks the undecided rest.
fn ternary_constant_scan(aig: &Aig) -> Vec<Ternary> {
    let num_inputs = aig.num_inputs();
    let mut result = vec![Ternary::X; aig.num_nodes()];
    let mut inputs = vec![Ternary::X; num_inputs];
    for i in 0..num_inputs.min(TERNARY_SPLITS) {
        inputs[i] = Ternary::Zero;
        let lo = sim::ternary_node_values(aig, &inputs);
        inputs[i] = Ternary::One;
        let hi = sim::ternary_node_values(aig, &inputs);
        inputs[i] = Ternary::X;
        for v in aig.iter_vars() {
            let v = v as usize;
            if result[v] == Ternary::X
                && aig.is_and(v as Var)
                && lo[v] != Ternary::X
                && lo[v] == hi[v]
            {
                result[v] = lo[v];
            }
        }
    }
    result
}

/// Word `w` of a literal's signature (complemented on the fly).
#[inline]
fn sig_word(sigs: &[Vec<u64>], lit: Lit, w: usize) -> u64 {
    let x = sigs[lit.var() as usize][w];
    if lit.is_complement() {
        !x
    } else {
        x
    }
}

/// The clause-accepting surface shared by the serial sweep solver and the
/// escalation portfolio. (The richer `ClauseSink` lives in `almost_sat`,
/// a layer above this crate.)
trait SolverLike {
    fn new_var(&mut self) -> SatVar;
    fn add_clause(&mut self, lits: &[SatLit]);
}

impl SolverLike for Solver {
    fn new_var(&mut self) -> SatVar {
        Solver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[SatLit]) {
        Solver::add_clause(self, lits)
    }
}

impl SolverLike for PortfolioSolver {
    fn new_var(&mut self) -> SatVar {
        PortfolioSolver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[SatLit]) {
        PortfolioSolver::add_clause(self, lits)
    }
}

/// Tseitin-encodes the cone of `root` into `solver`, memoised in `map`
/// (inputs and the constant must be pre-encoded). Returns the SAT literal
/// of `root`.
fn encode_cone<S: SolverLike>(
    aig: &Aig,
    solver: &mut S,
    map: &mut [Option<SatLit>],
    root: Lit,
) -> SatLit {
    let mut stack = vec![root.var()];
    while let Some(&v) = stack.last() {
        if map[v as usize].is_some() {
            stack.pop();
            continue;
        }
        let (a, b) = aig
            .and_fanins(v)
            .expect("inputs and the constant are pre-encoded");
        let mut ready = true;
        for child in [a.var(), b.var()] {
            if map[child as usize].is_none() {
                stack.push(child);
                ready = false;
            }
        }
        if !ready {
            continue;
        }
        stack.pop();
        let la = tseitin_lit(map, a);
        let lb = tseitin_lit(map, b);
        let c = SatLit::positive(solver.new_var());
        solver.add_clause(&[!c, la]);
        solver.add_clause(&[!c, lb]);
        solver.add_clause(&[c, !la, !lb]);
        map[v as usize] = Some(c);
    }
    tseitin_lit(map, root)
}

#[inline]
fn tseitin_lit(map: &[Option<SatLit>], lit: Lit) -> SatLit {
    let s = map[lit.var() as usize].expect("cone encoded");
    if lit.is_complement() {
        !s
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::tests::random_aig;
    use crate::sim::probably_equivalent;

    /// A netlist with redundant structure strash alone cannot merge:
    /// `f = a & b` next to `g = a & (b | (a & b))`, which is the same
    /// function computed through an absorption-redundant cone, plus
    /// `h = f XOR g`, a hidden constant false.
    fn redundant_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        let u = aig.or(b, f); // ≡ b by absorption; a distinct node
        let g = aig.and(a, u); // ≡ f, through a different fanin pair
        let h = aig.xor(f, g); // ≡ false; f and g are distinct nodes
        aig.add_output(f);
        aig.add_output(g);
        aig.add_output(h);
        assert!(
            !g.is_const() && g.var() != f.var(),
            "fixture must not strash"
        );
        assert!(!h.is_const(), "fixture must not strash");
        aig
    }

    #[test]
    fn merges_functionally_equal_nodes() {
        let aig = redundant_aig();
        let (swept, stats) = fraig_with(&aig, &FraigConfig::default());
        assert!(stats.merges > 0, "expected at least one merge: {stats:?}");
        // f and g collapse onto one node, h onto the constant.
        assert_eq!(swept.outputs()[0], swept.outputs()[1]);
        assert_eq!(swept.outputs()[2], Lit::FALSE);
        assert!(swept.num_ands() < aig.num_ands());
        assert!(probably_equivalent(&aig, &swept, 16, 7));
    }

    #[test]
    fn ternary_constant_is_proved_and_folded() {
        // g = (a & b) & !a == 0: two distinct AND nodes, invisible to
        // one-level strash, found by the ternary cofactor scan on `a`.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        let g = aig.and(ab, !a);
        assert!(!g.is_const(), "fixture must not strash");
        aig.add_output(g);
        let (swept, stats) = fraig_with(&aig, &FraigConfig::default());
        assert_eq!(swept.outputs()[0], Lit::FALSE);
        assert_eq!(swept.num_ands(), 0);
        assert!(stats.ternary_constants > 0, "{stats:?}");
        assert!(stats.constants > 0, "{stats:?}");
    }

    #[test]
    fn random_aigs_stay_equivalent_and_idempotent() {
        for seed in 0..20 {
            let aig = random_aig(6, 40, seed);
            let (swept, _) = fraig_with(&aig, &FraigConfig::default());
            assert!(
                probably_equivalent(&aig, &swept, 32, seed ^ 0xbeef),
                "fraig broke equivalence at seed {seed}"
            );
            assert!(swept.num_ands() <= aig.num_ands());
            let (again, stats) = fraig_with(&swept, &FraigConfig::default());
            assert_eq!(
                again.num_ands(),
                swept.num_ands(),
                "fraig not idempotent at seed {seed}: {stats:?}"
            );
            assert_eq!(stats.merges, 0, "second sweep must find nothing");
        }
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let aig = random_aig(8, 80, 3);
        let cfg = FraigConfig::default();
        let (a, _) = fraig_with(&aig, &cfg);
        let (b, _) = fraig_with(&aig, &cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn recipe_config_is_bounded_and_sound() {
        let aig = random_aig(10, 120, 11);
        let (swept, stats) = fraig_with(&aig, &FraigConfig::recipe());
        assert_eq!(stats.escalations, 0, "recipe config never escalates");
        assert!(probably_equivalent(&aig, &swept, 32, 99));
    }

    #[test]
    fn names_and_input_order_survive() {
        let mut aig = Aig::new();
        let a = aig.add_named_input("a");
        let b = aig.add_named_input("b");
        let f = aig.and(a, b);
        aig.add_named_output(f, "f");
        let (swept, _) = fraig_with(&aig, &FraigConfig::default());
        assert_eq!(swept.num_inputs(), 2);
        assert_eq!(swept.input_name(0), "a");
        assert_eq!(swept.input_name(1), "b");
        assert_eq!(swept.output_name(0), "f");
    }
}
