//! Compilation of an [`Aig`] into a flat instruction buffer for
//! bit-parallel batch evaluation.
//!
//! [`Aig::eval`] walks the node vector once per pattern, dispatching on
//! [`NodeKind`] and paying a fresh `Vec<bool>` of node values every call.
//! That is fine for spot checks and hopeless for an oracle serving
//! millions of queries. [`CompiledAig`] pays the walk once: the
//! output-reachable AND cone is lowered, in the graph's native
//! topological order, into a dense instruction buffer of packed `u32`
//! operands indexing a flat register file — no enum dispatch, no hash
//! lookups, no per-pattern allocation in the inner loop. Evaluation then
//! processes 64 patterns at a time as `u64` words, the same bit-parallel
//! trick [`crate::sim::SimVectors`] uses, but over the compiled buffer
//! instead of the node graph.
//!
//! Register layout: register 0 is constant false, registers
//! `1..=num_inputs` hold the primary inputs in input order, and each
//! compiled AND instruction appends one register. Operands encode
//! `register << 1 | complement` (the AIGER literal convention, applied to
//! registers); complementation is a branch-free XOR with
//! `(operand & 1).wrapping_neg()`.
//!
//! Dead nodes — AND gates unreachable from any output, the artifacts
//! synthesis passes and `.bench` round trips leave behind — are skipped
//! at compile time and counted in [`CompileStats::dead_skipped`]; they
//! cannot affect outputs, so skipping them is observationally identity.

use crate::aig::{Aig, NodeKind, Var};
use std::fmt;

/// Registers addressable by the packed `u32` operand encoding
/// (`register << 1 | complement` must fit in a `u32`).
pub const MAX_REGISTERS: usize = (u32::MAX >> 1) as usize;

/// Sentinel register index for nodes outside the compiled cone.
const DEAD: u32 = u32::MAX;

/// What the compiler did, for telemetry and throughput reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// AND instructions emitted (the output-reachable cone).
    pub instructions: usize,
    /// Register-file size: constant + inputs + instructions.
    pub registers: usize,
    /// AND nodes skipped as unreachable from every output.
    pub dead_skipped: usize,
}

/// Why a netlist could not be compiled.
///
/// The public [`Aig`] construction API cannot produce either case
/// (outputs are bounds-checked on registration and node indices are
/// `u32`), but the compiler is the front door for parsed and generated
/// netlists, so it checks instead of indexing wild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The register file would not fit the packed operand encoding.
    TooManyNodes {
        /// Registers the netlist would need.
        needed: usize,
    },
    /// An output literal refers to a node outside the graph.
    DanglingOutput {
        /// Output position.
        output: usize,
        /// The nonexistent node the output names.
        var: Var,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyNodes { needed } => write!(
                f,
                "netlist needs {needed} registers, more than the {MAX_REGISTERS} the \
                 packed operand encoding addresses"
            ),
            CompileError::DanglingOutput { output, var } => {
                write!(f, "output {output} refers to nonexistent node {var}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// An [`Aig`] compiled to a flat, topologically-sorted instruction
/// buffer, evaluated 64 patterns per `u64` word.
///
/// # Example
///
/// ```
/// use almost_aig::Aig;
/// use almost_aig::compile::CompiledAig;
///
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.xor(a, b);
/// aig.add_output(f);
/// let code = CompiledAig::compile(&aig).expect("compiles");
/// assert_eq!(code.eval(&[true, false]), vec![true]);
/// let words = code.eval_words(&[vec![0b1100], vec![0b1010]], 1);
/// assert_eq!(words[0][0], 0b0110);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledAig {
    num_inputs: usize,
    /// Packed `[a, b]` operands per AND instruction; instruction `i`
    /// writes register `1 + num_inputs + i`.
    instrs: Vec<[u32; 2]>,
    /// Packed operand per output (register + complement tap).
    out_taps: Vec<u32>,
    /// Node index → register, [`DEAD`] for uncompiled nodes.
    reg_of: Vec<u32>,
    stats: CompileStats,
}

impl CompiledAig {
    /// Compiles the output-reachable cone of `aig`.
    pub fn compile(aig: &Aig) -> Result<CompiledAig, CompileError> {
        let n = aig.num_nodes();
        let mut reachable = vec![false; n];
        let mut stack: Vec<Var> = Vec::new();
        for (o, out) in aig.outputs().iter().enumerate() {
            if out.var() as usize >= n {
                return Err(CompileError::DanglingOutput {
                    output: o,
                    var: out.var(),
                });
            }
            stack.push(out.var());
        }
        let mut reachable_ands = 0usize;
        while let Some(v) = stack.pop() {
            if reachable[v as usize] {
                continue;
            }
            reachable[v as usize] = true;
            if let NodeKind::And(a, b) = aig.node(v) {
                reachable_ands += 1;
                stack.push(a.var());
                stack.push(b.var());
            }
        }

        let registers = 1 + aig.num_inputs() + reachable_ands;
        if registers > MAX_REGISTERS {
            return Err(CompileError::TooManyNodes { needed: registers });
        }

        // Register 0 = constant, 1..=num_inputs = inputs in input order,
        // then one per compiled instruction in topological order.
        let mut reg_of = vec![DEAD; n];
        reg_of[0] = 0;
        for (i, &var) in aig.inputs().iter().enumerate() {
            reg_of[var as usize] = 1 + i as u32;
        }
        let mut instrs = Vec::with_capacity(reachable_ands);
        let mut next = 1 + aig.num_inputs() as u32;
        for v in aig.iter_vars() {
            if !reachable[v as usize] {
                continue;
            }
            if let NodeKind::And(a, b) = aig.node(v) {
                let ra = reg_of[a.var() as usize];
                let rb = reg_of[b.var() as usize];
                debug_assert!(
                    ra != DEAD && rb != DEAD,
                    "fanins of a reachable node precede it in creation order"
                );
                instrs.push([
                    ra << 1 | a.is_complement() as u32,
                    rb << 1 | b.is_complement() as u32,
                ]);
                reg_of[v as usize] = next;
                next += 1;
            }
        }
        let out_taps = aig
            .outputs()
            .iter()
            .map(|out| reg_of[out.var() as usize] << 1 | out.is_complement() as u32)
            .collect();
        Ok(CompiledAig {
            num_inputs: aig.num_inputs(),
            instrs,
            out_taps,
            reg_of,
            stats: CompileStats {
                instructions: reachable_ands,
                registers,
                dead_skipped: aig.num_ands() - reachable_ands,
            },
        })
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.out_taps.len()
    }

    /// Register-file size (one `u64` per register per in-flight word).
    pub fn num_registers(&self) -> usize {
        self.stats.registers
    }

    /// Compile-time statistics.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// The register holding node `var`, or `None` when the node was not
    /// compiled (outside the output-reachable cone).
    pub fn register_of(&self, var: Var) -> Option<u32> {
        match self.reg_of.get(var as usize) {
            Some(&r) if r != DEAD => Some(r),
            _ => None,
        }
    }

    /// A reusable register-file scratch buffer for [`Self::eval_into`].
    pub fn make_scratch(&self) -> Vec<u64> {
        vec![0u64; self.stats.registers]
    }

    /// The straight-line core: inputs are already in registers
    /// `1..=num_inputs`; runs every instruction.
    #[inline]
    fn step(&self, regs: &mut [u64]) {
        regs[0] = 0;
        let base = 1 + self.num_inputs;
        for (i, &[a, b]) in self.instrs.iter().enumerate() {
            let va = regs[(a >> 1) as usize] ^ ((a & 1) as u64).wrapping_neg();
            let vb = regs[(b >> 1) as usize] ^ ((b & 1) as u64).wrapping_neg();
            regs[base + i] = va & vb;
        }
    }

    #[inline]
    fn tap(&self, regs: &[u64], o: usize) -> u64 {
        let t = self.out_taps[o];
        regs[(t >> 1) as usize] ^ ((t & 1) as u64).wrapping_neg()
    }

    /// Evaluates `num_words * 64` patterns at once. `input_words[i][w]`
    /// is the `w`-th word of input `i`; the result is indexed the same
    /// way, one vector of words per output.
    ///
    /// # Panics
    ///
    /// Panics if the number of pattern vectors differs from the number of
    /// inputs or any vector's length differs from `num_words`.
    pub fn eval_words(&self, input_words: &[Vec<u64>], num_words: usize) -> Vec<Vec<u64>> {
        self.assert_word_shape(input_words, num_words);
        let mut regs = self.make_scratch();
        let mut out = vec![vec![0u64; num_words]; self.out_taps.len()];
        for w in 0..num_words {
            for (i, p) in input_words.iter().enumerate() {
                regs[1 + i] = p[w];
            }
            self.step(&mut regs);
            for (o, words) in out.iter_mut().enumerate() {
                words[w] = self.tap(&regs, o);
            }
        }
        out
    }

    /// Like [`Self::eval_words`], but returns the number of 1-bits each
    /// *register* saw across all words — per-node signal statistics (for
    /// signal probabilities / functional signatures) in one sweep.
    /// Index the result with [`Self::register_of`].
    pub fn register_popcounts(&self, input_words: &[Vec<u64>], num_words: usize) -> Vec<u64> {
        self.assert_word_shape(input_words, num_words);
        let mut regs = self.make_scratch();
        let mut ones = vec![0u64; regs.len()];
        for w in 0..num_words {
            for (i, p) in input_words.iter().enumerate() {
                regs[1 + i] = p[w];
            }
            self.step(&mut regs);
            for (count, &r) in ones.iter_mut().zip(regs.iter()) {
                *count += u64::from(r.count_ones());
            }
        }
        ones
    }

    fn assert_word_shape(&self, input_words: &[Vec<u64>], num_words: usize) {
        assert_eq!(
            input_words.len(),
            self.num_inputs,
            "expected {} input pattern vectors, got {}",
            self.num_inputs,
            input_words.len()
        );
        for p in input_words {
            assert_eq!(p.len(), num_words, "inconsistent pattern lengths");
        }
    }

    /// Evaluates one pattern, reusing `regs` (resized as needed) as the
    /// register file — the allocation-free scalar path for hot callers.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::num_inputs`].
    pub fn eval_into(&self, inputs: &[bool], regs: &mut Vec<u64>) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} input values, got {}",
            self.num_inputs,
            inputs.len()
        );
        regs.resize(self.stats.registers, 0);
        for (i, &b) in inputs.iter().enumerate() {
            regs[1 + i] = (b as u64).wrapping_neg();
        }
        self.step(regs);
        (0..self.out_taps.len())
            .map(|o| self.tap(regs, o) & 1 != 0)
            .collect()
    }

    /// Evaluates one pattern (allocating a fresh register file; use
    /// [`Self::eval_into`] with a kept scratch buffer in hot loops).
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        self.eval_into(inputs, &mut self.make_scratch())
    }

    /// Evaluates a batch of bool patterns via the word-level core, 64
    /// patterns per chunk. Each chunk is packed straight into the hot
    /// register file and unpacked from a small reused tap buffer, so the
    /// whole batch runs in one pass with no word-matrix intermediates.
    /// Returns one output vector per pattern, in order; an empty batch
    /// returns an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from [`Self::num_inputs`].
    pub fn eval_batch(&self, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let mut regs = self.make_scratch();
        let mut tapped = vec![0u64; self.out_taps.len()];
        let mut out: Vec<Vec<bool>> = Vec::with_capacity(patterns.len());
        for (c, chunk) in patterns.chunks(64).enumerate() {
            for r in regs[1..=self.num_inputs].iter_mut() {
                *r = 0;
            }
            for (b, pattern) in chunk.iter().enumerate() {
                assert_eq!(
                    pattern.len(),
                    self.num_inputs,
                    "expected {} input values, got {} (pattern {})",
                    self.num_inputs,
                    pattern.len(),
                    c * 64 + b
                );
                for (r, &v) in regs[1..].iter_mut().zip(pattern.iter()) {
                    *r |= (v as u64) << b;
                }
            }
            self.step(&mut regs);
            for (o, t) in tapped.iter_mut().enumerate() {
                *t = self.tap(&regs, o);
            }
            for b in 0..chunk.len() {
                out.push(tapped.iter().map(|&w| (w >> b) & 1 != 0).collect());
            }
        }
        out
    }
}

/// Packs per-pattern bool vectors into the `[input][word]` layout the
/// word-level evaluators consume: pattern `p` occupies bit `p % 64` of
/// word `p / 64`. Unused high bits of the last word are zero.
///
/// # Panics
///
/// Panics if any pattern's length differs from `num_inputs`.
pub fn pack_patterns(num_inputs: usize, patterns: &[Vec<bool>]) -> Vec<Vec<u64>> {
    let num_words = patterns.len().div_ceil(64);
    let mut words = vec![vec![0u64; num_words]; num_inputs];
    for (p, pattern) in patterns.iter().enumerate() {
        assert_eq!(
            pattern.len(),
            num_inputs,
            "expected {} input values, got {} (pattern {p})",
            num_inputs,
            pattern.len()
        );
        for (i, &b) in pattern.iter().enumerate() {
            words[i][p / 64] |= (b as u64) << (p % 64);
        }
    }
    words
}

/// Inverse of [`pack_patterns`] on the output side: turns `[output][word]`
/// result words into one `Vec<bool>` of output values per pattern.
pub fn unpack_output_words(num_patterns: usize, output_words: &[Vec<u64>]) -> Vec<Vec<bool>> {
    (0..num_patterns)
        .map(|p| {
            output_words
                .iter()
                .map(|words| (words[p / 64] >> (p % 64)) & 1 != 0)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Lit;
    use crate::sim::SimVectors;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A random DAG with the given shape, mixing gate types so both
    /// complemented and plain fanins occur.
    fn random_aig(seed: u64, num_inputs: usize, num_gates: usize, num_outputs: usize) -> Aig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aig = Aig::new();
        let mut lits: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
        for _ in 0..num_gates {
            let a = lits[rng.random_range(0..lits.len())].xor_complement(rng.random());
            let b = lits[rng.random_range(0..lits.len())].xor_complement(rng.random());
            let f = match rng.random_range(0..3u32) {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            lits.push(f);
        }
        for _ in 0..num_outputs {
            let l = lits[rng.random_range(0..lits.len())].xor_complement(rng.random());
            aig.add_output(l);
        }
        aig
    }

    #[test]
    fn compiled_matches_interpreter_on_random_graphs() {
        for seed in 0..8u64 {
            let aig = random_aig(seed, 6, 40, 4);
            let code = CompiledAig::compile(&aig).expect("compiles");
            assert_eq!(code.num_inputs(), aig.num_inputs());
            assert_eq!(code.num_outputs(), aig.num_outputs());
            for bits in 0..64u32 {
                let ins: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 != 0).collect();
                assert_eq!(
                    code.eval(&ins),
                    aig.eval(&ins),
                    "seed {seed} bits {bits:#x}"
                );
            }
        }
    }

    #[test]
    fn word_level_matches_sim_vectors() {
        for seed in 0..4u64 {
            let aig = random_aig(100 + seed, 9, 70, 5);
            let code = CompiledAig::compile(&aig).expect("compiles");
            let num_words = 4;
            let mut rng = StdRng::seed_from_u64(seed);
            let input_words: Vec<Vec<u64>> = (0..aig.num_inputs())
                .map(|_| (0..num_words).map(|_| rng.random()).collect())
                .collect();
            let sim = SimVectors::with_input_patterns(&aig, &input_words);
            let out = code.eval_words(&input_words, num_words);
            for (o, lit) in aig.outputs().iter().enumerate() {
                assert_eq!(out[o], sim.lit_pattern(*lit), "seed {seed} output {o}");
            }
        }
    }

    #[test]
    fn batch_roundtrip_matches_scalar_eval() {
        let aig = random_aig(7, 8, 50, 3);
        let code = CompiledAig::compile(&aig).expect("compiles");
        let mut rng = StdRng::seed_from_u64(11);
        // 65 patterns straddles the word boundary.
        let patterns: Vec<Vec<bool>> = (0..65)
            .map(|_| (0..8).map(|_| rng.random()).collect())
            .collect();
        let batch = code.eval_batch(&patterns);
        assert_eq!(batch.len(), 65);
        for (p, pattern) in patterns.iter().enumerate() {
            assert_eq!(batch[p], aig.eval(pattern), "pattern {p}");
        }
        assert!(code.eval_batch(&[]).is_empty(), "empty batch is empty");
        let single = code.eval_batch(&patterns[..1]);
        assert_eq!(single, vec![aig.eval(&patterns[0])]);
    }

    #[test]
    fn dead_nodes_are_skipped_without_changing_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let keep = aig.and(a, b);
        let _dead1 = aig.or(a, b);
        let _dead2 = aig.xor(a, b);
        aig.add_output(keep);
        let code = CompiledAig::compile(&aig).expect("compiles");
        assert_eq!(code.stats().instructions, 1);
        assert_eq!(code.stats().dead_skipped, aig.num_ands() - 1);
        assert_eq!(code.register_of(keep.var()), Some(3));
        for (ia, ib) in [(false, false), (true, false), (true, true)] {
            assert_eq!(code.eval(&[ia, ib]), aig.eval(&[ia, ib]));
        }
    }

    #[test]
    fn degenerate_netlists_compile_to_identity_behaviour() {
        // Zero inputs, constant outputs.
        let mut consts = Aig::new();
        consts.add_output(Lit::FALSE);
        consts.add_output(Lit::TRUE);
        let code = CompiledAig::compile(&consts).expect("compiles");
        assert_eq!(code.eval(&[]), vec![false, true]);
        assert_eq!(code.stats().instructions, 0);

        // Zero outputs: every node is dead.
        let mut no_out = Aig::new();
        let a = no_out.add_input();
        let b = no_out.add_input();
        let _ = no_out.and(a, b);
        let code = CompiledAig::compile(&no_out).expect("compiles");
        assert_eq!(code.eval(&[true, true]), Vec::<bool>::new());
        assert_eq!(code.stats().dead_skipped, 1);

        // Empty AIG.
        let empty = Aig::new();
        let code = CompiledAig::compile(&empty).expect("compiles");
        assert!(code.eval(&[]).is_empty());

        // Input wired straight to an output (no instructions at all).
        let mut wire = Aig::new();
        let x = wire.add_input();
        wire.add_output(!x);
        let code = CompiledAig::compile(&wire).expect("compiles");
        assert_eq!(code.eval(&[true]), vec![false]);
        assert_eq!(code.eval(&[false]), vec![true]);
    }

    #[test]
    fn popcounts_agree_with_signal_probability() {
        let aig = random_aig(42, 7, 30, 3);
        let code = CompiledAig::compile(&aig).expect("compiles");
        let num_words = 8;
        let mut rng = StdRng::seed_from_u64(13);
        let input_words: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|_| (0..num_words).map(|_| rng.random()).collect())
            .collect();
        let sim = SimVectors::with_input_patterns(&aig, &input_words);
        let ones = code.register_popcounts(&input_words, num_words);
        let total = (num_words * 64) as f64;
        for v in aig.iter_vars() {
            if let Some(r) = code.register_of(v) {
                let p = ones[r as usize] as f64 / total;
                assert!(
                    (p - sim.signal_probability(v)).abs() < 1e-12,
                    "node {v}: compiled probability {p} vs sim {}",
                    sim.signal_probability(v)
                );
            }
        }
        assert_eq!(ones[0], 0, "constant register never fires");
    }

    #[test]
    fn eval_into_reuses_the_scratch_buffer() {
        let aig = random_aig(3, 5, 20, 2);
        let code = CompiledAig::compile(&aig).expect("compiles");
        let mut scratch = code.make_scratch();
        for bits in 0..32u32 {
            let ins: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 != 0).collect();
            assert_eq!(code.eval_into(&ins, &mut scratch), aig.eval(&ins));
        }
        assert_eq!(scratch.len(), code.num_registers());
    }

    #[test]
    fn compile_errors_render() {
        let e = CompileError::TooManyNodes { needed: 1 << 33 };
        assert!(e.to_string().contains("registers"));
        let e = CompileError::DanglingOutput { output: 2, var: 99 };
        assert!(e.to_string().contains("output 2"));
    }

    #[test]
    #[should_panic(expected = "expected 2 input values")]
    fn eval_checks_arity() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let code = CompiledAig::compile(&aig).expect("compiles");
        code.eval(&[true]);
    }
}
