//! And-inverter-graph (AIG) logic synthesis substrate for the ALMOST
//! reproduction.
//!
//! This crate is a compact, from-scratch reimplementation of the parts of the
//! ABC synthesis system that the ALMOST paper relies on:
//!
//! - an append-only, structurally hashed [`Aig`] data structure ([`aig`]),
//! - 64-bit parallel random simulation ([`sim`]), and a batch compiler
//!   lowering the output cone to a flat instruction buffer for
//!   oracle-grade throughput ([`compile`]),
//! - truth tables up to 16 variables with NPN canonisation ([`truth`],
//!   [`npn`]),
//! - k-feasible cut enumeration ([`cut`]),
//! - irredundant sum-of-products extraction (Minato–Morreale ISOP,
//!   [`isop`]),
//! - the seven recipe transformations used by the paper —
//!   [`rewrite`](passes::rewrite), [`refactor`](passes::refactor),
//!   [`resub`](passes::resub) (each with a `-z` zero-cost variant) and
//!   [`balance`](passes::balance) — plus the `resyn2` baseline script.
//!
//! The passes are *real* DAG-rewriting algorithms (cut-based rewriting with
//! MFFC gain accounting, reconvergence-driven refactoring, simulation-guided
//! resubstitution, AND-tree balancing), so distinct synthesis recipes induce
//! genuinely distinct local structure around key-gates — the property the
//! ALMOST defence and the ML attacks both exploit.
//!
//! # Example
//!
//! ```
//! use almost_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let c = aig.add_input();
//! let ab = aig.and(a, b);
//! let f = aig.xor(ab, c);
//! aig.add_output(f);
//! assert_eq!(aig.num_inputs(), 3);
//! assert!(aig.num_ands() >= 3); // XOR costs three AND nodes
//! ```

pub mod aig;
pub mod aiger;
pub mod compile;
pub mod cut;
pub mod fraig;
pub mod isop;
pub mod mffc;
pub mod npn;
pub mod passes;
pub mod sim;
pub mod truth;

pub use crate::aig::{Aig, Lit, NodeKind, Var};
pub use crate::compile::{CompileError, CompileStats, CompiledAig};
pub use crate::fraig::{fraig, fraig_with, FraigConfig, FraigStats};
pub use crate::passes::{Pass, Script};
pub use crate::truth::Tt;
