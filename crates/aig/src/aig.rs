//! The core and-inverter-graph data structure.
//!
//! An [`Aig`] is an append-only DAG of two-input AND nodes with optional
//! complemented edges, the canonical internal representation of combinational
//! logic in ABC-style synthesis tools. Node 0 is the constant-false node;
//! primary inputs and AND nodes follow in creation order, which is also a
//! valid topological order (fanins always precede fanouts).
//!
//! Structural hashing plus the usual one-level simplification rules are
//! applied on construction, so building the same function twice yields the
//! same literal.

use std::collections::HashMap;
use std::fmt;

/// Index of a node in an [`Aig`].
pub type Var = u32;

/// A literal: a node index together with a complement flag.
///
/// The encoding is `var << 1 | complement`, matching the AIGER convention.
/// `Lit::FALSE` (node 0, non-complemented) and `Lit::TRUE` (node 0,
/// complemented) represent the constants.
///
/// # Example
///
/// ```
/// use almost_aig::Lit;
/// let l = Lit::new(3, true);
/// assert_eq!(l.var(), 3);
/// assert!(l.is_complement());
/// assert_eq!(!l, Lit::new(3, false));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal for `var`, complemented if `complement` is true.
    pub fn new(var: Var, complement: bool) -> Self {
        Lit(var << 1 | complement as u32)
    }

    /// Creates a positive (non-complemented) literal for `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var << 1)
    }

    /// Returns the node index this literal refers to.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Returns true if the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns this literal complemented iff `c` is true.
    pub fn xor_complement(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Returns true if this literal is one of the two constants.
    pub fn is_const(self) -> bool {
        self.var() == 0
    }

    /// Returns the raw AIGER-style encoding (`var << 1 | complement`).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a literal from its raw encoding.
    ///
    /// Inverse of [`Lit::index`].
    pub fn from_index(index: u32) -> Self {
        Lit(index)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.var())
        } else {
            write!(f, "n{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The kind of a node in an [`Aig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The constant-false node (always node 0).
    Const0,
    /// A primary input; the payload is the input's position in
    /// [`Aig::inputs`].
    Input(u32),
    /// A two-input AND of the given fanin literals (normalised so the first
    /// literal is not greater than the second).
    And(Lit, Lit),
}

/// An and-inverter graph.
///
/// See the [module documentation](self) for the representation invariants.
///
/// # Example
///
/// ```
/// use almost_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.or(a, b);
/// aig.add_output(f);
/// assert_eq!(aig.eval(&[false, true]), vec![true]);
/// ```
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<NodeKind>,
    inputs: Vec<Var>,
    outputs: Vec<Lit>,
    input_names: Vec<String>,
    output_names: Vec<String>,
    strash: HashMap<(Lit, Lit), Var>,
    num_ands: usize,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty AIG containing only the constant-false node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![NodeKind::Const0],
            inputs: Vec::new(),
            outputs: Vec::new(),
            input_names: Vec::new(),
            output_names: Vec::new(),
            strash: HashMap::new(),
            num_ands: 0,
        }
    }

    /// Adds a primary input with an auto-generated name (`i<k>`).
    pub fn add_input(&mut self) -> Lit {
        let name = format!("i{}", self.inputs.len());
        self.add_named_input(name)
    }

    /// Adds a primary input with the given name.
    pub fn add_named_input(&mut self, name: impl Into<String>) -> Lit {
        let var = self.nodes.len() as Var;
        self.nodes.push(NodeKind::Input(self.inputs.len() as u32));
        self.inputs.push(var);
        self.input_names.push(name.into());
        Lit::positive(var)
    }

    /// Registers `lit` as a primary output with an auto-generated name
    /// (`o<k>`).
    pub fn add_output(&mut self, lit: Lit) {
        let name = format!("o{}", self.outputs.len());
        self.add_named_output(lit, name);
    }

    /// Registers `lit` as a primary output with the given name.
    ///
    /// # Panics
    ///
    /// Panics if `lit` refers to a node that does not exist.
    pub fn add_named_output(&mut self, lit: Lit, name: impl Into<String>) {
        assert!(
            (lit.var() as usize) < self.nodes.len(),
            "output literal {lit:?} refers to a nonexistent node"
        );
        self.outputs.push(lit);
        self.output_names.push(name.into());
    }

    /// Replaces the literal driving output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or `lit` refers to a nonexistent
    /// node.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        assert!((lit.var() as usize) < self.nodes.len());
        self.outputs[index] = lit;
    }

    /// Builds (or finds) the AND of two literals.
    ///
    /// Applies constant folding, the idempotence/complement rules and
    /// structural hashing, so the returned literal may refer to an existing
    /// node.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // One-level simplification rules.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&var) = self.strash.get(&(a, b)) {
            return Lit::positive(var);
        }
        let var = self.nodes.len() as Var;
        self.nodes.push(NodeKind::And(a, b));
        self.strash.insert((a, b), var);
        self.num_ands += 1;
        Lit::positive(var)
    }

    /// Builds the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Builds the NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// Builds the NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// Builds the XOR of two literals (three AND nodes in the worst case).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Builds the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Builds a 2:1 multiplexer: `if s { t } else { e }`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Builds the majority-of-three function.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Builds the AND of an arbitrary number of literals as a balanced tree.
    ///
    /// Returns `Lit::TRUE` for an empty slice.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Aig::and)
    }

    /// Builds the OR of an arbitrary number of literals as a balanced tree.
    ///
    /// Returns `Lit::FALSE` for an empty slice.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::or)
    }

    /// Builds the XOR of an arbitrary number of literals as a balanced tree.
    ///
    /// Returns `Lit::FALSE` for an empty slice.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        empty: Lit,
        op: fn(&mut Aig, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let l = self.reduce_balanced(lo, empty, op);
                let r = self.reduce_balanced(hi, empty, op);
                op(self, l, r)
            }
        }
    }

    /// Returns the kind of node `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    pub fn node(&self, var: Var) -> NodeKind {
        self.nodes[var as usize]
    }

    /// Returns the fanin literals of an AND node, or `None` for inputs and
    /// the constant.
    pub fn and_fanins(&self, var: Var) -> Option<(Lit, Lit)> {
        match self.nodes[var as usize] {
            NodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns true if `var` is an AND node.
    pub fn is_and(&self, var: Var) -> bool {
        matches!(self.nodes[var as usize], NodeKind::And(..))
    }

    /// Returns true if `var` is a primary input.
    pub fn is_input(&self, var: Var) -> bool {
        matches!(self.nodes[var as usize], NodeKind::Input(_))
    }

    /// Total number of nodes including the constant and inputs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (the usual "size" metric in synthesis).
    pub fn num_ands(&self) -> usize {
        self.num_ands
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The primary-input node indices, in input order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The primary-output literals, in output order.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// The name of input `index`.
    pub fn input_name(&self, index: usize) -> &str {
        &self.input_names[index]
    }

    /// The name of output `index`.
    pub fn output_name(&self, index: usize) -> &str {
        &self.output_names[index]
    }

    /// Renames input `index`.
    pub fn set_input_name(&mut self, index: usize, name: impl Into<String>) {
        self.input_names[index] = name.into();
    }

    /// Renames output `index`.
    pub fn set_output_name(&mut self, index: usize, name: impl Into<String>) {
        self.output_names[index] = name.into();
    }

    /// Iterates over all node indices in topological order (fanins first).
    pub fn iter_vars(&self) -> impl Iterator<Item = Var> + '_ {
        0..self.nodes.len() as Var
    }

    /// Iterates over the indices of all AND nodes in topological order.
    pub fn iter_ands(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len() as Var).filter(move |&v| self.is_and(v))
    }

    /// Computes the logic level of every node (inputs and the constant are
    /// level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for v in 0..self.nodes.len() {
            if let NodeKind::And(a, b) = self.nodes[v] {
                level[v] = 1 + level[a.var() as usize].max(level[b.var() as usize]);
            }
        }
        level
    }

    /// The depth of the graph: the maximum level over all outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|l| levels[l.var() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Counts, for every node, how many fanout references it has (from AND
    /// fanins and primary outputs).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let NodeKind::And(a, b) = node {
                refs[a.var() as usize] += 1;
                refs[b.var() as usize] += 1;
            }
        }
        for out in &self.outputs {
            refs[out.var() as usize] += 1;
        }
        refs
    }

    /// Builds the fanout adjacency: for every node, the list of AND nodes
    /// that reference it (outputs are not included).
    pub fn fanouts(&self) -> Vec<Vec<Var>> {
        let mut fo: Vec<Vec<Var>> = vec![Vec::new(); self.nodes.len()];
        for v in 0..self.nodes.len() {
            if let NodeKind::And(a, b) = self.nodes[v] {
                fo[a.var() as usize].push(v as Var);
                if a.var() != b.var() {
                    fo[b.var() as usize].push(v as Var);
                }
            }
        }
        fo
    }

    /// Evaluates the AIG on a single input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Aig::num_inputs`].
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        for (v, node) in self.nodes.iter().enumerate() {
            values[v] = match *node {
                NodeKind::Const0 => false,
                NodeKind::Input(i) => inputs[i as usize],
                NodeKind::And(a, b) => {
                    let va = values[a.var() as usize] ^ a.is_complement();
                    let vb = values[b.var() as usize] ^ b.is_complement();
                    va && vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|l| values[l.var() as usize] ^ l.is_complement())
            .collect()
    }

    /// A checkpoint for speculative construction; see [`Aig::rollback`].
    pub fn checkpoint(&self) -> usize {
        self.nodes.len()
    }

    /// Removes all nodes created after `checkpoint`.
    ///
    /// This is only safe while the removed nodes have no fanout, which holds
    /// for nodes created speculatively since construction is append-only and
    /// outputs are registered separately.
    ///
    /// # Panics
    ///
    /// Panics if an input was added after the checkpoint (inputs cannot be
    /// rolled back) or if a registered output references a rolled-back node.
    pub fn rollback(&mut self, checkpoint: usize) {
        assert!(checkpoint >= 1, "cannot roll back the constant node");
        while self.nodes.len() > checkpoint {
            let node = self.nodes.pop().expect("non-empty");
            match node {
                NodeKind::And(a, b) => {
                    self.strash.remove(&(a, b));
                    self.num_ands -= 1;
                }
                NodeKind::Input(_) => panic!("cannot roll back an input"),
                NodeKind::Const0 => unreachable!(),
            }
        }
        for out in &self.outputs {
            assert!(
                (out.var() as usize) < self.nodes.len(),
                "rollback would orphan a registered output"
            );
        }
    }

    /// Returns a structurally compacted copy containing only the constant,
    /// all primary inputs (in order) and the nodes reachable from the
    /// outputs.
    ///
    /// Names are preserved. This is the standard "cleanup" at the end of a
    /// synthesis pass.
    pub fn compact(&self) -> Aig {
        let mut new = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for (i, &var) in self.inputs.iter().enumerate() {
            map[var as usize] = new.add_named_input(self.input_names[i].clone());
        }
        // Mark reachable nodes with a DFS from the outputs.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<Var> = self.outputs.iter().map(|l| l.var()).collect();
        while let Some(v) = stack.pop() {
            if reachable[v as usize] {
                continue;
            }
            reachable[v as usize] = true;
            if let NodeKind::And(a, b) = self.nodes[v as usize] {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        for v in 0..self.nodes.len() {
            if !reachable[v] {
                continue;
            }
            if let NodeKind::And(a, b) = self.nodes[v] {
                let na = map[a.var() as usize].xor_complement(a.is_complement());
                let nb = map[b.var() as usize].xor_complement(b.is_complement());
                map[v] = new.and(na, nb);
            }
        }
        for (i, out) in self.outputs.iter().enumerate() {
            let lit = map[out.var() as usize].xor_complement(out.is_complement());
            new.add_named_output(lit, self.output_names[i].clone());
        }
        new
    }

    /// Copies the transitive fanin cone of `roots` into `dest`, driving it
    /// from the literals given in `leaf_map` (old var → literal in `dest`).
    ///
    /// Returns the images of `roots`. Nodes not present in `leaf_map` are
    /// recreated as AND nodes; reaching an input or the constant that is not
    /// mapped is an error.
    ///
    /// # Panics
    ///
    /// Panics if the cone depends on an unmapped input.
    pub fn copy_cone_into(
        &self,
        dest: &mut Aig,
        roots: &[Lit],
        leaf_map: &HashMap<Var, Lit>,
    ) -> Vec<Lit> {
        let mut memo: HashMap<Var, Lit> = leaf_map.clone();
        memo.insert(0, Lit::FALSE);
        let mut order: Vec<Var> = Vec::new();
        // Iterative DFS to find the required nodes in topological order.
        let mut stack: Vec<(Var, bool)> = roots.iter().map(|l| (l.var(), false)).collect();
        let mut visited = vec![false; self.nodes.len()];
        while let Some((v, expanded)) = stack.pop() {
            if memo.contains_key(&v) {
                continue;
            }
            if expanded {
                order.push(v);
                continue;
            }
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            match self.nodes[v as usize] {
                NodeKind::And(a, b) => {
                    stack.push((v, true));
                    stack.push((a.var(), false));
                    stack.push((b.var(), false));
                }
                NodeKind::Input(i) => {
                    panic!("cone depends on unmapped input {i}");
                }
                NodeKind::Const0 => {}
            }
        }
        for v in order {
            if let NodeKind::And(a, b) = self.nodes[v as usize] {
                let na = memo[&a.var()].xor_complement(a.is_complement());
                let nb = memo[&b.var()].xor_complement(b.is_complement());
                let lit = dest.and(na, nb);
                memo.insert(v, lit);
            }
        }
        roots
            .iter()
            .map(|l| memo[&l.var()].xor_complement(l.is_complement()))
            .collect()
    }

    /// Returns the set of nodes in the transitive fanin cone of `root`
    /// (including `root`, excluding the constant).
    pub fn cone_of(&self, root: Var) -> Vec<Var> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut cone = Vec::new();
        while let Some(v) = stack.pop() {
            if seen[v as usize] || v == 0 {
                continue;
            }
            seen[v as usize] = true;
            cone.push(v);
            if let NodeKind::And(a, b) = self.nodes[v as usize] {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        cone
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, outputs: {}, ands: {}, depth: {} }}",
            self.num_inputs(),
            self.num_outputs(),
            self.num_ands(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_literals() {
        assert_eq!(Lit::FALSE.var(), 0);
        assert!(!Lit::FALSE.is_complement());
        assert!(Lit::TRUE.is_complement());
        assert_eq!(!Lit::TRUE, Lit::FALSE);
        let l = Lit::new(5, true);
        assert_eq!(l.var(), 5);
        assert_eq!(Lit::from_index(l.index()), l);
    }

    #[test]
    fn and_simplification_rules() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_deduplicates() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn eval_basic_gates() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f_and = aig.and(a, b);
        let f_or = aig.or(a, b);
        let f_xor = aig.xor(a, b);
        let f_xnor = aig.xnor(a, b);
        aig.add_output(f_and);
        aig.add_output(f_or);
        aig.add_output(f_xor);
        aig.add_output(f_xnor);
        for (ia, ib) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = aig.eval(&[ia, ib]);
            assert_eq!(out[0], ia && ib);
            assert_eq!(out[1], ia || ib);
            assert_eq!(out[2], ia ^ ib);
            assert_eq!(out[3], !(ia ^ ib));
        }
    }

    #[test]
    fn mux_and_maj() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let m = aig.mux(s, t, e);
        let mj = aig.maj(s, t, e);
        aig.add_output(m);
        aig.add_output(mj);
        for bits in 0..8u32 {
            let vs = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let out = aig.eval(&vs);
            assert_eq!(out[0], if vs[0] { vs[1] } else { vs[2] });
            let count = vs.iter().filter(|&&v| v).count();
            assert_eq!(out[1], count >= 2);
        }
    }

    #[test]
    fn many_input_reducers() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..5).map(|_| aig.add_input()).collect();
        let fa = aig.and_many(&lits);
        let fo = aig.or_many(&lits);
        let fx = aig.xor_many(&lits);
        aig.add_output(fa);
        aig.add_output(fo);
        aig.add_output(fx);
        for bits in 0..32u32 {
            let vs: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 != 0).collect();
            let out = aig.eval(&vs);
            assert_eq!(out[0], vs.iter().all(|&v| v));
            assert_eq!(out[1], vs.iter().any(|&v| v));
            assert_eq!(out[2], vs.iter().filter(|&&v| v).count() % 2 == 1);
        }
        let empty = aig.and_many(&[]);
        assert_eq!(empty, Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
    }

    #[test]
    fn rollback_removes_speculative_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let kept = aig.and(a, b);
        let cp = aig.checkpoint();
        let spec = aig.and(kept, c);
        assert_ne!(spec, kept);
        aig.rollback(cp);
        assert_eq!(aig.num_ands(), 1);
        // Rebuilding after rollback works and re-inserts into the strash.
        let again = aig.and(kept, c);
        assert_eq!(again.var() as usize, cp);
    }

    #[test]
    fn compact_drops_dangling_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let keep = aig.and(a, b);
        let _dangling = aig.or(a, b);
        aig.add_output(keep);
        let compacted = aig.compact();
        assert_eq!(compacted.num_ands(), 1);
        assert_eq!(compacted.num_inputs(), 2);
        assert_eq!(aig.eval(&[true, true]), compacted.eval(&[true, true]));
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        assert_eq!(aig.depth(), 2);
        let levels = aig.levels();
        assert_eq!(levels[ab.var() as usize], 1);
        assert_eq!(levels[abc.var() as usize], 2);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.or(x, a);
        aig.add_output(y);
        aig.add_output(x);
        let refs = aig.fanout_counts();
        assert_eq!(refs[x.var() as usize], 2); // fanin of y + output
        assert_eq!(refs[y.var() as usize], 1);
    }

    #[test]
    fn copy_cone_into_remaps_leaves() {
        let mut src = Aig::new();
        let a = src.add_input();
        let b = src.add_input();
        let f = src.xor(a, b);
        src.add_output(f);

        let mut dst = Aig::new();
        let x = dst.add_input();
        let y = dst.add_input();
        let mut leaf_map = HashMap::new();
        leaf_map.insert(a.var(), y); // swap the inputs
        leaf_map.insert(b.var(), x);
        let roots = src.copy_cone_into(&mut dst, &[f], &leaf_map);
        dst.add_output(roots[0]);
        for (ia, ib) in [(false, true), (true, false), (true, true)] {
            assert_eq!(src.eval(&[ia, ib])[0], dst.eval(&[ib, ia])[0]);
        }
    }
}
