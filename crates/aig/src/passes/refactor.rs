//! Large-cut refactoring (ABC `refactor` / `refactor -z`).
//!
//! For every node, a reconvergence-driven cut of up to 8 leaves is computed
//! and collapsed into a truth table; the function is then re-synthesised
//! from an irredundant SOP (or its complement, or a Shannon decomposition —
//! whichever is cheapest through the structural hash). The replacement is
//! accepted when it adds fewer nodes than the node's MFFC frees.

use crate::aig::{Aig, Lit};
use crate::cut::{cut_function, Cut};
use crate::isop::build_from_tt;
use crate::mffc::mffc_size;
use crate::passes::window::reconvergence_cut;
use std::collections::HashSet;

/// Maximum cut width for refactoring (truth tables of 2^8 bits).
const MAX_LEAVES: usize = 8;

/// Refactors the AIG; `zero_cost` enables `-z` semantics.
pub fn refactor(aig: &Aig, zero_cost: bool) -> Aig {
    let mut refs = aig.fanout_counts();
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[aig.inputs()[i] as usize] = new.add_named_input(aig.input_name(i).to_string());
    }

    for v in aig.iter_ands() {
        let (a, b) = aig.and_fanins(v).expect("iterating ANDs");
        let fa = map[a.var() as usize].xor_complement(a.is_complement());
        let fb = map[b.var() as usize].xor_complement(b.is_complement());
        let default = new.and(fa, fb);
        map[v as usize] = default;

        let leaves = reconvergence_cut(aig, v, MAX_LEAVES);
        if leaves.len() < 3 {
            continue; // too small to beat plain copying
        }
        let leaf_set: HashSet<_> = leaves.iter().copied().collect();
        let credit = mffc_size(aig, v, &leaf_set, &mut refs) as isize;
        if credit <= 1 && !zero_cost {
            continue;
        }
        // Reuse the Cut/cut_function machinery: leaves are already sorted.
        let cut = make_cut(&leaves);
        let tt = cut_function(aig, v, &cut);
        let leaves_new: Vec<Lit> = leaves.iter().map(|&l| map[l as usize]).collect();

        let cp = new.checkpoint();
        let cand = build_from_tt(&mut new, &tt, &leaves_new);
        let added = (new.checkpoint() - cp) as isize;
        new.rollback(cp);

        let gain = credit - added;
        if gain > 0 || (zero_cost && gain == 0 && cand != default) {
            let rebuilt = build_from_tt(&mut new, &tt, &leaves_new);
            debug_assert_eq!(rebuilt, cand);
            map[v as usize] = rebuilt;
        }
    }

    for (i, out) in aig.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, aig.output_name(i).to_string());
    }
    new.compact()
}

fn make_cut(sorted_leaves: &[crate::aig::Var]) -> Cut {
    let mut cut = Cut::trivial(sorted_leaves[0]);
    for &l in &sorted_leaves[1..] {
        cut = cut
            .merge(&Cut::trivial(l), sorted_leaves.len())
            .expect("distinct sorted leaves always merge");
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::tests::random_aig;
    use crate::sim::probably_equivalent;

    #[test]
    fn refactor_preserves_function() {
        for seed in 0..6 {
            let aig = random_aig(8, 80, seed + 300);
            let out = refactor(&aig, false);
            assert!(
                probably_equivalent(&aig, &out, 16, seed),
                "seed {seed}: refactor broke equivalence"
            );
        }
    }

    #[test]
    fn refactor_z_preserves_function() {
        for seed in 0..4 {
            let aig = random_aig(8, 80, seed + 400);
            let out = refactor(&aig, true);
            assert!(probably_equivalent(&aig, &out, 16, seed));
        }
    }

    #[test]
    fn refactor_collapses_wide_redundancy() {
        // A 6-input function built wastefully: f = OR of all 3-input ANDs
        // that are subsumed by a & b -- equal to a & b with heavy
        // redundancy.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let d = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let abd = aig.and(ab, d);
        let abcd = aig.and(abc, d);
        let t1 = aig.or(abc, abd);
        let t2 = aig.or(t1, abcd);
        let f = aig.or(ab, t2);
        aig.add_output(f);
        let out = refactor(&aig, false);
        assert!(probably_equivalent(&aig, &out, 8, 1));
        assert!(
            out.num_ands() < aig.num_ands(),
            "expected shrink: {} -> {}",
            aig.num_ands(),
            out.num_ands()
        );
    }

    #[test]
    fn refactor_keeps_interface_names() {
        let mut aig = Aig::new();
        let a = aig.add_named_input("alpha");
        let b = aig.add_named_input("beta");
        let f = aig.xor(a, b);
        aig.add_named_output(f, "gamma");
        let out = refactor(&aig, false);
        assert_eq!(out.input_name(0), "alpha");
        assert_eq!(out.input_name(1), "beta");
        assert_eq!(out.output_name(0), "gamma");
    }
}
