//! Windowed resubstitution (ABC `resub` / `resub -z`).
//!
//! For every node `n`, a reconvergence-driven window of at most 8 leaves is
//! computed. The exact truth tables (with respect to the window leaves) of
//! every node inside the window are derived; a *divisor* is a window node
//! outside the MFFC of `n`. The pass replaces `n` by:
//!
//! - **resub-0**: a single divisor equal (or complement-equal) to `n`, or
//! - **resub-1**: a one-gate combination `g(d1, d2)` with
//!   `g ∈ {AND, OR with any input phases, XOR}` of two divisors,
//!
//! whenever the replacement's cost is smaller than the MFFC it frees
//! (or equal, for the `-z` variant). Because divisor equality is checked on
//! *exact* window truth tables — both functions of the same leaves — every
//! accepted substitution is functionally sound by construction, no SAT call
//! needed.

use crate::aig::{Aig, Lit, Var};
use crate::cut::{cut_function, Cut};
use crate::mffc::{mffc_nodes, mffc_size};
use crate::passes::window::{reconvergence_cut, window_volume};
use crate::truth::Tt;
use std::collections::HashSet;

/// Maximum window width.
const MAX_LEAVES: usize = 8;
/// Maximum number of divisors considered per node.
const MAX_DIVISORS: usize = 48;

/// Resubstitutes nodes of the AIG; `zero_cost` enables `-z` semantics.
pub fn resub(aig: &Aig, zero_cost: bool) -> Aig {
    let mut refs = aig.fanout_counts();
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[aig.inputs()[i] as usize] = new.add_named_input(aig.input_name(i).to_string());
    }

    for v in aig.iter_ands() {
        let (a, b) = aig.and_fanins(v).expect("iterating ANDs");
        let fa = map[a.var() as usize].xor_complement(a.is_complement());
        let fb = map[b.var() as usize].xor_complement(b.is_complement());
        let default = new.and(fa, fb);
        map[v as usize] = default;

        let leaves = reconvergence_cut(aig, v, MAX_LEAVES);
        if leaves.len() < 2 {
            continue;
        }
        let leaf_set: HashSet<Var> = leaves.iter().copied().collect();
        let credit = mffc_size(aig, v, &leaf_set, &mut refs) as isize;
        if credit <= 0 {
            continue;
        }

        let volume = window_volume(aig, v, &leaves);
        let in_mffc: HashSet<Var> = mffc_nodes(aig, v, &leaf_set, &mut refs)
            .into_iter()
            .collect();
        let cut = make_cut(&leaves);
        let target_tt = cut_function(aig, v, &cut);

        // Divisors: window nodes (and the leaves themselves) outside the
        // MFFC of v.
        let mut divisors: Vec<(Var, Tt)> = Vec::new();
        for &l in &leaves {
            divisors.push((l, leaf_tt(&leaves, l)));
        }
        for &w in &volume {
            if w == v || in_mffc.contains(&w) {
                continue;
            }
            divisors.push((w, cut_function(aig, w, &cut)));
            if divisors.len() >= MAX_DIVISORS {
                break;
            }
        }

        // resub-0: a free replacement.
        let mut chosen: Option<(isize, Lit)> = None;
        for (d, tt) in &divisors {
            let dl = map[*d as usize];
            if tt == &target_tt {
                chosen = Some((credit, dl));
                break;
            }
            if tt.not() == target_tt {
                chosen = Some((credit, !dl));
                break;
            }
        }

        // resub-1: one new gate from two divisors.
        if chosen.is_none() && (credit >= 2 || zero_cost) {
            'outer: for i in 0..divisors.len() {
                for j in (i + 1)..divisors.len() {
                    let (d1, t1) = &divisors[i];
                    let (d2, t2) = &divisors[j];
                    if let Some(build) = match_gate(t1, t2, &target_tt) {
                        let l1 = map[*d1 as usize];
                        let l2 = map[*d2 as usize];
                        let cp = new.checkpoint();
                        let lit = build.construct(&mut new, l1, l2);
                        let added = (new.checkpoint() - cp) as isize;
                        let gain = credit - added;
                        if gain > 0 || (zero_cost && gain == 0 && lit != default) {
                            chosen = Some((gain, lit));
                            break 'outer;
                        }
                        new.rollback(cp);
                    }
                }
            }
        }

        if let Some((_, lit)) = chosen {
            map[v as usize] = lit;
        }
    }

    for (i, out) in aig.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, aig.output_name(i).to_string());
    }
    new.compact()
}

fn make_cut(sorted_leaves: &[Var]) -> Cut {
    let mut cut = Cut::trivial(sorted_leaves[0]);
    for &l in &sorted_leaves[1..] {
        cut = cut
            .merge(&Cut::trivial(l), sorted_leaves.len())
            .expect("distinct sorted leaves always merge");
    }
    cut
}

fn leaf_tt(sorted_leaves: &[Var], leaf: Var) -> Tt {
    let idx = sorted_leaves
        .iter()
        .position(|&l| l == leaf)
        .expect("leaf is in the cut");
    Tt::var(idx, sorted_leaves.len())
}

/// A two-divisor gate that realises the target function.
#[derive(Clone, Copy, Debug)]
enum GateMatch {
    And { c1: bool, c2: bool, cout: bool },
    Xor { cout: bool },
}

impl GateMatch {
    fn construct(self, aig: &mut Aig, l1: Lit, l2: Lit) -> Lit {
        match self {
            GateMatch::And { c1, c2, cout } => {
                let lit = aig.and(l1.xor_complement(c1), l2.xor_complement(c2));
                lit.xor_complement(cout)
            }
            GateMatch::Xor { cout } => {
                let lit = aig.xor(l1, l2);
                lit.xor_complement(cout)
            }
        }
    }
}

/// Finds a single-gate combination of `t1` and `t2` equal to `target`, if
/// any. AND with all phase combinations covers OR/NOR/NAND/ANDNOT via
/// De Morgan; XOR covers XNOR via the output phase.
fn match_gate(t1: &Tt, t2: &Tt, target: &Tt) -> Option<GateMatch> {
    for c1 in [false, true] {
        for c2 in [false, true] {
            let a = if c1 { t1.not() } else { t1.clone() };
            let b = if c2 { t2.not() } else { t2.clone() };
            let g = a.and(&b);
            if &g == target {
                return Some(GateMatch::And {
                    c1,
                    c2,
                    cout: false,
                });
            }
            if g.not() == *target {
                return Some(GateMatch::And { c1, c2, cout: true });
            }
        }
    }
    let x = t1.xor(t2);
    if &x == target {
        return Some(GateMatch::Xor { cout: false });
    }
    if x.not() == *target {
        return Some(GateMatch::Xor { cout: true });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::tests::random_aig;
    use crate::sim::probably_equivalent;

    #[test]
    fn resub_preserves_function() {
        for seed in 0..6 {
            let aig = random_aig(8, 80, seed + 500);
            let out = resub(&aig, false);
            assert!(
                probably_equivalent(&aig, &out, 16, seed),
                "seed {seed}: resub broke equivalence"
            );
        }
    }

    #[test]
    fn resub_z_preserves_function() {
        for seed in 0..4 {
            let aig = random_aig(8, 80, seed + 600);
            let out = resub(&aig, true);
            assert!(probably_equivalent(&aig, &out, 16, seed));
        }
    }

    #[test]
    fn resub_finds_existing_divisor() {
        // g = a&b exists; f rebuilt redundantly as (a&b&c) | (a&b&!c) == g.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let g = aig.and(a, b);
        let f1 = aig.and(g, c);
        let g2 = aig.and(a, b);
        let f2 = aig.and(g2, !c);
        let f = aig.or(f1, f2);
        aig.add_output(g);
        aig.add_output(f);
        let out = resub(&aig, false);
        assert!(probably_equivalent(&aig, &out, 8, 2));
        assert!(
            out.num_ands() <= 2,
            "f should collapse onto g: {} ANDs left",
            out.num_ands()
        );
    }

    #[test]
    fn match_gate_covers_basic_functions() {
        let t1 = Tt::var(0, 2);
        let t2 = Tt::var(1, 2);
        let and = t1.and(&t2);
        let or = t1.or(&t2);
        let xor = t1.xor(&t2);
        assert!(match_gate(&t1, &t2, &and).is_some());
        assert!(match_gate(&t1, &t2, &or).is_some());
        assert!(match_gate(&t1, &t2, &xor).is_some());
        assert!(match_gate(&t1, &t2, &and.not()).is_some());
        // A function not expressible by one gate of t1,t2.
        let only_t1 = t1.clone();
        assert!(match_gate(&t1, &t2, &only_t1).is_none());
    }
}
