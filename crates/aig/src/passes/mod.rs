//! Synthesis transformation passes and scripts.
//!
//! This module implements the seven transformations the ALMOST paper draws
//! recipes from, plus a `fraig` SAT-sweeping letter and the `resyn2`
//! baseline script:
//!
//! | Pass | Algorithm |
//! |------|-----------|
//! | [`Pass::Rewrite`], [`Pass::RewriteZ`] | 4-input cut rewriting with MFFC gain accounting (ISOP/Shannon re-synthesis through the structural hash) |
//! | [`Pass::Refactor`], [`Pass::RefactorZ`] | reconvergence-driven large-cut (≤10 leaves) collapsing and re-synthesis |
//! | [`Pass::Resub`], [`Pass::ResubZ`] | windowed resubstitution: replace a node by an existing divisor (or a one/three-node combination of two divisors) with *exact* window-truth-table verification |
//! | [`Pass::Balance`] | level-minimising AND-tree balancing |
//! | [`Pass::Fraig`] | SAT sweeping ([`crate::fraig`]): sim-signature candidate classes, incremental-SAT equivalence proofs, counterexample-refined merging (bounded [`crate::fraig::FraigConfig::recipe`] budgets) |
//!
//! The `-z` variants accept zero-gain moves, perturbing structure without
//! growing the graph — exactly ABC's `rewrite -z` / `refactor -z` /
//! `resub -z` behaviour that ALMOST's recipe search exploits to diversify
//! key-gate localities.
//!
//! Every pass is a pure function `&Aig -> Aig` that preserves the
//! input/output interface and the Boolean function of every output
//! (validated by random simulation and SAT-based CEC in the test suites).

mod balance;
mod refactor;
mod resub;
mod rewrite;
mod window;

pub use balance::balance;
pub use refactor::refactor;
pub use resub::resub;
pub use rewrite::rewrite;
pub use window::reconvergence_cut;

use crate::aig::Aig;
use std::fmt;
use std::str::FromStr;

/// One synthesis transformation, as selectable in an ALMOST recipe.
///
/// # Example
///
/// ```
/// use almost_aig::{Aig, Pass};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.xor(a, b);
/// aig.add_output(f);
/// let out = Pass::Rewrite.apply(&aig);
/// assert_eq!(out.num_outputs(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pass {
    /// Cut rewriting (`rewrite`).
    Rewrite,
    /// Zero-cost cut rewriting (`rewrite -z`).
    RewriteZ,
    /// Refactoring (`refactor`).
    Refactor,
    /// Zero-cost refactoring (`refactor -z`).
    RefactorZ,
    /// Resubstitution (`resub`).
    Resub,
    /// Zero-cost resubstitution (`resub -z`).
    ResubZ,
    /// AND-tree balancing (`balance`).
    Balance,
    /// SAT sweeping (`fraig`): merges functionally equivalent nodes under
    /// the bounded [`crate::fraig::FraigConfig::recipe`] configuration.
    Fraig,
}

impl Pass {
    /// All eight passes, in a fixed order: the paper's seven-letter recipe
    /// alphabet plus the `fraig` extension.
    pub const ALL: [Pass; 8] = [
        Pass::Rewrite,
        Pass::RewriteZ,
        Pass::Refactor,
        Pass::RefactorZ,
        Pass::Resub,
        Pass::ResubZ,
        Pass::Balance,
        Pass::Fraig,
    ];

    /// Applies the pass, returning a new AIG with the same interface and
    /// function.
    pub fn apply(self, aig: &Aig) -> Aig {
        match self {
            Pass::Rewrite => rewrite(aig, false),
            Pass::RewriteZ => rewrite(aig, true),
            Pass::Refactor => refactor(aig, false),
            Pass::RefactorZ => refactor(aig, true),
            Pass::Resub => resub(aig, false),
            Pass::ResubZ => resub(aig, true),
            Pass::Balance => balance(aig),
            Pass::Fraig => crate::fraig::fraig_with(aig, &crate::fraig::FraigConfig::recipe()).0,
        }
    }

    /// The ABC-style command name (`rewrite -z` etc.).
    pub fn command(self) -> &'static str {
        match self {
            Pass::Rewrite => "rewrite",
            Pass::RewriteZ => "rewrite -z",
            Pass::Refactor => "refactor",
            Pass::RefactorZ => "refactor -z",
            Pass::Resub => "resub",
            Pass::ResubZ => "resub -z",
            Pass::Balance => "balance",
            Pass::Fraig => "fraig",
        }
    }

    /// A compact single-letter mnemonic (used in recipe strings): `w`, `W`,
    /// `f`, `F`, `s`, `S`, `b`, `g`.
    pub fn mnemonic(self) -> char {
        match self {
            Pass::Rewrite => 'w',
            Pass::RewriteZ => 'W',
            Pass::Refactor => 'f',
            Pass::RefactorZ => 'F',
            Pass::Resub => 's',
            Pass::ResubZ => 'S',
            Pass::Balance => 'b',
            Pass::Fraig => 'g',
        }
    }

    /// Parses a single-letter mnemonic.
    pub fn from_mnemonic(c: char) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.mnemonic() == c)
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.command())
    }
}

impl FromStr for Pass {
    type Err = ParsePassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim();
        Pass::ALL
            .into_iter()
            .find(|p| p.command() == norm)
            .or_else(|| {
                let mut chars = norm.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Pass::from_mnemonic(c),
                    _ => None,
                }
            })
            .ok_or_else(|| ParsePassError(s.to_string()))
    }
}

/// Error returned when parsing a [`Pass`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePassError(String);

impl fmt::Display for ParsePassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown synthesis pass `{}`", self.0)
    }
}

impl std::error::Error for ParsePassError {}

/// An ordered sequence of passes.
///
/// # Example
///
/// ```
/// use almost_aig::{Aig, Script};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let c = aig.add_input();
/// let ab = aig.and(a, b);
/// let f = aig.xor(ab, c);
/// aig.add_output(f);
/// let out = Script::resyn2().apply(&aig);
/// assert_eq!(out.num_inputs(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Script(pub Vec<Pass>);

impl Script {
    /// The empty script.
    pub fn new() -> Self {
        Script(Vec::new())
    }

    /// The classic `resyn2` script (`b; rw; rf; b; rw; rwz; b; rfz; rwz; b`),
    /// the paper's baseline recipe. Conveniently exactly L = 10 steps.
    pub fn resyn2() -> Self {
        Script(vec![
            Pass::Balance,
            Pass::Rewrite,
            Pass::Refactor,
            Pass::Balance,
            Pass::Rewrite,
            Pass::RewriteZ,
            Pass::Balance,
            Pass::RefactorZ,
            Pass::RewriteZ,
            Pass::Balance,
        ])
    }

    /// Applies all passes in order.
    pub fn apply(&self, aig: &Aig) -> Aig {
        let mut current = aig.clone();
        for pass in &self.0 {
            current = pass.apply(&current);
        }
        current
    }

    /// The passes of the script.
    pub fn passes(&self) -> &[Pass] {
        &self.0
    }

    /// Script length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the script has no passes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Encodes the script as a mnemonic string (e.g. `bwfbwWbFWb`).
    pub fn to_mnemonics(&self) -> String {
        self.0.iter().map(|p| p.mnemonic()).collect()
    }

    /// Parses a mnemonic string.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePassError`] on the first unknown character.
    pub fn from_mnemonics(s: &str) -> Result<Self, ParsePassError> {
        s.chars()
            .map(|c| Pass::from_mnemonic(c).ok_or_else(|| ParsePassError(c.to_string())))
            .collect::<Result<Vec<_>, _>>()
            .map(Script)
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.0 {
            if !first {
                f.write_str("; ")?;
            }
            first = false;
            f.write_str(p.command())?;
        }
        Ok(())
    }
}

impl FromIterator<Pass> for Script {
    fn from_iter<T: IntoIterator<Item = Pass>>(iter: T) -> Self {
        Script(iter.into_iter().collect())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::sim::probably_equivalent;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Builds a random DAG with the given number of inputs and AND nodes.
    pub(crate) fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aig = Aig::new();
        let mut pool: Vec<crate::aig::Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
        while aig.num_ands() < num_ands {
            let a = pool[rng.random_range(0..pool.len())];
            let b = pool[rng.random_range(0..pool.len())];
            let (ca, cb) = (rng.random::<bool>(), rng.random::<bool>());
            let lit = aig.and(a.xor_complement(ca), b.xor_complement(cb));
            if !lit.is_const() {
                pool.push(lit);
            }
        }
        // A handful of outputs over the deepest nodes.
        let n_out = 4.min(pool.len());
        for i in 0..n_out {
            let lit = pool[pool.len() - 1 - i];
            aig.add_output(lit);
        }
        aig
    }

    #[test]
    fn every_pass_preserves_function() {
        for seed in 0..4 {
            let aig = random_aig(8, 60, seed);
            for pass in Pass::ALL {
                let out = pass.apply(&aig);
                assert_eq!(out.num_inputs(), aig.num_inputs());
                assert_eq!(out.num_outputs(), aig.num_outputs());
                assert!(
                    probably_equivalent(&aig, &out, 16, 99),
                    "{pass} broke equivalence on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn resyn2_preserves_function_and_does_not_blow_up() {
        let aig = random_aig(10, 120, 7);
        let out = Script::resyn2().apply(&aig);
        assert!(probably_equivalent(&aig, &out, 16, 5));
        assert!(
            out.num_ands() <= aig.num_ands() + aig.num_ands() / 4,
            "resyn2 grew the graph: {} -> {}",
            aig.num_ands(),
            out.num_ands()
        );
    }

    #[test]
    fn mnemonic_roundtrip() {
        let script = Script::resyn2();
        let s = script.to_mnemonics();
        assert_eq!(Script::from_mnemonics(&s).expect("parses"), script);
        assert!(Script::from_mnemonics("bxq").is_err());
    }

    #[test]
    fn pass_parse_roundtrip() {
        for pass in Pass::ALL {
            assert_eq!(pass.command().parse::<Pass>().expect("parses"), pass);
            assert_eq!(
                pass.mnemonic().to_string().parse::<Pass>().expect("parses"),
                pass
            );
        }
        assert!("dch".parse::<Pass>().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pass::RewriteZ.to_string(), "rewrite -z");
        let s = Script(vec![Pass::Balance, Pass::Rewrite]);
        assert_eq!(s.to_string(), "balance; rewrite");
    }
}
