//! Reconvergence-driven cut growth, shared by `refactor` and `resub`.

use crate::aig::{Aig, Var};

/// Grows a reconvergence-driven cut of `root` with at most `max_leaves`
/// leaves.
///
/// Starting from the fanins of `root`, the leaf whose expansion increases
/// the leaf count least (reconvergent leaves may even *decrease* it) is
/// expanded repeatedly until no expansion fits within `max_leaves`.
///
/// Returns the sorted leaf variables.
///
/// # Panics
///
/// Panics if `root` is not an AND node.
pub fn reconvergence_cut(aig: &Aig, root: Var, max_leaves: usize) -> Vec<Var> {
    let (a, b) = aig
        .and_fanins(root)
        .expect("reconvergence cut root must be an AND node");
    let mut leaves: Vec<Var> = vec![a.var(), b.var()];
    leaves.dedup();

    loop {
        let mut best: Option<(isize, usize)> = None; // (cost, leaf index)
        for (i, &leaf) in leaves.iter().enumerate() {
            let Some((fa, fb)) = aig.and_fanins(leaf) else {
                continue; // inputs / constant cannot be expanded
            };
            let mut added = 0isize;
            for f in [fa.var(), fb.var()] {
                if !leaves.contains(&f) {
                    added += 1;
                }
            }
            if fa.var() == fb.var() {
                added = added.min(1);
            }
            let cost = added - 1; // we remove the expanded leaf itself
            let new_total = leaves.len() as isize + cost;
            if new_total as usize > max_leaves {
                continue;
            }
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, i));
            }
        }
        let Some((_, idx)) = best else {
            break;
        };
        let leaf = leaves.swap_remove(idx);
        let (fa, fb) = aig.and_fanins(leaf).expect("expandable leaf is an AND");
        for f in [fa.var(), fb.var()] {
            if !leaves.contains(&f) {
                leaves.push(f);
            }
        }
    }
    leaves.sort_unstable();
    leaves
}

/// Collects the interior "volume" of a window: every node on a path from
/// the cut leaves to `root`, including `root`, excluding the leaves.
///
/// Returned in topological order.
pub fn window_volume(aig: &Aig, root: Var, leaves: &[Var]) -> Vec<Var> {
    let leaf_set: std::collections::HashSet<Var> = leaves.iter().copied().collect();
    let mut volume = Vec::new();
    let mut seen = std::collections::HashSet::new();
    fn go(
        aig: &Aig,
        v: Var,
        leaf_set: &std::collections::HashSet<Var>,
        seen: &mut std::collections::HashSet<Var>,
        volume: &mut Vec<Var>,
    ) {
        if leaf_set.contains(&v) || !seen.insert(v) || !aig.is_and(v) {
            return;
        }
        let (a, b) = aig.and_fanins(v).expect("is AND");
        go(aig, a.var(), leaf_set, seen, volume);
        go(aig, b.var(), leaf_set, seen, volume);
        volume.push(v);
    }
    go(aig, root, &leaf_set, &mut seen, &mut volume);
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    #[test]
    fn cut_of_simple_tree() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..4).map(|_| aig.add_input()).collect();
        let x = aig.and(ins[0], ins[1]);
        let y = aig.and(ins[2], ins[3]);
        let z = aig.and(x, y);
        aig.add_output(z);
        let cut = reconvergence_cut(&aig, z.var(), 8);
        let mut want: Vec<Var> = ins.iter().map(|l| l.var()).collect();
        want.sort_unstable();
        assert_eq!(cut, want);
    }

    #[test]
    fn cut_respects_limit() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..16).map(|_| aig.add_input()).collect();
        let f = aig.and_many(&ins);
        aig.add_output(f);
        let cut = reconvergence_cut(&aig, f.var(), 6);
        assert!(cut.len() <= 6);
    }

    #[test]
    fn reconvergence_shrinks_leaf_count() {
        // f = (a&b) & (a&c): expanding both fanins reconverges on a.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.and(ab, ac);
        aig.add_output(f);
        let cut = reconvergence_cut(&aig, f.var(), 8);
        let mut want = vec![a.var(), b.var(), c.var()];
        want.sort_unstable();
        assert_eq!(cut, want);
    }

    #[test]
    fn volume_is_topological_and_excludes_leaves() {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..4).map(|_| aig.add_input()).collect();
        let x = aig.and(ins[0], ins[1]);
        let y = aig.and(ins[2], ins[3]);
        let z = aig.and(x, y);
        aig.add_output(z);
        let leaves: Vec<Var> = ins.iter().map(|l| l.var()).collect();
        let vol = window_volume(&aig, z.var(), &leaves);
        assert_eq!(vol, vec![x.var(), y.var(), z.var()]);
    }
}
