//! Cut-based rewriting (ABC `rewrite` / `rewrite -z`).
//!
//! For every AND node, enumerate 4-feasible cuts, compute each cut's
//! function, and re-synthesise it over the cut leaves through the structural
//! hash of the graph being built. A candidate is accepted if the number of
//! nodes it adds is smaller than the MFFC it frees (gain > 0), or — for the
//! `-z` variant — equal (gain = 0, structural perturbation at zero cost).

use crate::aig::{Aig, Lit};
use crate::cut::{cut_function, CutConfig, CutSet};
use crate::isop::build_from_tt;
use crate::mffc::mffc_size;
use std::collections::HashSet;

/// Rewrites the AIG; `zero_cost` enables `-z` semantics.
pub fn rewrite(aig: &Aig, zero_cost: bool) -> Aig {
    let cuts = CutSet::compute(aig, CutConfig { k: 4, max_cuts: 8 });
    let mut refs = aig.fanout_counts();
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for i in 0..aig.num_inputs() {
        map[aig.inputs()[i] as usize] = new.add_named_input(aig.input_name(i).to_string());
    }

    for v in aig.iter_ands() {
        let (a, b) = aig.and_fanins(v).expect("iterating ANDs");
        let fa = map[a.var() as usize].xor_complement(a.is_complement());
        let fb = map[b.var() as usize].xor_complement(b.is_complement());
        let default = new.and(fa, fb);
        let mut best: Option<(isize, Lit)> = None;

        for cut in cuts.cuts_of(v) {
            if cut.size() < 2 || cut.leaves() == [v] {
                continue;
            }
            let leaf_set: HashSet<_> = cut.leaves().iter().copied().collect();
            let gain_credit = mffc_size(aig, v, &leaf_set, &mut refs) as isize;
            if gain_credit <= 1 && !zero_cost {
                // Best case the candidate costs 1 node (it is a function of
                // >= 2 leaves), so no strictly positive gain is possible
                // unless the candidate is fully shared; still worth probing
                // only when sharing could pay: probe anyway is cheap enough,
                // but skip the hopeless single-node cones.
                if gain_credit <= 0 {
                    continue;
                }
            }
            let tt = cut_function(aig, v, cut);
            let leaves_new: Vec<Lit> = cut.leaves().iter().map(|&l| map[l as usize]).collect();
            let cp = new.checkpoint();
            let cand = build_from_tt(&mut new, &tt, &leaves_new);
            let added = (new.checkpoint() - cp) as isize;
            new.rollback(cp);
            let gain = gain_credit - added;
            let acceptable = gain > 0 || (zero_cost && gain == 0 && cand != default);
            if acceptable {
                let better = match best {
                    None => true,
                    Some((bg, _)) => gain > bg,
                };
                if better {
                    // Rebuild committed; the candidate literal is stable
                    // because rollback restored the exact construction state.
                    let rebuilt = build_from_tt(&mut new, &tt, &leaves_new);
                    debug_assert_eq!(rebuilt, cand);
                    best = Some((gain, rebuilt));
                }
            }
        }

        map[v as usize] = best.map_or(default, |(_, lit)| lit);
    }

    for (i, out) in aig.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, aig.output_name(i).to_string());
    }
    new.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::tests::random_aig;
    use crate::sim::probably_equivalent;

    #[test]
    fn rewrite_preserves_function() {
        for seed in 0..6 {
            let aig = random_aig(8, 80, seed);
            let out = rewrite(&aig, false);
            assert!(
                probably_equivalent(&aig, &out, 16, seed),
                "seed {seed}: rewrite broke equivalence"
            );
        }
    }

    #[test]
    fn rewrite_shrinks_redundant_structure() {
        // Build (a AND b) OR (a AND b AND c) == a AND b -- heavy redundancy
        // a cut-based rewrite should collapse.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let f = aig.or(ab, abc);
        aig.add_output(f);
        let out = rewrite(&aig, false);
        assert!(probably_equivalent(&aig, &out, 8, 0));
        assert!(
            out.num_ands() < aig.num_ands(),
            "expected shrink: {} -> {}",
            aig.num_ands(),
            out.num_ands()
        );
    }

    #[test]
    fn rewrite_z_preserves_function_and_size_bound() {
        for seed in 0..4 {
            let aig = random_aig(8, 80, seed + 100);
            let out = rewrite(&aig, true);
            assert!(probably_equivalent(&aig, &out, 16, seed));
            // Gain accounting is MFFC-based and sharing is re-discovered in
            // the rebuilt graph, so allow a small slack instead of strict
            // monotonicity.
            assert!(
                out.num_ands() <= aig.num_ands() + aig.num_ands() / 10 + 2,
                "-z grew the graph too much: {} -> {}",
                aig.num_ands(),
                out.num_ands()
            );
        }
    }

    #[test]
    fn rewrite_z_can_change_structure_without_growth() {
        // Run both variants on the same graph; -z may produce a different
        // node count or structure, but never a larger one.
        let aig = random_aig(10, 150, 42);
        let plain = rewrite(&aig, false);
        let z = rewrite(&aig, true);
        assert!(z.num_ands() <= aig.num_ands() + aig.num_ands() / 10 + 2);
        assert!(probably_equivalent(&plain, &z, 16, 9));
    }

    #[test]
    fn rewrite_on_trivial_graphs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.add_output(a);
        aig.add_output(!a);
        aig.add_output(Lit::TRUE);
        let out = rewrite(&aig, false);
        assert_eq!(out.num_ands(), 0);
        assert!(probably_equivalent(&aig, &out, 2, 0));
    }
}
