//! Level-minimising AND-tree balancing.
//!
//! For every node, the pass collapses the maximal single-fanout,
//! non-complemented AND tree rooted there into one "super-gate", then
//! rebuilds it as a balanced tree, pairing the shallowest operands first
//! (Huffman-style). This is ABC's `balance` command restricted to AND
//! decomposition.

use crate::aig::{Aig, Lit, NodeKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Balances the AIG to reduce depth; the result computes the same functions.
pub fn balance(aig: &Aig) -> Aig {
    let refs = aig.fanout_counts();
    let mut new = Aig::new();
    // Level of each node in the NEW graph (grown lazily).
    let mut new_levels: Vec<u32> = vec![0];
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];

    for i in 0..aig.num_inputs() {
        let var = aig.inputs()[i];
        map[var as usize] = new.add_named_input(aig.input_name(i).to_string());
        new_levels.push(0);
    }

    for v in aig.iter_ands() {
        // Collect the super-gate operands in the old graph.
        let mut operands: Vec<Lit> = Vec::new();
        collect_supergate(aig, Lit::positive(v), &refs, true, &mut operands);

        // Map operands to the new graph and combine shallowest-first.
        let mut heap: BinaryHeap<Reverse<(u32, Lit)>> = operands
            .iter()
            .map(|l| {
                let mapped = map[l.var() as usize].xor_complement(l.is_complement());
                Reverse((new_levels[mapped.var() as usize], mapped))
            })
            .collect();
        let result = loop {
            let Reverse((la, a)) = heap.pop().expect("supergate has operands");
            let Some(Reverse((lb, b))) = heap.pop() else {
                break a;
            };
            let lit = and_tracked(&mut new, &mut new_levels, a, b);
            let lvl = new_levels[lit.var() as usize].max(la.max(lb));
            heap.push(Reverse((lvl, lit)));
        };
        map[v as usize] = result;
    }

    for (i, out) in aig.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, aig.output_name(i).to_string());
    }
    new.compact()
}

/// AND with new-graph level tracking.
fn and_tracked(new: &mut Aig, levels: &mut Vec<u32>, a: Lit, b: Lit) -> Lit {
    let before = new.num_nodes();
    let lit = new.and(a, b);
    if new.num_nodes() > before {
        let la = levels[a.var() as usize];
        let lb = levels[b.var() as usize];
        debug_assert_eq!(levels.len(), before);
        levels.push(1 + la.max(lb));
    }
    lit
}

/// Expands `lit` into super-gate operands: descends through positive-phase
/// AND nodes whose only fanout is the super-gate being collected.
fn collect_supergate(aig: &Aig, lit: Lit, refs: &[u32], is_root: bool, out: &mut Vec<Lit>) {
    let v = lit.var();
    let expandable = matches!(aig.node(v), NodeKind::And(..))
        && !lit.is_complement()
        && (is_root || refs[v as usize] == 1);
    if !expandable {
        out.push(lit);
        return;
    }
    let (a, b) = aig.and_fanins(v).expect("checked is AND");
    collect_supergate(aig, a, refs, false, out);
    collect_supergate(aig, b, refs, false, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::probably_equivalent;

    #[test]
    fn balances_a_chain() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..8).map(|_| aig.add_input()).collect();
        // Left-leaning chain of depth 7.
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = aig.and(acc, i);
        }
        aig.add_output(acc);
        assert_eq!(aig.depth(), 7);
        let out = balance(&aig);
        assert_eq!(out.depth(), 3, "8-input AND balances to depth 3");
        assert!(probably_equivalent(&aig, &out, 8, 1));
    }

    #[test]
    fn respects_shared_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc);
        aig.add_output(ab); // shared: must not be dissolved
        let out = balance(&aig);
        assert!(probably_equivalent(&aig, &out, 8, 2));
        assert_eq!(out.num_outputs(), 2);
    }

    #[test]
    fn complemented_edges_are_operand_boundaries() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let nab = aig.nand(a, b);
        let f = aig.and(nab, c);
        aig.add_output(f);
        let out = balance(&aig);
        assert!(probably_equivalent(&aig, &out, 8, 3));
    }

    #[test]
    fn repeated_balance_never_increases_depth() {
        let aig = crate::passes::tests::random_aig(8, 80, 11);
        let once = balance(&aig);
        assert!(once.depth() <= aig.depth());
        let twice = balance(&once);
        assert!(twice.depth() <= once.depth());
        assert!(probably_equivalent(&aig, &twice, 16, 4));
    }
}
