//! Property-based tests for the AIG substrate.

use almost_aig::cut::{cut_function, CutConfig, CutSet};
use almost_aig::isop::{build_from_tt, isop, Cube};
use almost_aig::npn::canonize;
use almost_aig::passes::{balance, reconvergence_cut};
use almost_aig::sim::{probably_equivalent, SimVectors};
use almost_aig::{Aig, Lit, Pass, Tt};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
    let mut guard = 0;
    while aig.num_ands() < num_ands && guard < 20 * num_ands {
        guard += 1;
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let lit = aig.and(
            a.xor_complement(rng.random()),
            b.xor_complement(rng.random()),
        );
        if !lit.is_const() {
            pool.push(lit);
        }
    }
    for i in 0..3.min(pool.len()) {
        let lit = pool[pool.len() - 1 - i];
        aig.add_output(lit);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compact_preserves_function(seed in 0u64..100_000) {
        let aig = random_aig(6, 50, seed);
        let compacted = aig.compact();
        prop_assert!(compacted.num_ands() <= aig.num_ands());
        prop_assert!(probably_equivalent(&aig, &compacted, 8, seed));
    }

    #[test]
    fn balance_never_increases_depth(seed in 0u64..100_000) {
        let aig = random_aig(8, 60, seed);
        let out = balance(&aig);
        prop_assert!(out.depth() <= aig.depth());
        prop_assert!(probably_equivalent(&aig, &out, 8, seed ^ 1));
    }

    #[test]
    fn shannon_expansion_identity(bits in any::<u16>()) {
        // f = x & f|x=1  |  !x & f|x=0, for every variable.
        let f = Tt::from_u64(4, bits as u64);
        for v in 0..4 {
            let x = Tt::var(v, 4);
            let recomposed = x.and(&f.cofactor1(v)).or(&x.not().and(&f.cofactor0(v)));
            prop_assert_eq!(&recomposed, &f);
        }
    }

    #[test]
    fn isop_cover_equals_function(bits in any::<u16>()) {
        let f = Tt::from_u64(4, bits as u64);
        let cubes = isop(&f);
        let cover = cubes
            .iter()
            .fold(Tt::zero(4), |acc, c: &Cube| acc.or(&c.to_tt(4)));
        prop_assert_eq!(cover, f);
    }

    #[test]
    fn build_from_tt_realises_function(bits in any::<u16>()) {
        let f = Tt::from_u64(4, bits as u64);
        let mut aig = Aig::new();
        let leaves: Vec<Lit> = (0..4).map(|_| aig.add_input()).collect();
        let root = build_from_tt(&mut aig, &f, &leaves);
        aig.add_output(root);
        for idx in 0..16usize {
            let ins: Vec<bool> = (0..4).map(|i| idx >> i & 1 != 0).collect();
            prop_assert_eq!(aig.eval(&ins)[0], f.get_bit(idx));
        }
    }

    #[test]
    fn npn_canonization_is_idempotent_and_consistent(bits in any::<u16>()) {
        let f = Tt::from_u64(4, bits as u64);
        let (canon, tr) = canonize(&f);
        prop_assert_eq!(&tr.apply(&f), &canon);
        let (canon2, _) = canonize(&canon);
        prop_assert_eq!(&canon2, &canon);
        // NPN classes are closed under output complement.
        let (canon_not, _) = canonize(&f.not());
        prop_assert_eq!(&canon_not, &canon);
    }

    #[test]
    fn cut_functions_agree_with_cone_simulation(seed in 0u64..100_000) {
        let aig = random_aig(5, 30, seed);
        let cuts = CutSet::compute(&aig, CutConfig::default());
        let sim = SimVectors::random(&aig, 2, seed);
        for v in aig.iter_ands().take(10) {
            for cut in cuts.cuts_of(v).iter().filter(|c| c.size() >= 2).take(3) {
                let tt = cut_function(&aig, v, cut);
                // Check the truth table against simulation: for each
                // pattern, node value must equal tt(leaf values).
                let node_pat = sim.node_pattern(v);
                for (w, &word) in node_pat.iter().enumerate().take(2) {
                    for b in 0..64usize {
                        let mut idx = 0usize;
                        for (i, &leaf) in cut.leaves().iter().enumerate() {
                            if (sim.node_pattern(leaf)[w] >> b) & 1 != 0 {
                                idx |= 1 << i;
                            }
                        }
                        let expect = (word >> b) & 1 != 0;
                        prop_assert_eq!(tt.get_bit(idx), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn reconvergence_cut_is_a_real_cut(seed in 0u64..100_000) {
        // Every path from inputs to the root must pass through a leaf:
        // equivalently, the cut function over the leaves fully determines
        // the node, which cut_function verifies structurally (it panics on
        // uncovered nodes).
        let aig = random_aig(6, 40, seed);
        let Some(v) = aig.iter_ands().last() else {
            return Ok(());
        };
        let leaves = reconvergence_cut(&aig, v, 8);
        prop_assert!(leaves.len() <= 8);
        let mut cut = almost_aig::cut::Cut::trivial(leaves[0]);
        for &l in &leaves[1..] {
            cut = cut.merge(&almost_aig::cut::Cut::trivial(l), leaves.len()).expect("merges");
        }
        let tt = cut_function(&aig, v, &cut); // would panic if not a cut
        prop_assert!(tt.nvars() == leaves.len());
    }

    #[test]
    fn pass_pipelines_compose(seed in 0u64..100_000) {
        let aig = random_aig(7, 50, seed);
        let once = Pass::Rewrite.apply(&aig);
        let twice = Pass::Refactor.apply(&once);
        let thrice = Pass::Balance.apply(&twice);
        prop_assert!(probably_equivalent(&aig, &thrice, 8, seed ^ 2));
    }
}
