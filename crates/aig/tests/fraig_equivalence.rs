//! Differential verification of the fraig sweep.
//!
//! Every property here holds the sweep to the only standard that matters
//! for a CEC engine: the swept network must be *provably* — not
//! probably — equivalent to its input. Each netlist is checked two
//! independent ways:
//!
//! 1. **Full SAT CEC** via [`almost_sat::check_equivalence`] (itself
//!    fraig-first, so agreement also exercises the joint-netlist path);
//! 2. **Bit-for-bit compiled simulation**: both netlists are lowered
//!    through [`CompiledAig`] and evaluated on 128 random patterns
//!    (two 64-bit words — comfortably past the 65-pattern floor that
//!    distinguishes word-boundary bugs).
//!
//! The inputs come from two sources: random strashed AIGs, and the
//! netlists produced by all five logic-locking schemes — the workload
//! the paper's oracle-guided attacks sweep in their inner loop.

use almost_aig::{fraig_with, Aig, CompiledAig, FraigConfig, Lit};
use almost_locking::{apply_key, AntiSat, LockingScheme, MuxLock, Rll, SarLock, Stacked};
use almost_sat::{check_equivalence, Equivalence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
    let mut guard = 0;
    while aig.num_ands() < num_ands && guard < num_ands * 20 {
        guard += 1;
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let lit = aig.and(
            a.xor_complement(rng.random()),
            b.xor_complement(rng.random()),
        );
        if !lit.is_const() {
            pool.push(lit);
        }
    }
    for i in 0..4.min(pool.len()) {
        let lit = pool[pool.len() - 1 - i];
        aig.add_output(lit);
    }
    aig
}

/// SAT CEC plus 128-pattern compiled differential between `original` and
/// `swept`.
fn assert_equivalent(original: &Aig, swept: &Aig, seed: u64) {
    assert_eq!(
        check_equivalence(original, swept),
        Equivalence::Equivalent,
        "SAT CEC refuted the sweep"
    );

    const NUM_WORDS: usize = 2; // 128 patterns >= 65.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_BEEF);
    let input_words: Vec<Vec<u64>> = (0..original.num_inputs())
        .map(|_| (0..NUM_WORDS).map(|_| rng.random()).collect())
        .collect();
    let before = CompiledAig::compile(original).expect("compile original");
    let after = CompiledAig::compile(swept).expect("compile swept");
    assert_eq!(
        before.eval_words(&input_words, NUM_WORDS),
        after.eval_words(&input_words, NUM_WORDS),
        "compiled simulation diverged after the sweep"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fraig_preserves_random_aigs(
        seed in 0u64..1_000,
        num_inputs in 3usize..8,
        num_ands in 10usize..60,
    ) {
        let aig = random_aig(num_inputs, num_ands, seed);
        let (swept, stats) = fraig_with(&aig, &FraigConfig::default());
        prop_assert!(stats.ands_after <= stats.ands_before);
        assert_equivalent(&aig, &swept, seed);
    }

    #[test]
    fn fraig_is_idempotent(seed in 0u64..1_000) {
        // A swept network has no two nodes left to merge: a second sweep
        // must be a (size-preserving) no-op.
        let aig = random_aig(6, 40, seed);
        let (once, _) = fraig_with(&aig, &FraigConfig::default());
        let (twice, stats) = fraig_with(&once, &FraigConfig::default());
        prop_assert_eq!(stats.merges, 0);
        prop_assert_eq!(stats.constants, 0);
        prop_assert_eq!(once.num_ands(), twice.num_ands());
    }

    #[test]
    fn recipe_config_preserves_random_aigs(seed in 0u64..1_000) {
        // The bounded config used inside synthesis recipes gives up on
        // hard proofs, but must never merge unsoundly.
        let aig = random_aig(6, 50, seed);
        let (swept, stats) = fraig_with(&aig, &FraigConfig::recipe());
        prop_assert_eq!(stats.escalations, 0);
        assert_equivalent(&aig, &swept, seed);
    }
}

#[test]
fn all_five_locking_schemes_fraig_clean() {
    // The workload that motivates the engine: locked netlists carry
    // point-function tails and redundant key logic that simulation alone
    // cannot certify. Sweep each scheme's output and prove it unchanged,
    // then re-specialise with the correct key and prove the original
    // function still falls out.
    for seed in [7u64, 21] {
        let base = random_aig(8, 60, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10C4);
        let schemes: Vec<Box<dyn LockingScheme>> = vec![
            Box::new(Rll::new(8)),
            Box::new(SarLock::new(6)),
            Box::new(AntiSat::new(4)),
            Box::new(MuxLock::new(8)),
            Box::new(Stacked::new(Rll::new(4), SarLock::new(4))),
        ];
        for scheme in schemes {
            let locked = scheme.lock(&base, &mut rng).expect("lockable");
            let (swept, stats) = fraig_with(&locked.aig, &FraigConfig::default());
            assert!(
                stats.ands_after <= stats.ands_before,
                "{}: sweep grew the netlist",
                scheme.name()
            );
            assert_equivalent(&locked.aig, &swept, seed);

            // `compact` preserves input order, so the key-input range of
            // the swept netlist is still `key_input_start..`.
            let keyed = apply_key(&swept, locked.key_input_start, locked.key.bits());
            assert_eq!(
                check_equivalence(&base, &keyed),
                Equivalence::Equivalent,
                "{}: correct key no longer recovers the original after the sweep",
                scheme.name()
            );
        }
    }
}

#[test]
fn ternary_constants_are_sat_confirmed() {
    // g = (a & b) & !a is identically false, yet survives strash (the
    // hash only folds one-level patterns). The ternary cofactor scan must
    // find it without a SAT call, and full CEC must confirm the fold.
    let mut aig = Aig::new();
    let a = aig.add_input();
    let b = aig.add_input();
    let ab = aig.and(a, b);
    let g = aig.and(ab, !a);
    let live = aig.and(a, b); // keep a non-constant output alongside
    aig.add_output(g);
    aig.add_output(live);

    let (swept, stats) = fraig_with(&aig, &FraigConfig::default());
    assert!(
        stats.ternary_constants > 0,
        "cofactor scan missed the hidden constant"
    );
    assert_eq!(swept.outputs()[0], Lit::FALSE);
    assert_eq!(
        check_equivalence(&aig, &swept),
        Equivalence::Equivalent,
        "SAT disagrees with the ternary constant fold"
    );
}

#[test]
fn swept_network_is_identical_across_solver_widths() {
    // Escalated proofs race `ALMOST_SOLVERS` portfolio workers, but an
    // UNSAT verdict is an UNSAT verdict regardless of which worker found
    // it — so the *merged network* must be bit-identical at any width.
    // `hard_conflicts: 1` trips the in-line budget on every non-trivial
    // query, forcing the portfolio path to actually run.
    let aig = random_aig(8, 80, 99);
    let config = FraigConfig {
        hard_conflicts: 1,
        escalate: true,
        ..FraigConfig::default()
    };
    let run = |width: &str| {
        std::env::set_var("ALMOST_SOLVERS", width);
        let out = fraig_with(&aig, &config);
        std::env::remove_var("ALMOST_SOLVERS");
        out
    };
    let (serial, serial_stats) = run("1");
    let (wide, wide_stats) = run("3");
    assert!(
        serial_stats.escalations > 0,
        "a 1-conflict budget should force portfolio escalations"
    );
    assert_eq!(serial_stats.escalations, wide_stats.escalations);
    assert_eq!(serial.num_nodes(), wide.num_nodes());
    assert_eq!(serial.num_ands(), wide.num_ands());
    assert_eq!(serial.inputs(), wide.inputs());
    assert_eq!(serial.outputs(), wide.outputs());
}
