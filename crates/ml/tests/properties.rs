//! Property-based tests for the ML substrate.

use almost_ml::tape::{sigmoid, softplus, Tape};
use almost_ml::tensor::Matrix;
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(4, 2)) {
        // a(b + c) == ab + ac (within f32 tolerance).
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        // (ab)^T == b^T a^T.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn sigmoid_softplus_identities(z in -30.0f32..30.0) {
        // softplus'(z) = sigmoid(z); sigmoid(-z) = 1 - sigmoid(z).
        prop_assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-5);
        prop_assert!(softplus(z) >= 0.0);
        prop_assert!(softplus(z) >= z.max(0.0) - 1e-5);
    }

    #[test]
    fn bce_loss_is_nonnegative_and_calibrated(z in -10.0f32..10.0, label in any::<bool>()) {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 1, vec![z]));
        let l = t.bce_with_logits(x, label as u8 as f32);
        let loss = t.value(l).get(0, 0);
        prop_assert!(loss >= -1e-6);
        // Confident-correct predictions have near-zero loss.
        if (z > 5.0 && label) || (z < -5.0 && !label) {
            prop_assert!(loss < 0.01, "loss {loss} for z={z} label={label}");
        }
    }

    #[test]
    fn gradient_of_linear_chain_matches_analytics(w in -2.0f32..2.0, x in -2.0f32..2.0) {
        // loss = BCE(w * x, 1): d/dw = x (sigmoid(wx) - 1).
        let mut t = Tape::new();
        let wn = t.leaf(Matrix::from_vec(1, 1, vec![w]));
        let xn = t.leaf(Matrix::from_vec(1, 1, vec![x]));
        let z = t.matmul(wn, xn);
        let l = t.bce_with_logits(z, 1.0);
        t.backward(l);
        let g = t.grad(wn).expect("grad").get(0, 0);
        let expect = x * (sigmoid(w * x) - 1.0);
        prop_assert!((g - expect).abs() < 1e-4, "{g} vs {expect}");
    }

    #[test]
    fn mean_rows_is_average(m in small_matrix(4, 3)) {
        let mean = m.mean_rows();
        for c in 0..3 {
            let expect: f32 = (0..4).map(|r| m.get(r, c)).sum::<f32>() / 4.0;
            prop_assert!((mean.get(0, c) - expect).abs() < 1e-5);
        }
    }
}
