//! Worker-count invariance of the data-parallel trainer.
//!
//! The trainer splits every minibatch into fixed-size sub-blocks and
//! folds block gradients in block order, so the floating-point result
//! must not depend on `ALMOST_JOBS`. This test lives in its own
//! integration binary because it mutates the (process-global)
//! environment variable; it is the only test here, so nothing races it.

use almost_ml::gin::{GinClassifier, Graph};
use almost_ml::tensor::Matrix;
use almost_ml::train::{train, TrainConfig, TrainStats};

fn dataset() -> Vec<Graph> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..64)
        .map(|_| {
            let label = next().is_multiple_of(2);
            let signal = if label { 1.0 } else { -1.0 };
            let mut f = Matrix::zeros(5, 2);
            for r in 0..5 {
                f.set(r, 0, signal + (next() % 100) as f32 / 400.0);
                f.set(r, 1, r as f32 / 4.0);
            }
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], f, label)
        })
        .collect()
}

fn run(jobs: &str) -> (TrainStats, Vec<Matrix>) {
    std::env::set_var("ALMOST_JOBS", jobs);
    let mut model = GinClassifier::new(2, 10, 2, 1234);
    let stats = train(
        &mut model,
        &dataset(),
        &TrainConfig {
            epochs: 5,
            batch_size: 24,
            learning_rate: 5e-3,
            seed: 11,
        },
    );
    let params = model.parameters().into_iter().cloned().collect();
    (stats, params)
}

#[test]
fn training_is_bit_identical_for_any_worker_count() {
    let (serial_stats, serial_params) = run("1");
    for jobs in ["2", "3", "8"] {
        let (stats, params) = run(jobs);
        assert_eq!(
            stats.epoch_losses, serial_stats.epoch_losses,
            "ALMOST_JOBS={jobs}: loss curve must match the serial reference bit-for-bit"
        );
        assert_eq!(
            params, serial_params,
            "ALMOST_JOBS={jobs}: trained parameters must match the serial reference bit-for-bit"
        );
    }
    std::env::remove_var("ALMOST_JOBS");
}
