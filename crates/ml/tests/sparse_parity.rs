//! Dense-vs-sparse parity suite for the CSR training engine.
//!
//! Three layers of evidence that the sparse hot path computes exactly
//! what the dense reference computes:
//!
//! 1. **Kernel parity** (property): `spmm(csr(A), H)` equals
//!    `A.matmul(H)` element-wise on random sparse matrices — and
//!    *bit*-equal, because CSR rows add the same products in the same
//!    ascending-column order as a dense row scan.
//! 2. **Gradient correctness**: the `Tape::spmm` op passes a central
//!    finite-difference check on random symmetric operators.
//! 3. **End-to-end**: a fixed-seed sparse + data-parallel training run
//!    reproduces the dense serial reference's `epoch_losses` within
//!    1e-5 (the acceptance bound; the runs are in fact bit-identical).

use almost_ml::gin::{GinClassifier, Graph};
use almost_ml::tape::Tape;
use almost_ml::tensor::{Matrix, SparseMatrix};
use almost_ml::train::{train, train_dense_reference, TrainConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic xorshift stream.
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// A random matrix with roughly `density` nonzero entries.
fn random_sparse_dense(rows: usize, cols: usize, density_pct: u64, seed: u64) -> Matrix {
    let mut next = stream(seed);
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if next() % 100 < density_pct {
                let v = (next() % 2000) as f32 / 100.0 - 10.0;
                m.set(r, c, v);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel parity: CSR spmm equals (bitwise) the dense matmul on
    /// random sparse matrices of arbitrary shape and density.
    #[test]
    fn spmm_matches_dense_matmul(
        seed in 0u64..1_000_000,
        rows in 1usize..24,
        inner in 1usize..24,
        cols in 1usize..12,
        density in 0u64..60,
    ) {
        let a = random_sparse_dense(rows, inner, density, seed);
        let h = random_sparse_dense(inner, cols, 90, seed ^ 0xA5A5);
        let csr = SparseMatrix::from_dense(&a);
        prop_assert_eq!(csr.to_dense(), a.clone(), "CSR round-trip");
        let sparse = csr.spmm(&h);
        let dense = a.matmul(&h);
        prop_assert_eq!(sparse, dense, "same products in the same order");
    }

    /// Gradient correctness: finite-difference check of the spmm op on a
    /// random symmetric Â over a random feature matrix.
    #[test]
    fn spmm_gradient_passes_finite_differences(
        seed in 0u64..1_000_000,
        n in 2usize..10,
        d in 1usize..5,
    ) {
        let mut next = stream(seed);
        // Random undirected edge set (self-loops come from adjacency_hat).
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if next().is_multiple_of(3) {
                    edges.push((u, v));
                }
            }
        }
        let adj = Arc::new(SparseMatrix::adjacency_hat(n, &edges));
        prop_assert!(adj.is_symmetric());
        let input = random_sparse_dense(n, d, 95, seed ^ 0x5EED);
        let col = random_sparse_dense(d, 1, 100, seed ^ 0xC01);

        let forward = |x: &Matrix| -> (f32, Option<Matrix>) {
            let mut t = Tape::new();
            let xn = t.leaf(x.clone());
            let agg = t.spmm(&adj, xn);
            let pooled = t.mean_rows(agg);
            let c = t.leaf(col.clone());
            let s = t.matmul(pooled, c);
            let l = t.bce_with_logits(s, 1.0);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(xn).cloned())
        };
        let (_, analytic) = forward(&input);
        let analytic = analytic.expect("input participates");
        let eps = 1e-2f32;
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let numeric = (forward(&plus).0 - forward(&minus).0) / (2.0 * eps);
            let a = analytic.data()[i];
            prop_assert!(
                (a - numeric).abs() <= 2e-2 * (1.0 + numeric.abs()),
                "entry {}: analytic {} vs numeric {}", i, a, numeric
            );
        }
    }
}

/// An OMLA-shaped synthetic dataset: chain localities whose label is
/// decodable from the centre node's feature.
fn locality_dataset(n: usize, nodes: usize, seed: u64) -> Vec<Graph> {
    let mut next = stream(seed);
    (0..n)
        .map(|_| {
            let label = next().is_multiple_of(2);
            let signal = if label { 1.0 } else { -1.0 };
            let mut f = Matrix::zeros(nodes, 3);
            for r in 0..nodes {
                let noise = (next() % 100) as f32 / 500.0;
                f.set(r, 0, signal + noise);
                f.set(r, 1, (r == 0) as u8 as f32);
                f.set(r, 2, 1.0);
            }
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v - 1, v)).collect();
            Graph::from_edges(nodes, &edges, f, label)
        })
        .collect()
}

/// End-to-end acceptance bound: the sparse + parallel trainer reproduces
/// the dense serial reference within 1e-5 on a fixed seed (they are in
/// fact bit-identical — asserted second, so a parity break reports the
/// loss curves first).
#[test]
fn sparse_parallel_end_to_end_matches_dense_serial_reference() {
    let data = locality_dataset(96, 12, 0xA110C);
    let config = TrainConfig {
        epochs: 12,
        batch_size: 32,
        learning_rate: 5e-3,
        seed: 4,
    };
    let mut sparse_model = GinClassifier::new(3, 12, 2, 77);
    let mut dense_model = sparse_model.clone();
    let sparse = train(&mut sparse_model, &data, &config);
    let dense = train_dense_reference(&mut dense_model, &data, &config);

    assert_eq!(sparse.epoch_losses.len(), dense.epoch_losses.len());
    for (e, (s, d)) in sparse
        .epoch_losses
        .iter()
        .zip(&dense.epoch_losses)
        .enumerate()
    {
        assert!(
            (s - d).abs() <= 1e-5,
            "epoch {e}: sparse loss {s} vs dense reference {d}"
        );
    }
    assert_eq!(
        sparse.epoch_losses, dense.epoch_losses,
        "beyond the 1e-5 bound, the curves are bit-identical"
    );
    assert_eq!(sparse.final_accuracy, dense.final_accuracy);
}
