//! Optimizers.

use crate::tensor::Matrix;

/// The Adam optimizer (Kingma & Ba, 2015).
///
/// # Example
///
/// ```
/// use almost_ml::optim::Adam;
/// use almost_ml::tensor::Matrix;
///
/// let mut param = Matrix::from_rows(&[&[1.0]]);
/// let grad = Matrix::from_rows(&[&[2.0]]);
/// let mut adam = Adam::new(0.1);
/// adam.step(&mut [&mut param], &[&grad]);
/// assert!(param.get(0, 0) < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` have different lengths or shapes, or
    /// if the parameter set changes between calls.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[&Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!((p.rows(), p.cols()), (g.rows(), g.cols()), "shape mismatch");
            for i in 0..p.data().len() {
                let gi = g.data()[i];
                m.data_mut()[i] = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                v.data_mut()[i] = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                let mh = m.data()[i] / b1t;
                let vh = v.data()[i] / b2t;
                p.data_mut()[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut x = Matrix::from_rows(&[&[0.0]]);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let g = Matrix::from_rows(&[&[2.0 * (x.get(0, 0) - 3.0)]]);
            adam.step(&mut [&mut x], &[&g]);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 0.05, "x = {}", x.get(0, 0));
    }

    #[test]
    fn handles_multiple_parameters() {
        let mut a = Matrix::from_rows(&[&[5.0]]);
        let mut b = Matrix::from_rows(&[&[-5.0, 2.0]]);
        let mut adam = Adam::new(0.2);
        for _ in 0..400 {
            let ga = Matrix::from_rows(&[&[2.0 * a.get(0, 0)]]);
            let gb = b.scale(2.0);
            adam.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!(a.norm() < 0.1);
        assert!(b.norm() < 0.1);
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn mismatched_counts_panic() {
        let mut a = Matrix::zeros(1, 1);
        let mut adam = Adam::new(0.1);
        adam.step(&mut [&mut a], &[]);
    }
}
