//! Dense row-major `f32` matrices and CSR sparse matrices.
//!
//! The ML stack (GIN subgraph classifier, Adam, BCE) runs on two types:
//! [`Matrix`] for node features, layer weights and activations, and
//! [`SparseMatrix`] (compressed sparse row) for the graph adjacency
//! `Â = A + I`. AIG localities have fan-in ≤ 2, so `Â` holds ~3 entries
//! per row; the CSR product [`SparseMatrix::spmm`] aggregates neighbours
//! in O(E·d) instead of the dense O(n²·d) matmul, and — because the stored
//! columns are sorted ascending — adds the *same* products in the *same*
//! order as a dense row scan, so sparse and dense aggregation agree
//! bit-for-bit.
//!
//! Dense kernels come in allocating (`matmul`) and accumulating
//! (`matmul_acc_into`, `matmul_at_acc_into`, `matmul_a_bt_acc_into`)
//! forms; the accumulating forms are what the autodiff tape's in-place
//! backward pass uses, and all of them iterate the contraction index
//! ascending in k-blocked panels, so blocking never changes the result.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use almost_ml::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// He-normal initialisation (as prescribed by the paper's Algorithm 1):
    /// entries ~ N(0, sqrt(2 / fan_in)).
    pub fn he_init(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / rows as f32).sqrt();
        let mut data = Vec::with_capacity(rows * cols);
        // Box–Muller from uniform samples.
        while data.len() < rows * cols {
            let u1: f32 = rng.random::<f32>().max(1e-7);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_acc_into(other, &mut out);
        out
    }

    /// Accumulating product `out += self × other`.
    ///
    /// The triple loop is blocked over the contraction index so the panel
    /// of `other` rows in flight stays cache-resident, and the innermost
    /// loop is a slice-zip axpy the compiler can vectorise. Blocks are
    /// visited in ascending `k` order, so every output element receives
    /// its partial products in plain ascending-`k` order — blocking never
    /// changes the floating-point result.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.cols));
        const KC: usize = 64;
        let n = other.cols;
        let mut kb = 0;
        while kb < self.cols {
            let kend = (kb + KC).min(self.cols);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..][..self.cols];
                let out_row = &mut out.data[i * n..][..n];
                for (k, &a) in a_row.iter().enumerate().take(kend).skip(kb) {
                    let b_row = &other.data[k * n..][..n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
            kb = kend;
        }
    }

    /// Accumulating transposed-left product `out += selfᵀ × other`
    /// (the weight-gradient kernel: no transpose is materialised).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_at_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_at dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols));
        let n = other.cols;
        // k runs over the shared row index ascending, matching the
        // addition order of `self.transpose().matmul(other)` exactly.
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..][..self.cols];
            let b_row = &other.data[k * n..][..n];
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * n..][..n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Accumulating transposed-right product `out += self × otherᵀ`
    /// (the input-gradient kernel: no transpose is materialised).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_a_bt_acc_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.rows));
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..][..self.cols];
            let out_row = &mut out.data[i * other.rows..][..other.rows];
            for (o, b_row) in out_row.iter_mut().zip(other.data.chunks_exact(other.cols)) {
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o += acc;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into a pre-allocated matrix (workspace-reuse form).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `cols × rows`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.cols, self.rows));
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Appends the transpose's row-major entries to `buf` (write-only —
    /// no zero-fill double-touch; the tape's backward scratch path).
    pub fn transpose_extend(&self, buf: &mut Vec<f32>) {
        buf.reserve(self.rows * self.cols);
        for c in 0..self.cols {
            for r in 0..self.rows {
                buf.push(self.data[r * self.cols + c]);
            }
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Adds a 1×cols row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += row.data[c];
            }
        }
        out
    }

    /// Column-wise mean, producing a 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        for c in 0..self.cols {
            out.data[c] /= self.rows as f32;
        }
        out
    }

    /// Column-wise sum, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Consumes the matrix, returning its flat buffer (so the allocation
    /// can be recycled — see `Tape`'s workspace).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Copies `other`'s entries into `self` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.copy_from_slice(&other.data);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// A compressed-sparse-row (CSR) `f32` matrix.
///
/// Within each row the stored columns are strictly ascending, which makes
/// [`SparseMatrix::spmm`] add its products in exactly the order a dense
/// row scan would — sparse and dense aggregation agree bit-for-bit (a
/// dense scan's extra `+ 0.0 × x` terms are exact no-ops).
///
/// # Example
///
/// ```
/// use almost_ml::tensor::{Matrix, SparseMatrix};
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
/// let s = SparseMatrix::from_dense(&a);
/// assert_eq!(s.nnz(), 2);
/// let h = Matrix::from_rows(&[&[3.0], &[4.0]]);
/// assert_eq!(s.spmm(&h), a.matmul(&h));
/// ```
#[derive(Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i`'s entries.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets; duplicate
    /// coordinates are summed, exact zeros are kept out of the structure.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range or a dimension exceeds
    /// `u32::MAX`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        let mut sorted: Vec<(usize, usize, f32)> = triplets
            .iter()
            .copied()
            .filter(|&(r, c, v)| {
                // Range-check before dropping zeros, so an out-of-range
                // coordinate panics even when its value happens to be 0.
                assert!(r < rows && c < cols, "triplet out of range");
                v != 0.0
            })
            .collect();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut coalesced: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match coalesced.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => coalesced.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0u32; rows + 1];
        for &(r, _, _) in &coalesced {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx: coalesced.iter().map(|&(_, c, _)| c as u32).collect(),
            vals: coalesced.iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// Builds the normalised-free GIN aggregation operator `Â = A + I`
    /// for an undirected edge list: self-loops plus both edge directions,
    /// every stored entry 1.0 (duplicate edges collapse, they do not sum).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= num_nodes`.
    pub fn adjacency_hat(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let mut coords: Vec<(usize, usize)> = (0..num_nodes).map(|i| (i, i)).collect();
        for &(u, v) in edges {
            assert!(u < num_nodes && v < num_nodes, "edge out of range");
            coords.push((u, v));
            coords.push((v, u));
        }
        coords.sort_unstable();
        coords.dedup();
        let triplets: Vec<(usize, usize, f32)> =
            coords.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
        SparseMatrix::from_triplets(num_nodes, num_nodes, &triplets)
    }

    /// Stacks square symmetric blocks into one block-diagonal matrix —
    /// the union operator of a minibatch of graphs (still symmetric, so
    /// it remains a valid `Tape::spmm` operator).
    ///
    /// # Panics
    ///
    /// Panics if any part is not square.
    pub fn block_diagonal(parts: &[&SparseMatrix]) -> SparseMatrix {
        let n: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.rows, p.cols, "block-diagonal parts must be square");
                p.rows
            })
            .sum();
        let nnz: usize = parts.iter().map(|p| p.nnz()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0u32);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        let mut offset = 0u32;
        for p in parts {
            for r in 0..p.rows {
                for e in p.row_range(r) {
                    col_idx.push(offset + p.col_idx[e]);
                    vals.push(p.vals[e]);
                }
                row_ptr.push(col_idx.len() as u32);
            }
            offset += p.rows as u32;
        }
        SparseMatrix {
            rows: n,
            cols: n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    triplets.push((r, c, v));
                }
            }
        }
        SparseMatrix::from_triplets(m.rows(), m.cols(), &triplets)
    }

    /// Materialises the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for e in self.row_range(r) {
                out.set(r, self.col_idx[e] as usize, self.vals[e]);
            }
        }
        out
    }

    fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// True if the matrix equals its transpose (pattern and values) — the
    /// property `Tape::spmm`'s backward pass relies on.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for e in self.row_range(r) {
                let c = self.col_idx[e] as usize;
                let mirror = self
                    .row_range(c)
                    .find_map(|e2| (self.col_idx[e2] as usize == r).then_some(self.vals[e2]));
                if mirror != Some(self.vals[e]) {
                    return false;
                }
            }
        }
        true
    }

    /// Sparse × dense product `self × h`, O(nnz · h.cols).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmm(&self, h: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, h.cols());
        self.spmm_acc_into(h, &mut out);
        out
    }

    /// Accumulating sparse × dense product `out += self × h`.
    ///
    /// Row entries are visited in ascending column order and added
    /// straight into the output row, so the result is bit-identical to
    /// the dense `self.to_dense() × h` row scan.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn spmm_acc_into(&self, h: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, h.rows(), "spmm dimension mismatch");
        assert_eq!((out.rows(), out.cols()), (self.rows, h.cols()));
        let d = h.cols();
        for r in 0..self.rows {
            let out_row = &mut out.data[r * d..][..d];
            for e in self.row_range(r) {
                let v = self.vals[e];
                let h_row = &h.data[self.col_idx[e] as usize * d..][..d];
                for (o, &x) in out_row.iter_mut().zip(h_row) {
                    *o += v * x;
                }
            }
        }
    }
}

impl fmt::Debug for SparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseMatrix({}x{}, nnz {})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = Matrix::from_rows(&[&[10.0, 20.0]]);
        let b = a.add_row_broadcast(&row);
        assert_eq!(b.get(1, 1), 24.0);
        let m = a.mean_rows();
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 3.0]]));
        let s = a.sum_rows();
        assert_eq!(s, Matrix::from_rows(&[&[4.0, 6.0]]));
    }

    #[test]
    fn he_init_statistics() {
        let m = Matrix::he_init(64, 64, 7);
        let mean: f32 = m.data().iter().sum::<f32>() / (64.0 * 64.0);
        let var: f32 = m
            .data()
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / (64.0 * 64.0);
        let expected_var = 2.0 / 64.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - expected_var).abs() < expected_var * 0.3,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn he_init_is_deterministic() {
        assert_eq!(Matrix::he_init(8, 8, 3), Matrix::he_init(8, 8, 3));
        assert_ne!(Matrix::he_init(8, 8, 3), Matrix::he_init(8, 8, 4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c, Matrix::from_rows(&[&[2.5, 0.0]]));
    }

    #[test]
    fn accumulate_kernels_match_their_allocating_references() {
        let a = Matrix::he_init(5, 7, 1);
        let b = Matrix::he_init(7, 3, 2);
        let mut out = Matrix::zeros(5, 3);
        a.matmul_acc_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        // selfᵀ × other without materialising the transpose.
        let g = Matrix::he_init(5, 3, 3);
        let mut at = Matrix::zeros(7, 3);
        a.matmul_at_acc_into(&g, &mut at);
        assert_eq!(at, a.transpose().matmul(&g));

        // self × otherᵀ without materialising the transpose.
        let w = Matrix::he_init(4, 7, 4);
        let mut bt = Matrix::zeros(5, 4);
        a.matmul_a_bt_acc_into(&w, &mut bt);
        let reference = a.matmul(&w.transpose());
        for (x, y) in bt.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn accumulate_kernels_accumulate() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let mut out = Matrix::from_rows(&[&[100.0]]);
        a.matmul_acc_into(&b, &mut out);
        assert_eq!(out.get(0, 0), 111.0);
    }

    #[test]
    fn csr_roundtrips_through_dense() {
        let d = Matrix::from_rows(&[&[0.0, 1.5, 0.0], &[2.0, 0.0, 0.0], &[0.0, 0.0, -3.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn csr_triplets_sum_duplicates_and_drop_zeros() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (0, 1, 3.0), (1, 0, 0.0)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense(), Matrix::from_rows(&[&[0.0, 5.0], &[0.0, 0.0]]));
    }

    #[test]
    fn adjacency_hat_is_symmetric_with_self_loops() {
        let s = SparseMatrix::adjacency_hat(3, &[(0, 1), (1, 0), (1, 2)]);
        assert!(s.is_symmetric());
        let expect = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 1.0]]);
        assert_eq!(s.to_dense(), expect);
        assert_eq!(s.nnz(), 7);
    }

    #[test]
    fn asymmetry_is_detected() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!s.is_symmetric());
        let t = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
        assert!(!t.is_symmetric(), "value mismatch is asymmetry too");
        assert!(!SparseMatrix::from_triplets(2, 3, &[]).is_symmetric());
    }

    #[test]
    fn spmm_is_bit_identical_to_the_dense_product() {
        let adj = SparseMatrix::adjacency_hat(4, &[(0, 1), (2, 3), (1, 2)]);
        let h = Matrix::he_init(4, 6, 9);
        let sparse = adj.spmm(&h);
        let dense = adj.to_dense().matmul(&h);
        assert_eq!(sparse, dense, "same additions in the same order");
    }

    #[test]
    fn spmm_handles_empty_rows() {
        let s = SparseMatrix::from_triplets(3, 3, &[(2, 0, 2.0)]);
        let h = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let out = s.spmm(&h);
        assert_eq!(out, Matrix::from_rows(&[&[0.0], &[0.0], &[2.0]]));
    }
}
