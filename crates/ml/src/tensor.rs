//! Dense row-major `f32` matrices.
//!
//! The whole ML stack (GIN subgraph classifier, Adam, BCE) runs on this one
//! type; subgraphs around key-gates are small (tens of nodes), so dense
//! linear algebra is both simple and fast enough.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use almost_ml::tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// He-normal initialisation (as prescribed by the paper's Algorithm 1):
    /// entries ~ N(0, sqrt(2 / fan_in)).
    pub fn he_init(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / rows as f32).sqrt();
        let mut data = Vec::with_capacity(rows * cols);
        // Box–Muller from uniform samples.
        while data.len() < rows * cols {
            let u1: f32 = rng.random::<f32>().max(1e-7);
            let u2: f32 = rng.random();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let row_out = i * other.cols;
                let row_b = k * other.cols;
                for j in 0..other.cols {
                    out.data[row_out + j] += a * other.data[row_b + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Adds a 1×cols row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += row.data[c];
            }
        }
        out
    }

    /// Column-wise mean, producing a 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        for c in 0..self.cols {
            out.data[c] /= self.rows as f32;
        }
        out
    }

    /// Column-wise sum, producing a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = Matrix::from_rows(&[&[10.0, 20.0]]);
        let b = a.add_row_broadcast(&row);
        assert_eq!(b.get(1, 1), 24.0);
        let m = a.mean_rows();
        assert_eq!(m, Matrix::from_rows(&[&[2.0, 3.0]]));
        let s = a.sum_rows();
        assert_eq!(s, Matrix::from_rows(&[&[4.0, 6.0]]));
    }

    #[test]
    fn he_init_statistics() {
        let m = Matrix::he_init(64, 64, 7);
        let mean: f32 = m.data().iter().sum::<f32>() / (64.0 * 64.0);
        let var: f32 = m
            .data()
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / (64.0 * 64.0);
        let expected_var = 2.0 / 64.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - expected_var).abs() < expected_var * 0.3,
            "var {var} vs {expected_var}"
        );
    }

    #[test]
    fn he_init_is_deterministic() {
        assert_eq!(Matrix::he_init(8, 8, 3), Matrix::he_init(8, 8, 3));
        assert_ne!(Matrix::he_init(8, 8, 3), Matrix::he_init(8, 8, 4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c, Matrix::from_rows(&[&[2.5, 0.0]]));
    }
}
