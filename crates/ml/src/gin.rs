//! Graph isomorphism network (GIN) layers and the subgraph classifier used
//! by the OMLA-style attack.
//!
//! OMLA represents the locality around each key-gate as an enclosing
//! subgraph with node features, and classifies the subgraph to predict the
//! key bit. The model here follows that recipe: K rounds of GIN message
//! passing (`H' = MLP(Â H)`, `Â = A + I`), mean-pool readout, and a small
//! MLP head producing a single logit.

use crate::nn::{BoundLinear, Linear};
use crate::tape::{sigmoid, NodeId, Tape};
use crate::tensor::{Matrix, SparseMatrix};
use std::sync::Arc;

/// One input graph: a symmetric CSR adjacency (with self-loops folded in)
/// plus node features and a binary label.
///
/// The adjacency is shared behind an [`Arc`] so cloning a `Graph` (the
/// dataset utilities do) and recording it on a tape (every forward pass
/// does) are both refcount bumps, not structure copies.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `Â = A + I`, n × n, symmetric, stored sparse (AIG localities have
    /// fan-in ≤ 2, so `Â` carries ~3 entries per row).
    pub adj_hat: Arc<SparseMatrix>,
    /// Node features, n × d.
    pub features: Matrix,
    /// The key bit (training target).
    pub label: bool,
}

impl Graph {
    /// Builds a graph from an undirected edge list, folding in self-loops.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `features`' rows.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(usize, usize)],
        features: Matrix,
        label: bool,
    ) -> Self {
        assert_eq!(features.rows(), num_nodes);
        Graph {
            adj_hat: Arc::new(SparseMatrix::adjacency_hat(num_nodes, edges)),
            features,
            label,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

/// The OMLA-style GIN subgraph classifier.
#[derive(Clone, Debug)]
pub struct GinClassifier {
    convs: Vec<(Linear, Linear)>,
    readout: Linear,
    head: Linear,
    input_dim: usize,
}

/// Tape bindings of all model parameters, in [`GinClassifier::parameters`]
/// order.
#[derive(Clone, Debug)]
pub struct BoundModel {
    convs: Vec<(BoundLinear, BoundLinear)>,
    readout: BoundLinear,
    head: BoundLinear,
}

impl BoundModel {
    /// Parameter node ids, in [`GinClassifier::parameters`] order.
    pub fn param_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (l1, l2) in &self.convs {
            out.extend([l1.w, l1.b, l2.w, l2.b]);
        }
        out.extend([self.readout.w, self.readout.b, self.head.w, self.head.b]);
        out
    }
}

impl GinClassifier {
    /// A classifier with `num_layers` GIN rounds of width `hidden` over
    /// `input_dim`-dimensional node features.
    pub fn new(input_dim: usize, hidden: usize, num_layers: usize, seed: u64) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        for k in 0..num_layers {
            let d_in = if k == 0 { input_dim } else { hidden };
            convs.push((
                Linear::new(d_in, hidden, seed.wrapping_add(2 * k as u64 + 1)),
                Linear::new(hidden, hidden, seed.wrapping_add(2 * k as u64 + 2)),
            ));
        }
        GinClassifier {
            convs,
            readout: Linear::new(hidden, hidden, seed.wrapping_add(101)),
            head: Linear::new(hidden, 1, seed.wrapping_add(102)),
            input_dim,
        }
    }

    /// The expected feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// All trainable parameter matrices (stable order).
    pub fn parameters(&self) -> Vec<&Matrix> {
        let mut out = Vec::new();
        for (l1, l2) in &self.convs {
            out.extend([&l1.w, &l1.b, &l2.w, &l2.b]);
        }
        out.extend([&self.readout.w, &self.readout.b, &self.head.w, &self.head.b]);
        out
    }

    /// Mutable access to the parameters (same order as
    /// [`GinClassifier::parameters`]).
    pub fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = Vec::new();
        for (l1, l2) in &mut self.convs {
            out.push(&mut l1.w);
            out.push(&mut l1.b);
            out.push(&mut l2.w);
            out.push(&mut l2.b);
        }
        out.push(&mut self.readout.w);
        out.push(&mut self.readout.b);
        out.push(&mut self.head.w);
        out.push(&mut self.head.b);
        out
    }

    /// Inserts all parameters onto a tape.
    pub fn bind(&self, tape: &mut Tape) -> BoundModel {
        BoundModel {
            convs: self
                .convs
                .iter()
                .map(|(l1, l2)| (l1.bind(tape), l2.bind(tape)))
                .collect(),
            readout: self.readout.bind(tape),
            head: self.head.bind(tape),
        }
    }

    /// Forward pass producing the logit node for one graph, aggregating
    /// neighbourhoods with the sparse [`Tape::spmm`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if the graph's feature width differs from
    /// [`GinClassifier::input_dim`].
    pub fn forward(&self, tape: &mut Tape, bound: &BoundModel, graph: &Graph) -> NodeId {
        assert_eq!(graph.features.cols(), self.input_dim, "feature width");
        let mut h = tape.leaf_copy(&graph.features);
        for (b1, b2) in &bound.convs {
            let agg = tape.spmm(&graph.adj_hat, h);
            h = self.conv_tail(tape, *b1, *b2, agg);
        }
        self.readout_head(tape, bound, h)
    }

    /// Dense-aggregation reference forward pass: materialises `Â` and
    /// multiplies with the O(n²·d) dense kernel. Kept as the baseline the
    /// sparse path is validated against (the parity suite) and timed
    /// against (the `training_perf` harness) — the two produce
    /// bit-identical logits, because CSR rows add the same products in
    /// the same order as a dense row scan.
    ///
    /// # Panics
    ///
    /// Panics if the graph's feature width differs from
    /// [`GinClassifier::input_dim`].
    pub fn forward_dense(&self, tape: &mut Tape, bound: &BoundModel, graph: &Graph) -> NodeId {
        assert_eq!(graph.features.cols(), self.input_dim, "feature width");
        let adj = tape.leaf(graph.adj_hat.to_dense());
        let mut h = tape.leaf_copy(&graph.features);
        for (b1, b2) in &bound.convs {
            let agg = tape.matmul(adj, h);
            h = self.conv_tail(tape, *b1, *b2, agg);
        }
        self.readout_head(tape, bound, h)
    }

    /// Batched forward pass: the graphs are fused into one block-diagonal
    /// union (one spmm per GIN round for the whole minibatch, fatter MLP
    /// matmuls) and the result is a `graphs.len()` × 1 logit column.
    ///
    /// Because every op involved treats rows independently — spmm rows
    /// only reach within their own diagonal block, the MLPs are row-wise,
    /// and pooling is per segment — row `b` of the output is
    /// bit-identical to [`GinClassifier::forward`] on graph `b` alone.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or a feature width differs from
    /// [`GinClassifier::input_dim`].
    pub fn forward_batch(&self, tape: &mut Tape, bound: &BoundModel, graphs: &[&Graph]) -> NodeId {
        let union = Arc::new(SparseMatrix::block_diagonal(
            &graphs
                .iter()
                .map(|g| g.adj_hat.as_ref())
                .collect::<Vec<_>>(),
        ));
        self.forward_union(tape, bound, graphs, |tape, h| tape.spmm(&union, h))
    }

    /// Batched dense-aggregation reference: identical structure to
    /// [`GinClassifier::forward_batch`], but the union operator is
    /// materialised and multiplied with the dense O(n²·d) kernel — the
    /// "before" of the sparse hot path, bit-identical in output.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or a feature width differs from
    /// [`GinClassifier::input_dim`].
    pub fn forward_batch_dense(
        &self,
        tape: &mut Tape,
        bound: &BoundModel,
        graphs: &[&Graph],
    ) -> NodeId {
        let union = SparseMatrix::block_diagonal(
            &graphs
                .iter()
                .map(|g| g.adj_hat.as_ref())
                .collect::<Vec<_>>(),
        );
        let adj = tape.leaf(union.to_dense());
        self.forward_union(tape, bound, graphs, |tape, h| tape.matmul(adj, h))
    }

    /// Shared body of the batched forward passes: concatenated features,
    /// K rounds of `aggregate` + MLP, segment-mean readout, head.
    fn forward_union(
        &self,
        tape: &mut Tape,
        bound: &BoundModel,
        graphs: &[&Graph],
        mut aggregate: impl FnMut(&mut Tape, NodeId) -> NodeId,
    ) -> NodeId {
        assert!(!graphs.is_empty(), "batch must be non-empty");
        for g in graphs {
            assert_eq!(g.features.cols(), self.input_dim, "feature width");
        }
        let feats: Vec<&Matrix> = graphs.iter().map(|g| &g.features).collect();
        let mut h = tape.leaf_concat_rows(&feats);
        for (b1, b2) in &bound.convs {
            let agg = aggregate(tape, h);
            h = self.conv_tail(tape, *b1, *b2, agg);
        }
        let seg_lens: Vec<u32> = graphs.iter().map(|g| g.num_nodes() as u32).collect();
        let pooled = tape.segment_mean_rows(h, &seg_lens);
        let r = Linear::forward(bound.readout, tape, pooled);
        let r = tape.relu(r);
        Linear::forward(bound.head, tape, r)
    }

    /// The two-layer MLP of one GIN round (shared by all forward paths).
    fn conv_tail(&self, tape: &mut Tape, b1: BoundLinear, b2: BoundLinear, agg: NodeId) -> NodeId {
        let z1 = Linear::forward(b1, tape, agg);
        let a1 = tape.relu(z1);
        let z2 = Linear::forward(b2, tape, a1);
        tape.relu(z2)
    }

    /// Mean-pool readout plus MLP head (single-graph forward paths).
    fn readout_head(&self, tape: &mut Tape, bound: &BoundModel, h: NodeId) -> NodeId {
        let pooled = tape.mean_rows(h);
        let r = Linear::forward(bound.readout, tape, pooled);
        let r = tape.relu(r);
        Linear::forward(bound.head, tape, r)
    }

    /// Predicted probability that the key bit is 1, recorded on a caller
    /// supplied tape (which is reset first) so evaluation loops reuse one
    /// workspace instead of allocating per graph.
    pub fn predict_with(&self, tape: &mut Tape, graph: &Graph) -> f32 {
        tape.reset();
        let bound = self.bind(tape);
        let logit = self.forward(tape, &bound, graph);
        sigmoid(tape.value(logit).get(0, 0))
    }

    /// Predicted probability that the key bit is 1.
    pub fn predict(&self, graph: &Graph) -> f32 {
        self.predict_with(&mut Tape::new(), graph)
    }

    /// Predicted probabilities for a whole batch through one
    /// block-diagonal [`GinClassifier::forward_batch`] call — one spmm
    /// per GIN round for the entire batch instead of one per graph.
    ///
    /// Row `b` is bit-identical to [`GinClassifier::predict`] on
    /// `graphs[b]` (the batched forward's row-independence contract), so
    /// accuracies computed from this path match the serial path exactly.
    pub fn predict_probs_batch(&self, graphs: &[&Graph]) -> Vec<f32> {
        if graphs.is_empty() {
            return Vec::new();
        }
        let mut tape = Tape::new();
        let bound = self.bind(&mut tape);
        let logits = self.forward_batch(&mut tape, &bound, graphs);
        let values = tape.value(logits);
        (0..graphs.len())
            .map(|b| sigmoid(values.get(b, 0)))
            .collect()
    }

    /// Classification accuracy over a labelled set (threshold 0.5).
    pub fn accuracy(&self, graphs: &[Graph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let mut tape = Tape::new();
        let correct = graphs
            .iter()
            .filter(|g| (self.predict_with(&mut tape, g) >= 0.5) == g.label)
            .count();
        correct as f64 / graphs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph(label: bool, bias: f32) -> Graph {
        // Two nodes, one edge; features separated by `bias`.
        let features = Matrix::from_rows(&[&[bias, 1.0], &[bias, 0.0]]);
        Graph::from_edges(2, &[(0, 1)], features, label)
    }

    #[test]
    fn forward_is_deterministic() {
        let model = GinClassifier::new(2, 8, 2, 42);
        let g = toy_graph(true, 0.5);
        assert_eq!(model.predict(&g), model.predict(&g));
    }

    #[test]
    fn sparse_and_dense_forward_agree_bitwise() {
        let model = GinClassifier::new(2, 8, 2, 23);
        for bias in [-1.0, 0.0, 0.5, 2.0] {
            let g = toy_graph(bias > 0.0, bias);
            let mut ts = Tape::new();
            let bs = model.bind(&mut ts);
            let ls = model.forward(&mut ts, &bs, &g);
            let mut td = Tape::new();
            let bd = model.bind(&mut td);
            let ld = model.forward_dense(&mut td, &bd, &g);
            assert_eq!(ts.value(ls), td.value(ld));
        }
    }

    #[test]
    fn batched_forward_rows_match_single_graph_forwards() {
        let model = GinClassifier::new(2, 8, 2, 9);
        let graphs = [
            toy_graph(true, 0.4),
            toy_graph(false, -1.2),
            toy_graph(true, 2.0),
        ];
        let refs: Vec<&Graph> = graphs.iter().collect();

        let mut tb = Tape::new();
        let bb = model.bind(&mut tb);
        let logits = model.forward_batch(&mut tb, &bb, &refs);
        assert_eq!((tb.value(logits).rows(), tb.value(logits).cols()), (3, 1));

        let mut td = Tape::new();
        let bd = model.bind(&mut td);
        let dense_logits = model.forward_batch_dense(&mut td, &bd, &refs);
        assert_eq!(
            tb.value(logits),
            td.value(dense_logits),
            "sparse/dense batch parity"
        );

        for (b, g) in graphs.iter().enumerate() {
            let mut t = Tape::new();
            let bound = model.bind(&mut t);
            let single = model.forward(&mut t, &bound, g);
            assert_eq!(
                t.value(single).get(0, 0),
                tb.value(logits).get(b, 0),
                "row {b} of the batch must equal the single-graph forward bitwise"
            );
        }
    }

    #[test]
    fn batched_probabilities_match_serial_predictions_bitwise() {
        let model = GinClassifier::new(2, 8, 2, 31);
        let graphs = [
            toy_graph(true, 0.4),
            toy_graph(false, -1.2),
            toy_graph(true, 2.0),
            toy_graph(false, 0.0),
        ];
        let refs: Vec<&Graph> = graphs.iter().collect();
        let probs = model.predict_probs_batch(&refs);
        assert_eq!(probs.len(), graphs.len());
        for (g, p) in graphs.iter().zip(&probs) {
            assert_eq!(*p, model.predict(g), "batch row must equal serial predict");
        }
        assert!(model.predict_probs_batch(&[]).is_empty());
    }

    #[test]
    fn adjacency_is_sparse_and_symmetric() {
        let g = toy_graph(true, 1.0);
        assert!(g.adj_hat.is_symmetric());
        assert_eq!(g.adj_hat.nnz(), 4); // two self-loops + one edge both ways
    }

    #[test]
    fn predict_with_reuses_one_workspace() {
        let model = GinClassifier::new(2, 8, 2, 42);
        let g = toy_graph(true, 0.5);
        let mut tape = Tape::new();
        let first = model.predict_with(&mut tape, &g);
        let allocs = tape.stats().fresh_buffers;
        for _ in 0..5 {
            assert_eq!(model.predict_with(&mut tape, &g), first);
        }
        assert_eq!(
            tape.stats().fresh_buffers,
            allocs,
            "warm tape allocates nothing"
        );
    }

    #[test]
    fn parameter_count_is_consistent() {
        let model = GinClassifier::new(3, 16, 2, 1);
        let n = model.parameters().len();
        assert_eq!(n, 2 * 4 + 4);
        let mut m = model.clone();
        assert_eq!(m.parameters_mut().len(), n);
        let mut tape = Tape::new();
        assert_eq!(model.bind(&mut tape).param_nodes().len(), n);
    }

    #[test]
    fn untrained_predictions_are_probabilities() {
        let model = GinClassifier::new(2, 8, 2, 7);
        for bias in [-2.0, 0.0, 2.0] {
            let p = model.predict(&toy_graph(false, bias));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn accuracy_on_empty_set_is_zero() {
        let model = GinClassifier::new(2, 4, 1, 3);
        assert_eq!(model.accuracy(&[]), 0.0);
    }
}
