//! Graph isomorphism network (GIN) layers and the subgraph classifier used
//! by the OMLA-style attack.
//!
//! OMLA represents the locality around each key-gate as an enclosing
//! subgraph with node features, and classifies the subgraph to predict the
//! key bit. The model here follows that recipe: K rounds of GIN message
//! passing (`H' = MLP(Â H)`, `Â = A + I`), mean-pool readout, and a small
//! MLP head producing a single logit.

use crate::nn::{BoundLinear, Linear};
use crate::tape::{sigmoid, NodeId, Tape};
use crate::tensor::Matrix;

/// One input graph: a symmetric adjacency (with self-loops folded in) plus
/// node features and a binary label.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `Â = A + I`, n × n.
    pub adj_hat: Matrix,
    /// Node features, n × d.
    pub features: Matrix,
    /// The key bit (training target).
    pub label: bool,
}

impl Graph {
    /// Builds a graph from an undirected edge list, folding in self-loops.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `features`' rows.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(usize, usize)],
        features: Matrix,
        label: bool,
    ) -> Self {
        assert_eq!(features.rows(), num_nodes);
        let mut adj = Matrix::identity(num_nodes);
        for &(u, v) in edges {
            assert!(u < num_nodes && v < num_nodes, "edge out of range");
            adj.set(u, v, 1.0);
            adj.set(v, u, 1.0);
        }
        Graph {
            adj_hat: adj,
            features,
            label,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

/// The OMLA-style GIN subgraph classifier.
#[derive(Clone, Debug)]
pub struct GinClassifier {
    convs: Vec<(Linear, Linear)>,
    readout: Linear,
    head: Linear,
    input_dim: usize,
}

/// Tape bindings of all model parameters, in [`GinClassifier::parameters`]
/// order.
#[derive(Clone, Debug)]
pub struct BoundModel {
    convs: Vec<(BoundLinear, BoundLinear)>,
    readout: BoundLinear,
    head: BoundLinear,
}

impl BoundModel {
    /// Parameter node ids, in [`GinClassifier::parameters`] order.
    pub fn param_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (l1, l2) in &self.convs {
            out.extend([l1.w, l1.b, l2.w, l2.b]);
        }
        out.extend([self.readout.w, self.readout.b, self.head.w, self.head.b]);
        out
    }
}

impl GinClassifier {
    /// A classifier with `num_layers` GIN rounds of width `hidden` over
    /// `input_dim`-dimensional node features.
    pub fn new(input_dim: usize, hidden: usize, num_layers: usize, seed: u64) -> Self {
        let mut convs = Vec::with_capacity(num_layers);
        for k in 0..num_layers {
            let d_in = if k == 0 { input_dim } else { hidden };
            convs.push((
                Linear::new(d_in, hidden, seed.wrapping_add(2 * k as u64 + 1)),
                Linear::new(hidden, hidden, seed.wrapping_add(2 * k as u64 + 2)),
            ));
        }
        GinClassifier {
            convs,
            readout: Linear::new(hidden, hidden, seed.wrapping_add(101)),
            head: Linear::new(hidden, 1, seed.wrapping_add(102)),
            input_dim,
        }
    }

    /// The expected feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// All trainable parameter matrices (stable order).
    pub fn parameters(&self) -> Vec<&Matrix> {
        let mut out = Vec::new();
        for (l1, l2) in &self.convs {
            out.extend([&l1.w, &l1.b, &l2.w, &l2.b]);
        }
        out.extend([&self.readout.w, &self.readout.b, &self.head.w, &self.head.b]);
        out
    }

    /// Mutable access to the parameters (same order as
    /// [`GinClassifier::parameters`]).
    pub fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = Vec::new();
        for (l1, l2) in &mut self.convs {
            out.push(&mut l1.w);
            out.push(&mut l1.b);
            out.push(&mut l2.w);
            out.push(&mut l2.b);
        }
        out.push(&mut self.readout.w);
        out.push(&mut self.readout.b);
        out.push(&mut self.head.w);
        out.push(&mut self.head.b);
        out
    }

    /// Inserts all parameters onto a tape.
    pub fn bind(&self, tape: &mut Tape) -> BoundModel {
        BoundModel {
            convs: self
                .convs
                .iter()
                .map(|(l1, l2)| (l1.bind(tape), l2.bind(tape)))
                .collect(),
            readout: self.readout.bind(tape),
            head: self.head.bind(tape),
        }
    }

    /// Forward pass producing the logit node for one graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph's feature width differs from
    /// [`GinClassifier::input_dim`].
    pub fn forward(&self, tape: &mut Tape, bound: &BoundModel, graph: &Graph) -> NodeId {
        assert_eq!(graph.features.cols(), self.input_dim, "feature width");
        let adj = tape.leaf(graph.adj_hat.clone());
        let mut h = tape.leaf(graph.features.clone());
        for (b1, b2) in &bound.convs {
            let agg = tape.matmul(adj, h);
            let z1 = Linear::forward(*b1, tape, agg);
            let a1 = tape.relu(z1);
            let z2 = Linear::forward(*b2, tape, a1);
            h = tape.relu(z2);
        }
        let pooled = tape.mean_rows(h);
        let r = Linear::forward(bound.readout, tape, pooled);
        let r = tape.relu(r);
        Linear::forward(bound.head, tape, r)
    }

    /// Predicted probability that the key bit is 1.
    pub fn predict(&self, graph: &Graph) -> f32 {
        let mut tape = Tape::new();
        let bound = self.bind(&mut tape);
        let logit = self.forward(&mut tape, &bound, graph);
        sigmoid(tape.value(logit).get(0, 0))
    }

    /// Classification accuracy over a labelled set (threshold 0.5).
    pub fn accuracy(&self, graphs: &[Graph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let correct = graphs
            .iter()
            .filter(|g| (self.predict(g) >= 0.5) == g.label)
            .count();
        correct as f64 / graphs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph(label: bool, bias: f32) -> Graph {
        // Two nodes, one edge; features separated by `bias`.
        let features = Matrix::from_rows(&[&[bias, 1.0], &[bias, 0.0]]);
        Graph::from_edges(2, &[(0, 1)], features, label)
    }

    #[test]
    fn forward_is_deterministic() {
        let model = GinClassifier::new(2, 8, 2, 42);
        let g = toy_graph(true, 0.5);
        assert_eq!(model.predict(&g), model.predict(&g));
    }

    #[test]
    fn parameter_count_is_consistent() {
        let model = GinClassifier::new(3, 16, 2, 1);
        let n = model.parameters().len();
        assert_eq!(n, 2 * 4 + 4);
        let mut m = model.clone();
        assert_eq!(m.parameters_mut().len(), n);
        let mut tape = Tape::new();
        assert_eq!(model.bind(&mut tape).param_nodes().len(), n);
    }

    #[test]
    fn untrained_predictions_are_probabilities() {
        let model = GinClassifier::new(2, 8, 2, 7);
        for bias in [-2.0, 0.0, 2.0] {
            let p = model.predict(&toy_graph(false, bias));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn accuracy_on_empty_set_is_zero() {
        let model = GinClassifier::new(2, 4, 1, 3);
        assert_eq!(model.accuracy(&[]), 0.0);
    }
}
