//! Data-parallel minibatch training loop for the GIN classifier.
//!
//! Every minibatch is split into **fixed-size sub-blocks** of
//! [`PAR_BLOCK`] graphs that are fanned out on the `almost_pool`
//! work-stealing pool. Each block fuses its graphs into one
//! block-diagonal union ([`GinClassifier::forward_batch`]): one spmm per
//! GIN round for the whole block and batch-wide MLP matmuls, instead of
//! a run of tiny per-graph ops. The block partition and the gradient
//! reduction order depend only on the batch layout — never on the worker
//! count — so a run with `ALMOST_JOBS=8` produces bit-identical
//! parameters to a run with `ALMOST_JOBS=1`:
//!
//! - block `i` of a batch always holds the same graph slice and always
//!   computes on its own persistent [`Tape`] (forward + backward over the
//!   block's summed loss, self-contained and scheduling-independent);
//! - block gradients are folded into the shared accumulator **in block
//!   order** on the calling thread after the pool joins.
//!
//! The per-block tapes and gradient buffers persist across batches and
//! epochs, so after the first epoch the **tape workspace** — where all
//! matrix buffers live — allocates nothing (the [`TrainStats`] counters
//! expose this; the release-mode `training_perf` envelope test pins it).
//! A handful of small per-batch `Vec`s remain outside that accounting
//! (the block's union CSR, segment lengths, targets) — O(block) index
//! vectors, not O(n·d) matrix traffic.

use crate::gin::{GinClassifier, Graph};
use crate::optim::Adam;
use crate::tape::Tape;
use crate::tensor::Matrix;
use almost_pool as pool;
use almost_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Mutex;

/// Graphs per parallel gradient sub-block. Fixed (not derived from the
/// worker count) so the reduction tree — and therefore every floating
/// point rounding — is identical whatever `ALMOST_JOBS` says.
pub const PAR_BLOCK: usize = 4;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 1e-2,
            seed: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainStats {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final training-set accuracy.
    pub final_accuracy: f64,
    /// Total tape nodes recorded by the training hot loop.
    pub tape_ops: u64,
    /// Fresh **matrix buffers** the hot loop's tapes had to allocate
    /// (spare-pool misses; small per-batch index/CSR vectors are not
    /// tape-managed and not counted). Grows during the first epoch
    /// (workspace warm-up) and then stays flat — pinned by the
    /// `training_perf` envelope test.
    pub tape_allocs: u64,
}

impl TrainStats {
    fn empty() -> Self {
        TrainStats {
            epoch_losses: Vec::new(),
            final_accuracy: 0.0,
            tape_ops: 0,
            tape_allocs: 0,
        }
    }
}

/// One sub-block's persistent workspace: a recording tape plus the buffer
/// its parameter gradients are copied into for the ordered reduction.
struct BlockState {
    tape: Tape,
    grads: Vec<Matrix>,
}

/// Trains `model` on `graphs` with minibatch Adam; returns per-epoch
/// losses.
///
/// An empty dataset is a no-op (returns zeroed stats).
pub fn train(model: &mut GinClassifier, graphs: &[Graph], config: &TrainConfig) -> TrainStats {
    train_with_callback(model, graphs, config, |_, _| {})
}

/// Like [`train`], but invokes `on_epoch(epoch_index, mean_loss)` after
/// every epoch — the hook Algorithm 1 uses to trigger adversarial
/// augmentation every R epochs.
pub fn train_with_callback(
    model: &mut GinClassifier,
    graphs: &[Graph],
    config: &TrainConfig,
    on_epoch: impl FnMut(usize, f32),
) -> TrainStats {
    train_impl(model, graphs, config, on_epoch, false)
}

/// The dense serial baseline: identical loop structure, but neighbourhood
/// aggregation goes through the O(n²·d) dense matmul
/// ([`GinClassifier::forward_dense`]) and every sub-block runs on the
/// calling thread. Because the two aggregation kernels add the same
/// products in the same order, this reproduces [`train`]'s `epoch_losses`
/// **bit-for-bit** — it exists as the reference the parity suite asserts
/// against and the slow "before" the `training_perf` harness times.
pub fn train_dense_reference(
    model: &mut GinClassifier,
    graphs: &[Graph],
    config: &TrainConfig,
) -> TrainStats {
    train_impl(model, graphs, config, |_, _| {}, true)
}

fn train_impl(
    model: &mut GinClassifier,
    graphs: &[Graph],
    config: &TrainConfig,
    mut on_epoch: impl FnMut(usize, f32),
    dense_serial: bool,
) -> TrainStats {
    if graphs.is_empty() {
        return TrainStats::empty();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adam = Adam::new(config.learning_rate);
    let mut order: Vec<usize> = (0..graphs.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    let batch = config.batch_size.max(1);
    let max_blocks = batch
        .div_ceil(PAR_BLOCK)
        .min(graphs.len().div_ceil(PAR_BLOCK));
    let blocks: Vec<Mutex<BlockState>> = (0..max_blocks)
        .map(|_| {
            Mutex::new(BlockState {
                tape: Tape::new(),
                grads: Vec::new(),
            })
        })
        .collect();
    let mut grad_acc: Vec<Matrix> = model
        .parameters()
        .iter()
        .map(|p| Matrix::zeros(p.rows(), p.cols()))
        .collect();

    // Latched once: the per-epoch instrumentation below must cost the
    // disabled path nothing beyond this one load (the overhead envelope
    // test pins the disabled hot loop to zero extra allocations).
    let trace_on = telemetry::tracing();
    let _span = if trace_on {
        Some(telemetry::span(telemetry::Scope::Trainer, || {
            format!("train {} graphs x {} epochs", graphs.len(), config.epochs)
        }))
    } else {
        None
    };
    let mut last_tape = (0u64, 0u64);

    for epoch in 0..config.epochs {
        let epoch_start = if trace_on {
            Some(telemetry::clock::now_us())
        } else {
            None
        };
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let model_ref: &GinClassifier = model;
            let run_block = |i: usize, blk: &[usize]| -> f32 {
                let mut state = blocks[i].lock().expect("block lock");
                let state = &mut *state;
                let tape = &mut state.tape;
                tape.reset();
                let bound = model_ref.bind(tape);
                let block_graphs: Vec<&Graph> = blk.iter().map(|&gi| &graphs[gi]).collect();
                let logits = if dense_serial {
                    model_ref.forward_batch_dense(tape, &bound, &block_graphs)
                } else {
                    model_ref.forward_batch(tape, &bound, &block_graphs)
                };
                let targets: Vec<f32> = block_graphs.iter().map(|g| g.label as u8 as f32).collect();
                let total = tape.bce_with_logits_batch(logits, &targets);
                tape.backward(total);
                // Copy the block's parameter gradients out so the tape is
                // free for the next batch; the buffers persist.
                if state.grads.is_empty() {
                    state.grads = model_ref
                        .parameters()
                        .iter()
                        .map(|p| Matrix::zeros(p.rows(), p.cols()))
                        .collect();
                }
                for (slot, &node) in state.grads.iter_mut().zip(&bound.param_nodes()) {
                    match tape.grad(node) {
                        Some(g) => slot.copy_from(g),
                        None => slot.fill(0.0),
                    }
                }
                tape.value(total).get(0, 0)
            };

            let jobs: Vec<&[usize]> = chunk.chunks(PAR_BLOCK).collect();
            let used_blocks = jobs.len();
            let block_losses: Vec<f32> = if dense_serial {
                jobs.into_iter()
                    .enumerate()
                    .map(|(i, blk)| run_block(i, blk))
                    .collect()
            } else {
                pool::map_indexed(jobs, run_block)
            };

            // Ordered reduction: block 0, block 1, … — the association is
            // fixed by the batch layout, not the scheduling.
            let inv = 1.0 / chunk.len() as f32;
            for m in grad_acc.iter_mut() {
                m.fill(0.0);
            }
            for state in blocks.iter().take(used_blocks) {
                let state = state.lock().expect("block lock");
                for (acc, g) in grad_acc.iter_mut().zip(&state.grads) {
                    acc.add_scaled(g, inv);
                }
            }
            epoch_loss += block_losses.iter().sum::<f32>() * inv;
            batches += 1;

            let grad_refs: Vec<&Matrix> = grad_acc.iter().collect();
            adam.step(&mut model.parameters_mut(), &grad_refs);
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        epoch_losses.push(mean_loss);
        if let Some(start) = epoch_start {
            let (mut ops, mut allocs) = (0u64, 0u64);
            for state in &blocks {
                let stats = state.lock().expect("block lock").tape.stats();
                ops += stats.nodes_recorded;
                allocs += stats.fresh_buffers;
            }
            telemetry::trace(|| telemetry::EventKind::TrainEpoch {
                epoch: epoch as u32,
                loss: f64::from(mean_loss),
                wall_us: telemetry::clock::now_us().saturating_sub(start),
                tape_ops: ops - last_tape.0,
                tape_allocs: allocs - last_tape.1,
            });
            last_tape = (ops, allocs);
        }
        on_epoch(epoch, mean_loss);
    }

    let final_accuracy = model.accuracy(graphs);
    let (mut tape_ops, mut tape_allocs) = (0u64, 0u64);
    for state in &blocks {
        let stats = state.lock().expect("block lock").tape.stats();
        tape_ops += stats.nodes_recorded;
        tape_allocs += stats.fresh_buffers;
    }
    TrainStats {
        epoch_losses,
        final_accuracy,
        tape_ops,
        tape_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Builds a synthetic dataset where the label is linearly decodable
    /// from a node feature.
    fn separable_dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.random_bool(0.5);
                let signal = if label { 1.0 } else { -1.0 };
                let noise: Vec<f32> = (0..3).map(|_| (rng.random::<f32>() - 0.5) * 0.2).collect();
                let f = Matrix::from_rows(&[
                    &[signal + noise[0], 1.0],
                    &[signal + noise[1], 0.0],
                    &[signal + noise[2], 0.5],
                ]);
                Graph::from_edges(3, &[(0, 1), (1, 2)], f, label)
            })
            .collect()
    }

    #[test]
    fn learns_a_separable_problem() {
        let data = separable_dataset(80, 5);
        let mut model = GinClassifier::new(2, 8, 2, 13);
        let before = model.accuracy(&data);
        let stats = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                learning_rate: 5e-3,
                seed: 1,
            },
        );
        assert!(
            stats.final_accuracy > 0.95,
            "expected near-perfect accuracy, got {} (before {before})",
            stats.final_accuracy
        );
        let first = stats.epoch_losses.first().copied().expect("epochs ran");
        let last = stats.epoch_losses.last().copied().expect("epochs ran");
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }

    #[test]
    fn sparse_parallel_training_matches_the_dense_serial_reference() {
        let data = separable_dataset(40, 21);
        let config = TrainConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 9,
        };
        let mut sparse_model = GinClassifier::new(2, 8, 2, 31);
        let mut dense_model = sparse_model.clone();
        let sparse = train(&mut sparse_model, &data, &config);
        let dense = train_dense_reference(&mut dense_model, &data, &config);
        assert_eq!(
            sparse.epoch_losses, dense.epoch_losses,
            "sparse aggregation reproduces the dense reference bit-for-bit"
        );
        for (p, q) in sparse_model
            .parameters()
            .iter()
            .zip(dense_model.parameters())
        {
            assert_eq!(*p, q, "trained parameters are bit-identical too");
        }
    }

    #[test]
    fn hot_loop_stops_allocating_after_warm_up() {
        let data = separable_dataset(32, 7);
        let config = |epochs| TrainConfig {
            epochs,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 3,
        };
        let short = train(&mut GinClassifier::new(2, 8, 2, 5), &data, &config(2));
        let long = train(&mut GinClassifier::new(2, 8, 2, 5), &data, &config(8));
        assert_eq!(
            short.tape_allocs, long.tape_allocs,
            "epochs after the first must reuse the warm workspace"
        );
        assert_eq!(
            long.tape_ops,
            4 * short.tape_ops,
            "op count scales with epochs"
        );
    }

    #[test]
    fn shuffled_labels_stay_near_chance() {
        let mut data = separable_dataset(60, 6);
        // Destroy the signal: random labels.
        let mut rng = StdRng::seed_from_u64(77);
        for g in &mut data {
            g.label = rng.random_bool(0.5);
        }
        let mut model = GinClassifier::new(2, 8, 2, 17);
        let stats = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 8,
                batch_size: 16,
                learning_rate: 5e-3,
                seed: 2,
            },
        );
        // Training accuracy may exceed chance by memorisation, but a
        // held-out set cannot: evaluate on fresh shuffled data.
        let mut holdout = separable_dataset(60, 99);
        for g in &mut holdout {
            g.label = rng.random_bool(0.5);
        }
        let acc = model.accuracy(&holdout);
        assert!(
            (0.25..=0.75).contains(&acc),
            "held-out accuracy {acc} should hover around 0.5"
        );
        let _ = stats;
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut model = GinClassifier::new(2, 4, 1, 3);
        let stats = train(&mut model, &[], &TrainConfig::default());
        assert!(stats.epoch_losses.is_empty());
        assert_eq!(stats.tape_ops, 0);
    }

    #[test]
    fn callback_fires_every_epoch() {
        let data = separable_dataset(20, 8);
        let mut model = GinClassifier::new(2, 4, 1, 3);
        let mut calls = Vec::new();
        train_with_callback(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 5,
                batch_size: 8,
                learning_rate: 1e-2,
                seed: 3,
            },
            |e, _| calls.push(e),
        );
        assert_eq!(calls, vec![0, 1, 2, 3, 4]);
    }
}
