//! Minibatch training loop for the GIN classifier.

use crate::gin::{GinClassifier, Graph};
use crate::optim::Adam;
use crate::tape::Tape;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 32,
            learning_rate: 1e-2,
            seed: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainStats {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final training-set accuracy.
    pub final_accuracy: f64,
}

/// Trains `model` on `graphs` with minibatch Adam; returns per-epoch
/// losses.
///
/// An empty dataset is a no-op (returns zeroed stats).
pub fn train(model: &mut GinClassifier, graphs: &[Graph], config: &TrainConfig) -> TrainStats {
    train_with_callback(model, graphs, config, |_, _| {})
}

/// Like [`train`], but invokes `on_epoch(epoch_index, mean_loss)` after
/// every epoch — the hook Algorithm 1 uses to trigger adversarial
/// augmentation every R epochs.
pub fn train_with_callback(
    model: &mut GinClassifier,
    graphs: &[Graph],
    config: &TrainConfig,
    mut on_epoch: impl FnMut(usize, f32),
) -> TrainStats {
    if graphs.is_empty() {
        return TrainStats {
            epoch_losses: Vec::new(),
            final_accuracy: 0.0,
        };
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adam = Adam::new(config.learning_rate);
    let mut order: Vec<usize> = (0..graphs.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let mut tape = Tape::new();
            let bound = model.bind(&mut tape);
            let mut loss_nodes = Vec::with_capacity(chunk.len());
            for &gi in chunk {
                let g = &graphs[gi];
                let logit = model.forward(&mut tape, &bound, g);
                loss_nodes.push(tape.bce_with_logits(logit, g.label as u8 as f32));
            }
            let mut total = loss_nodes[0];
            for &l in &loss_nodes[1..] {
                total = tape.add(total, l);
            }
            let mean = tape.scale(total, 1.0 / chunk.len() as f32);
            tape.backward(mean);
            epoch_loss += tape.value(mean).get(0, 0);
            batches += 1;

            let param_nodes = bound.param_nodes();
            let zero_shapes: Vec<Matrix> = model
                .parameters()
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            let grads: Vec<Matrix> = param_nodes
                .iter()
                .zip(zero_shapes)
                .map(|(&n, zero)| tape.grad(n).cloned().unwrap_or(zero))
                .collect();
            let grad_refs: Vec<&Matrix> = grads.iter().collect();
            let mut params = model.parameters_mut();
            adam.step(&mut params, &grad_refs);
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        epoch_losses.push(mean_loss);
        on_epoch(epoch, mean_loss);
    }

    let final_accuracy = model.accuracy(graphs);
    TrainStats {
        epoch_losses,
        final_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Builds a synthetic dataset where the label is linearly decodable
    /// from a node feature.
    fn separable_dataset(n: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let label = rng.random_bool(0.5);
                let signal = if label { 1.0 } else { -1.0 };
                let noise: Vec<f32> = (0..3).map(|_| (rng.random::<f32>() - 0.5) * 0.2).collect();
                let f = Matrix::from_rows(&[
                    &[signal + noise[0], 1.0],
                    &[signal + noise[1], 0.0],
                    &[signal + noise[2], 0.5],
                ]);
                Graph::from_edges(3, &[(0, 1), (1, 2)], f, label)
            })
            .collect()
    }

    #[test]
    fn learns_a_separable_problem() {
        let data = separable_dataset(80, 5);
        let mut model = GinClassifier::new(2, 8, 2, 13);
        let before = model.accuracy(&data);
        let stats = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 40,
                batch_size: 16,
                learning_rate: 5e-3,
                seed: 1,
            },
        );
        assert!(
            stats.final_accuracy > 0.95,
            "expected near-perfect accuracy, got {} (before {before})",
            stats.final_accuracy
        );
        let first = stats.epoch_losses.first().copied().expect("epochs ran");
        let last = stats.epoch_losses.last().copied().expect("epochs ran");
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }

    #[test]
    fn shuffled_labels_stay_near_chance() {
        let mut data = separable_dataset(60, 6);
        // Destroy the signal: random labels.
        let mut rng = StdRng::seed_from_u64(77);
        for g in &mut data {
            g.label = rng.random_bool(0.5);
        }
        let mut model = GinClassifier::new(2, 8, 2, 17);
        let stats = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 8,
                batch_size: 16,
                learning_rate: 5e-3,
                seed: 2,
            },
        );
        // Training accuracy may exceed chance by memorisation, but a
        // held-out set cannot: evaluate on fresh shuffled data.
        let mut holdout = separable_dataset(60, 99);
        for g in &mut holdout {
            g.label = rng.random_bool(0.5);
        }
        let acc = model.accuracy(&holdout);
        assert!(
            (0.25..=0.75).contains(&acc),
            "held-out accuracy {acc} should hover around 0.5"
        );
        let _ = stats;
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut model = GinClassifier::new(2, 4, 1, 3);
        let stats = train(&mut model, &[], &TrainConfig::default());
        assert!(stats.epoch_losses.is_empty());
    }

    #[test]
    fn callback_fires_every_epoch() {
        let data = separable_dataset(20, 8);
        let mut model = GinClassifier::new(2, 4, 1, 3);
        let mut calls = Vec::new();
        train_with_callback(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 5,
                batch_size: 8,
                learning_rate: 1e-2,
                seed: 3,
            },
            |e, _| calls.push(e),
        );
        assert_eq!(calls, vec![0, 1, 2, 3, 4]);
    }
}
