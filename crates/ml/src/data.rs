//! Dataset utilities: splits and class statistics.

use crate::gin::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits indices into (train, validation) with the given train fraction —
/// the paper uses a 9:1 split.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `(0, 1]`.
pub fn train_val_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        train_fraction > 0.0 && train_fraction <= 1.0,
        "train fraction must be in (0, 1]"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let cut = ((n as f64) * train_fraction).round() as usize;
    let cut = cut.min(n);
    let (train, val) = idx.split_at(cut);
    (train.to_vec(), val.to_vec())
}

/// Fraction of positive labels in a dataset.
pub fn positive_fraction(graphs: &[Graph]) -> f64 {
    if graphs.is_empty() {
        return 0.0;
    }
    graphs.iter().filter(|g| g.label).count() as f64 / graphs.len() as f64
}

/// Selects graphs by indices.
pub fn select(graphs: &[Graph], indices: &[usize]) -> Vec<Graph> {
    indices.iter().map(|&i| graphs[i].clone()).collect()
}

/// Signal probability from simulation popcounts: 1-bits observed over
/// patterns simulated. The node-feature normalisation convention shared
/// by every dataset builder that feeds functional signatures into a
/// model (OMLA's signature-augmented localities).
pub fn signal_probability(ones: u64, patterns: u64) -> f32 {
    if patterns == 0 {
        return 0.5; // no evidence: maximum-uncertainty neutral value
    }
    ones as f32 / patterns as f32
}

/// Switching activity `2p(1-p)` of a signal with 1-probability `p`: the
/// probability two independent samples differ — 0 at the constants,
/// maximal at p = 0.5.
pub fn switching_activity(p: f32) -> f32 {
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn split_covers_everything_once() {
        let (train, val) = train_val_split(100, 0.9, 1);
        assert_eq!(train.len(), 90);
        assert_eq!(val.len(), 10);
        let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(train_val_split(50, 0.8, 7), train_val_split(50, 0.8, 7));
    }

    #[test]
    fn signal_statistics_behave_at_the_extremes() {
        assert_eq!(signal_probability(0, 256), 0.0);
        assert_eq!(signal_probability(256, 256), 1.0);
        assert_eq!(signal_probability(64, 256), 0.25);
        assert_eq!(signal_probability(0, 0), 0.5);
        assert_eq!(switching_activity(0.0), 0.0);
        assert_eq!(switching_activity(1.0), 0.0);
        assert_eq!(switching_activity(0.5), 0.5);
    }

    #[test]
    fn positive_fraction_counts() {
        let g = |label| Graph::from_edges(1, &[], Matrix::zeros(1, 2), label);
        let data = vec![g(true), g(false), g(true), g(true)];
        assert_eq!(positive_fraction(&data), 0.75);
        assert_eq!(positive_fraction(&[]), 0.0);
    }
}
