//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records an expression DAG as operations execute (eager
//! forward), then [`Tape::backward`] walks it in reverse, accumulating
//! gradients. Exactly the op set the OMLA-style GIN classifier needs is
//! provided — including the sparse aggregation [`Tape::spmm`] — and every
//! op's gradient is validated against finite differences in the tests.
//!
//! # Zero-clone backward, recycled buffers
//!
//! The tape is built for a training loop that replays thousands of small
//! graphs per epoch, so the hot path avoids allocation instead of relying
//! on the allocator being fast:
//!
//! - Storage is struct-of-arrays (`ops` / `values` / `grads`), so the
//!   backward walk borrows the op being differentiated while mutating the
//!   gradient slots of its operands — no per-step `Op` clone, and the
//!   upstream gradient is read in place via a `split_at_mut` around the
//!   current node (operands always precede their result).
//! - Gradients accumulate **in place**: each backward rule adds its
//!   contribution directly into the operand's (lazily zero-initialised)
//!   gradient slot through the accumulating kernels of
//!   [`crate::tensor`], never materialising an intermediate gradient
//!   matrix (not even the transposes of the matmul rule).
//! - [`Tape::reset`] recycles every value and gradient buffer into a
//!   spare-buffer pool that the next recording draws from, so a tape
//!   reused across minibatches stops allocating entirely after warm-up.
//!   [`Tape::stats`] exposes lifetime counters ([`TapeStats`]) that the
//!   `training_perf` envelope test pins.

use crate::tensor::{Matrix, SparseMatrix};
use std::sync::Arc;

/// Handle to a value on a [`Tape`].
pub type NodeId = usize;

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    /// Sparse aggregation `Â × h` with a *symmetric* CSR operator: the
    /// backward pass reuses the same matrix (`Âᵀ = Â`), so no transpose
    /// is ever materialised.
    Spmm(Arc<SparseMatrix>, NodeId),
    Add(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Relu(NodeId),
    MeanRows(NodeId),
    /// Per-segment row mean: row `b` of the output is the mean of the
    /// input rows in segment `b` (consecutive; lengths stored). The
    /// pooled readout of a minibatch of concatenated graphs.
    SegmentMeanRows(NodeId, Vec<u32>),
    Scale(NodeId, f32),
    /// Binary cross-entropy with logits against a constant target;
    /// produces a 1×1 loss.
    BceWithLogits(NodeId, f32),
    /// Summed binary cross-entropy of a B×1 logit column against
    /// per-row constant targets; produces a 1×1 loss.
    BceWithLogitsBatch(NodeId, Vec<f32>),
}

/// Lifetime workspace counters of a [`Tape`]; cumulative across
/// [`Tape::reset`] calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TapeStats {
    /// Nodes recorded over the tape's lifetime.
    pub nodes_recorded: u64,
    /// Buffers created because the spare pool was empty. A reused tape
    /// stops incrementing this after its first few recordings — the
    /// allocation-free-hot-loop property the release envelope test pins.
    pub fresh_buffers: u64,
}

/// A gradient tape; see the [module documentation](self).
///
/// # Example
///
/// ```
/// use almost_ml::tape::Tape;
/// use almost_ml::tensor::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_rows(&[&[2.0]]));
/// let y = t.scale(x, 3.0);
/// let loss = t.bce_with_logits(y, 1.0);
/// t.backward(loss);
/// // d/dx [softplus(3x) - 3x] = 3 (sigmoid(3x) - 1)
/// let g = t.grad(x).expect("gradient exists");
/// assert!(g.get(0, 0) < 0.0);
/// ```
#[derive(Default)]
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Matrix>,
    grads: Vec<Option<Matrix>>,
    /// Recycled flat buffers, refilled by [`Tape::reset`].
    spare: Vec<Vec<f32>>,
    stats: TapeStats,
}

/// Pops a spare buffer (or allocates one) and shapes it into a zeroed
/// `rows × cols` matrix. Free function so `backward` can call it while
/// `self`'s other fields are borrowed.
fn alloc_zeroed(
    spare: &mut Vec<Vec<f32>>,
    stats: &mut TapeStats,
    rows: usize,
    cols: usize,
) -> Matrix {
    let data = match spare.pop() {
        Some(mut buf) => {
            buf.clear();
            buf.resize(rows * cols, 0.0);
            buf
        }
        None => {
            stats.fresh_buffers += 1;
            vec![0.0; rows * cols]
        }
    };
    Matrix::from_vec(rows, cols, data)
}

/// Returns the operand's gradient slot, zero-initialising it on first use.
fn grad_slot<'a>(
    slot: &'a mut Option<Matrix>,
    spare: &mut Vec<Vec<f32>>,
    stats: &mut TapeStats,
    rows: usize,
    cols: usize,
) -> &'a mut Matrix {
    slot.get_or_insert_with(|| alloc_zeroed(spare, stats, rows, cols))
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clears the recording but keeps every buffer: values and gradients
    /// are returned to the spare pool for the next recording to reuse.
    pub fn reset(&mut self) {
        self.ops.clear();
        for m in self.values.drain(..) {
            self.spare.push(m.into_data());
        }
        for m in self.grads.drain(..).flatten() {
            self.spare.push(m.into_data());
        }
    }

    /// Lifetime workspace counters (cumulative across [`Tape::reset`]).
    pub fn stats(&self) -> TapeStats {
        self.stats
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.ops.push(op);
        self.values.push(value);
        self.grads.push(None);
        self.stats.nodes_recorded += 1;
        self.values.len() - 1
    }

    fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        alloc_zeroed(&mut self.spare, &mut self.stats, rows, cols)
    }

    /// Pops a cleared spare buffer (capacity kept, length 0) for ops that
    /// overwrite every entry — no zero-fill double-touch.
    fn take_buf(&mut self) -> Vec<f32> {
        match self.spare.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.stats.fresh_buffers += 1;
                Vec::new()
            }
        }
    }

    /// Inserts an input/parameter value, taking ownership (its buffer
    /// joins the recycling pool on [`Tape::reset`]).
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Inserts an input/parameter value by copying it into a recycled
    /// buffer — the zero-churn way to re-bind model parameters on a
    /// reused tape every minibatch.
    pub fn leaf_copy(&mut self, value: &Matrix) -> NodeId {
        let mut buf = self.take_buf();
        buf.extend_from_slice(value.data());
        let m = Matrix::from_vec(value.rows(), value.cols(), buf);
        self.push(m, Op::Leaf)
    }

    /// Inserts a leaf that vertically concatenates `parts` (equal column
    /// counts) into one matrix — how a minibatch of graphs' features
    /// become one input, without an intermediate allocation.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the column counts disagree.
    pub fn leaf_concat_rows(&mut self, parts: &[&Matrix]) -> NodeId {
        let cols = parts.first().expect("at least one part").cols();
        let mut rows = 0;
        let mut buf = self.take_buf();
        for p in parts {
            assert_eq!(p.cols(), cols, "column counts must agree");
            rows += p.rows();
            buf.extend_from_slice(p.data());
        }
        let m = Matrix::from_vec(rows, cols, buf);
        self.push(m, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.values[id]
    }

    /// The accumulated gradient of a node (after [`Tape::backward`]).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.grads[id].as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut out = self.alloc(self.values[a].rows(), self.values[b].cols());
        self.values[a].matmul_acc_into(&self.values[b], &mut out);
        self.push(out, Op::MatMul(a, b))
    }

    /// Sparse aggregation `adj × h` where `adj` is a **symmetric** CSR
    /// matrix (e.g. `Â = A + I` of an undirected graph). The gradient is
    /// `Âᵀ × g`, and symmetry lets the backward pass reuse `adj` itself.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch; debug builds also assert symmetry.
    pub fn spmm(&mut self, adj: &Arc<SparseMatrix>, h: NodeId) -> NodeId {
        debug_assert!(
            adj.is_symmetric(),
            "Tape::spmm requires a symmetric operator (backward reuses it as its own transpose)"
        );
        let mut out = self.alloc(adj.rows(), self.values[h].cols());
        adj.spmm_acc_into(&self.values[h], &mut out);
        self.push(out, Op::Spmm(Arc::clone(adj), h))
    }

    /// Elementwise sum (same shapes).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.values[a], &self.values[b]);
        assert_eq!((va.rows(), va.cols()), (vb.rows(), vb.cols()));
        let mut buf = self.take_buf();
        let (va, vb) = (&self.values[a], &self.values[b]);
        buf.extend(va.data().iter().zip(vb.data()).map(|(&x, &y)| x + y));
        let out = Matrix::from_vec(va.rows(), va.cols(), buf);
        self.push(out, Op::Add(a, b))
    }

    /// Adds a 1×cols bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1 × cols(a)`.
    pub fn add_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (va, vr) = (&self.values[a], &self.values[row]);
        assert_eq!(vr.rows(), 1);
        assert_eq!(vr.cols(), va.cols());
        let mut buf = self.take_buf();
        let (va, vr) = (&self.values[a], &self.values[row]);
        let cols = va.cols();
        for a_row in va.data().chunks_exact(cols) {
            buf.extend(a_row.iter().zip(vr.data()).map(|(&x, &b)| x + b));
        }
        let out = Matrix::from_vec(va.rows(), va.cols(), buf);
        self.push(out, Op::AddRowBroadcast(a, row))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut buf = self.take_buf();
        let va = &self.values[a];
        buf.extend(va.data().iter().map(|&x| x.max(0.0)));
        let out = Matrix::from_vec(va.rows(), va.cols(), buf);
        self.push(out, Op::Relu(a))
    }

    /// Column-wise mean producing a 1×cols row (graph readout pooling).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.values[a];
        let mut out = self.alloc(1, va.cols());
        let va = &self.values[a];
        let cols = va.cols();
        for a_row in va.data().chunks_exact(cols) {
            for (o, &x) in out.data_mut().iter_mut().zip(a_row) {
                *o += x;
            }
        }
        let n = va.rows().max(1) as f32;
        for o in out.data_mut() {
            *o /= n;
        }
        self.push(out, Op::MeanRows(a))
    }

    /// Per-segment row mean: the rows of `a` are split into consecutive
    /// segments of the given lengths, and row `b` of the result is the
    /// mean of segment `b` — the batched readout pooling (each segment is
    /// one graph of a concatenated minibatch). Row `b`'s sum runs over
    /// its segment rows ascending, exactly like [`Tape::mean_rows`] on
    /// that graph alone.
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not cover the rows of `a` exactly, or if
    /// a segment is empty.
    pub fn segment_mean_rows(&mut self, a: NodeId, seg_lens: &[u32]) -> NodeId {
        let va = &self.values[a];
        assert_eq!(
            seg_lens.iter().map(|&l| l as usize).sum::<usize>(),
            va.rows(),
            "segment lengths must cover the rows"
        );
        let cols = va.cols();
        let mut out = alloc_zeroed(&mut self.spare, &mut self.stats, seg_lens.len(), cols);
        let va = &self.values[a];
        let mut start = 0usize;
        for (b, &len) in seg_lens.iter().enumerate() {
            let len = len as usize;
            assert!(len > 0, "empty segment");
            let out_row = &mut out.data_mut()[b * cols..][..cols];
            for a_row in va.data()[start * cols..(start + len) * cols].chunks_exact(cols) {
                for (o, &x) in out_row.iter_mut().zip(a_row) {
                    *o += x;
                }
            }
            for o in out_row.iter_mut() {
                *o /= len as f32;
            }
            start += len;
        }
        self.push(out, Op::SegmentMeanRows(a, seg_lens.to_vec()))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let mut buf = self.take_buf();
        let va = &self.values[a];
        buf.extend(va.data().iter().map(|&x| x * s));
        let out = Matrix::from_vec(va.rows(), va.cols(), buf);
        self.push(out, Op::Scale(a, s))
    }

    /// Binary cross-entropy with logits: `softplus(z) − target·z`, where
    /// `z` is the single entry of a 1×1 node. Numerically stable.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not 1×1.
    pub fn bce_with_logits(&mut self, a: NodeId, target: f32) -> NodeId {
        let z = {
            let m = &self.values[a];
            assert_eq!((m.rows(), m.cols()), (1, 1), "logit must be a scalar");
            m.get(0, 0)
        };
        let mut out = self.alloc(1, 1);
        out.set(0, 0, softplus(z) - target * z);
        self.push(out, Op::BceWithLogits(a, target))
    }

    /// **Summed** binary cross-entropy with logits over a B×1 logit
    /// column: `Σ_b softplus(z_b) − t_b·z_b`, a 1×1 node. The sum runs
    /// over rows ascending, matching a left fold of [`Tape::add`] over
    /// per-row [`Tape::bce_with_logits`] nodes bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `targets.len() × 1`.
    pub fn bce_with_logits_batch(&mut self, a: NodeId, targets: &[f32]) -> NodeId {
        let sum = {
            let m = &self.values[a];
            assert_eq!(
                (m.rows(), m.cols()),
                (targets.len(), 1),
                "logits must be one column matching the targets"
            );
            let mut acc = 0.0f32;
            for (&z, &t) in m.data().iter().zip(targets) {
                acc += softplus(z) - t * z;
            }
            acc
        };
        let mut out = self.alloc(1, 1);
        out.set(0, 0, sum);
        self.push(out, Op::BceWithLogitsBatch(a, targets.to_vec()))
    }

    /// Runs backpropagation from `root` (which must be 1×1).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a scalar node.
    pub fn backward(&mut self, root: NodeId) {
        {
            let m = &self.values[root];
            assert_eq!((m.rows(), m.cols()), (1, 1), "backward root must be scalar");
        }
        // Recycle gradients of any previous backward pass on this
        // recording.
        for i in 0..self.grads.len() {
            if let Some(m) = self.grads[i].take() {
                self.spare.push(m.into_data());
            }
        }
        let mut seed = self.alloc(1, 1);
        seed.set(0, 0, 1.0);
        self.grads[root] = Some(seed);

        // Split borrows: ops/values are read-only during the walk, grads
        // and the spare pool are mutated.
        let Tape {
            ops,
            values,
            grads,
            spare,
            stats,
        } = self;

        for id in (0..ops.len()).rev() {
            if grads[id].is_none() {
                continue;
            }
            // Operands of node `id` always have smaller ids, so the
            // upstream gradient can be read from the upper half while the
            // operand slots in the lower half are mutated.
            let (lower, upper) = grads.split_at_mut(id);
            let g = upper[0].as_ref().expect("checked above");
            match &ops[id] {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (va, vb) = (&values[*a], &values[*b]);
                    // ∂/∂a = g × bᵀ. Transposing `b` into a recycled
                    // scratch buffer keeps the heavy loop in the
                    // dependency-free axpy form (the dot-product kernel
                    // `matmul_a_bt_acc_into` is ~2x slower — its k-sum is
                    // a serial chain); the O(k·n) transpose is noise next
                    // to the O(m·k·n) product, and the write-only extend
                    // skips the zero-fill double-touch.
                    let mut buf = match spare.pop() {
                        Some(mut b) => {
                            b.clear();
                            b
                        }
                        None => {
                            stats.fresh_buffers += 1;
                            Vec::new()
                        }
                    };
                    vb.transpose_extend(&mut buf);
                    let bt = Matrix::from_vec(vb.cols(), vb.rows(), buf);
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), va.cols());
                    g.matmul_acc_into(&bt, ga);
                    spare.push(bt.into_data());
                    // ∂/∂b = aᵀ × g, accumulated without the transpose.
                    let gb = grad_slot(&mut lower[*b], spare, stats, vb.rows(), vb.cols());
                    va.matmul_at_acc_into(g, gb);
                }
                Op::Spmm(adj, h) => {
                    let vh = &values[*h];
                    // ∂/∂h = Âᵀ × g = Â × g (symmetric operator).
                    let gh = grad_slot(&mut lower[*h], spare, stats, vh.rows(), vh.cols());
                    adj.spmm_acc_into(g, gh);
                }
                Op::Add(a, b) => {
                    for operand in [*a, *b] {
                        let v = &values[operand];
                        let slot = grad_slot(&mut lower[operand], spare, stats, v.rows(), v.cols());
                        slot.add_scaled(g, 1.0);
                    }
                }
                Op::AddRowBroadcast(a, row) => {
                    let va = &values[*a];
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), va.cols());
                    ga.add_scaled(g, 1.0);
                    let cols = va.cols();
                    let grow = grad_slot(&mut lower[*row], spare, stats, 1, cols);
                    for g_row in g.data().chunks_exact(cols) {
                        for (o, &x) in grow.data_mut().iter_mut().zip(g_row) {
                            *o += x;
                        }
                    }
                }
                Op::Relu(a) => {
                    let va = &values[*a];
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), va.cols());
                    for ((o, &x), &gi) in ga.data_mut().iter_mut().zip(va.data()).zip(g.data()) {
                        if x > 0.0 {
                            *o += gi;
                        }
                    }
                }
                Op::MeanRows(a) => {
                    let va = &values[*a];
                    let n = va.rows().max(1) as f32;
                    let cols = va.cols();
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), cols);
                    for o_row in ga.data_mut().chunks_exact_mut(cols) {
                        for (o, &gi) in o_row.iter_mut().zip(g.data()) {
                            *o += gi / n;
                        }
                    }
                }
                Op::SegmentMeanRows(a, seg_lens) => {
                    let va = &values[*a];
                    let cols = va.cols();
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), cols);
                    let mut rows = ga.data_mut().chunks_exact_mut(cols);
                    for (b, &len) in seg_lens.iter().enumerate() {
                        let g_row = &g.data()[b * cols..][..cols];
                        let n = len as f32;
                        for o_row in (&mut rows).take(len as usize) {
                            for (o, &gi) in o_row.iter_mut().zip(g_row) {
                                *o += gi / n;
                            }
                        }
                    }
                }
                Op::Scale(a, s) => {
                    let va = &values[*a];
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), va.cols());
                    ga.add_scaled(g, *s);
                }
                Op::BceWithLogits(a, target) => {
                    let z = values[*a].get(0, 0);
                    let dz = sigmoid(z) - target;
                    let ga = grad_slot(&mut lower[*a], spare, stats, 1, 1);
                    let upstream = g.get(0, 0);
                    ga.data_mut()[0] += dz * upstream;
                }
                Op::BceWithLogitsBatch(a, targets) => {
                    let va = &values[*a];
                    let upstream = g.get(0, 0);
                    let ga = grad_slot(&mut lower[*a], spare, stats, va.rows(), 1);
                    let va = &values[*a];
                    for ((o, &z), &t) in ga.data_mut().iter_mut().zip(va.data()).zip(targets) {
                        *o += (sigmoid(z) - t) * upstream;
                    }
                }
            }
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Numerically stable log(1 + e^z).
pub fn softplus(z: f32) -> f32 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

/// The logistic function.
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of one leaf.
    fn grad_check(build: impl Fn(&mut Tape, NodeId) -> NodeId, input: Matrix, tolerance: f32) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("leaf participates").clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let x = t.leaf(m);
                let l = build(&mut t, x);
                t.value(l).get(0, 0)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tolerance * (1.0 + numeric.abs()),
                "entry {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_gradient() {
        let w = Matrix::from_rows(&[&[0.5, -0.3], &[0.2, 0.8], &[-0.6, 0.1]]);
        grad_check(
            move |t, x| {
                let wn = t.leaf(w.clone());
                let y = t.matmul(x, wn); // (1x3)(3x2) = 1x2
                let pooled = t.mean_rows(y);
                // Reduce to scalar: multiply by a fixed column.
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
                let s = t.matmul(pooled, col);
                t.bce_with_logits(s, 1.0)
            },
            Matrix::from_rows(&[&[0.3, -0.7, 0.9]]),
            2e-2,
        );
    }

    #[test]
    fn spmm_gradient() {
        // Â of a 3-node path graph (symmetric, self-loops folded in).
        let adj = Arc::new(SparseMatrix::adjacency_hat(3, &[(0, 1), (1, 2)]));
        grad_check(
            move |t, x| {
                let y = t.spmm(&adj, x); // (3x3)(3x2) = 3x2
                let pooled = t.mean_rows(y);
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[-2.0]]));
                let s = t.matmul(pooled, col);
                t.bce_with_logits(s, 0.0)
            },
            Matrix::from_rows(&[&[0.3, -0.7], &[0.9, 0.4], &[-0.2, 0.6]]),
            2e-2,
        );
    }

    #[test]
    fn spmm_matches_dense_matmul_forward_and_backward() {
        let adj = Arc::new(SparseMatrix::adjacency_hat(4, &[(0, 1), (1, 2), (2, 3)]));
        let h = Matrix::he_init(4, 3, 11);
        let col = Matrix::from_rows(&[&[0.7], &[-0.4], &[1.1]]);

        let run = |sparse: bool| {
            let mut t = Tape::new();
            let x = t.leaf(h.clone());
            let agg = if sparse {
                t.spmm(&adj, x)
            } else {
                let a = t.leaf(adj.to_dense());
                t.matmul(a, x)
            };
            let pooled = t.mean_rows(agg);
            let c = t.leaf(col.clone());
            let s = t.matmul(pooled, c);
            let loss = t.bce_with_logits(s, 1.0);
            t.backward(loss);
            (t.value(loss).clone(), t.grad(x).expect("grad").clone())
        };
        let (loss_s, grad_s) = run(true);
        let (loss_d, grad_d) = run(false);
        assert_eq!(loss_s, loss_d, "forward bit-identical");
        assert_eq!(grad_s, grad_d, "backward bit-identical");
    }

    #[test]
    fn segment_mean_rows_gradient() {
        grad_check(
            |t, x| {
                // Segments of 2 and 3 rows -> 2x2 pooled.
                let pooled = t.segment_mean_rows(x, &[2, 3]);
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[-1.5]]));
                let per_seg = t.matmul(pooled, col); // 2x1
                let m = t.mean_rows(per_seg);
                t.bce_with_logits(m, 1.0)
            },
            Matrix::from_rows(&[
                &[0.4, -0.2],
                &[1.1, 0.3],
                &[-0.6, 0.9],
                &[0.2, -0.8],
                &[0.7, 0.5],
            ]),
            2e-2,
        );
    }

    #[test]
    fn segment_mean_of_one_segment_equals_mean_rows() {
        let input = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0], &[0.0, -1.0]]);
        let mut t = Tape::new();
        let x = t.leaf(input.clone());
        let a = t.segment_mean_rows(x, &[3]);
        let b = t.mean_rows(x);
        assert_eq!(t.value(a), t.value(b));
    }

    #[test]
    fn batched_bce_gradient() {
        grad_check(
            |t, x| {
                // x is 3x1 logits; targets 1, 0, 1.
                t.bce_with_logits_batch(x, &[1.0, 0.0, 1.0])
            },
            Matrix::from_rows(&[&[0.3], &[-0.8], &[1.4]]),
            1e-2,
        );
    }

    #[test]
    fn batched_bce_equals_folded_singles() {
        let logits = [0.25f32, -1.5, 2.0];
        let targets = [1.0f32, 0.0, 1.0];
        let mut t = Tape::new();
        // Folded per-sample losses, summed in sample order.
        let singles: Vec<NodeId> = logits
            .iter()
            .map(|&z| {
                let n = t.leaf(Matrix::from_vec(1, 1, vec![z]));
                t.bce_with_logits(n, targets[(logits.iter().position(|&x| x == z)).unwrap()])
            })
            .collect();
        let mut total = singles[0];
        for &l in &singles[1..] {
            total = t.add(total, l);
        }
        // Batched form.
        let col = t.leaf(Matrix::from_vec(3, 1, logits.to_vec()));
        let batched = t.bce_with_logits_batch(col, &targets);
        assert_eq!(t.value(total), t.value(batched));
    }

    #[test]
    fn relu_and_bias_gradient() {
        let b = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        grad_check(
            move |t, x| {
                let bn = t.leaf(b.clone());
                let h = t.add_row_broadcast(x, bn);
                let r = t.relu(h);
                let m = t.mean_rows(r);
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[-1.0], &[0.5]]));
                let s = t.matmul(m, col);
                t.bce_with_logits(s, 0.0)
            },
            Matrix::from_rows(&[&[0.4, 0.6, -0.5], &[1.2, -0.9, 0.35]]),
            2e-2,
        );
    }

    #[test]
    fn add_and_scale_gradient() {
        grad_check(
            |t, x| {
                let y = t.scale(x, 2.5);
                let z = t.add(x, y); // 3.5 x
                t.bce_with_logits(z, 1.0)
            },
            Matrix::from_rows(&[&[0.7]]),
            1e-2,
        );
    }

    #[test]
    fn mean_rows_gradient_distributes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0], &[3.0]]));
        let m = t.mean_rows(x);
        let loss = t.bce_with_logits(m, 0.0);
        t.backward(loss);
        let g = t.grad(x).expect("grad");
        // d loss/d m = sigmoid(2); each row gets half.
        let expect = sigmoid(2.0) / 2.0;
        assert!((g.get(0, 0) - expect).abs() < 1e-5);
        assert!((g.get(1, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.5]]));
        let l = t.bce_with_logits(x, 1.0);
        let expect = softplus(1.5) - 1.5;
        assert!((t.value(l).get(0, 0) - expect).abs() < 1e-6);
        t.backward(l);
        let g = t.grad(x).expect("grad").get(0, 0);
        assert!((g - (sigmoid(1.5) - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn softplus_is_stable() {
        assert!(softplus(100.0).is_finite());
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn gradients_accumulate_over_shared_nodes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let y = t.add(x, x); // 2x
        let l = t.bce_with_logits(y, 0.0);
        t.backward(l);
        let g = t.grad(x).expect("grad").get(0, 0);
        let expect = 2.0 * sigmoid(2.0);
        assert!((g - expect).abs() < 1e-5, "{g} vs {expect}");
    }

    #[test]
    fn reset_recycles_buffers_and_keeps_results_identical() {
        let input = Matrix::from_rows(&[&[0.4, -0.3], &[0.8, 0.1]]);
        let run = |t: &mut Tape| {
            let x = t.leaf_copy(&input);
            let r = t.relu(x);
            let m = t.mean_rows(r);
            let col = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
            let s = t.matmul(m, col);
            let l = t.bce_with_logits(s, 1.0);
            t.backward(l);
            (t.value(l).get(0, 0), t.grad(x).expect("grad").clone())
        };
        let mut tape = Tape::new();
        let first = run(&mut tape);
        let allocs_after_first = tape.stats().fresh_buffers;
        for _ in 0..10 {
            tape.reset();
            let again = run(&mut tape);
            assert_eq!(first.0, again.0);
            assert_eq!(first.1, again.1);
        }
        assert_eq!(
            tape.stats().fresh_buffers,
            allocs_after_first,
            "a reused tape must not allocate after warm-up"
        );
        assert_eq!(tape.stats().nodes_recorded, 11 * 6);
    }

    #[test]
    fn repeated_backward_on_one_recording_is_stable() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.9]]));
        let y = t.scale(x, 2.0);
        let l = t.bce_with_logits(y, 1.0);
        t.backward(l);
        let g1 = t.grad(x).expect("grad").clone();
        t.backward(l);
        let g2 = t.grad(x).expect("grad").clone();
        assert_eq!(g1, g2, "gradients must reset, not double");
    }
}
