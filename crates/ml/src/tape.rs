//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records an expression DAG as operations execute (eager
//! forward), then [`Tape::backward`] walks it in reverse, accumulating
//! gradients. Exactly the op set the OMLA-style GIN classifier needs is
//! provided; every op's gradient is validated against finite differences in
//! the tests.

use crate::tensor::Matrix;

/// Handle to a value on a [`Tape`].
pub type NodeId = usize;

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    MatMul(NodeId, NodeId),
    Add(NodeId, NodeId),
    AddRowBroadcast(NodeId, NodeId),
    Relu(NodeId),
    MeanRows(NodeId),
    Scale(NodeId, f32),
    /// Binary cross-entropy with logits against a constant target;
    /// produces a 1×1 loss.
    BceWithLogits(NodeId, f32),
}

struct TapeNode {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A gradient tape; see the [module documentation](self).
///
/// # Example
///
/// ```
/// use almost_ml::tape::Tape;
/// use almost_ml::tensor::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_rows(&[&[2.0]]));
/// let y = t.scale(x, 3.0);
/// let loss = t.bce_with_logits(y, 1.0);
/// t.backward(loss);
/// // d/dx [softplus(3x) - 3x] = 3 (sigmoid(3x) - 1)
/// let g = t.grad(x).expect("gradient exists");
/// assert!(g.get(0, 0) < 0.0);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<TapeNode>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        self.nodes.push(TapeNode {
            value,
            grad: None,
            op,
        });
        self.nodes.len() - 1
    }

    /// Inserts an input/parameter value.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id].value
    }

    /// The accumulated gradient of a node (after [`Tape::backward`]).
    pub fn grad(&self, id: NodeId) -> Option<&Matrix> {
        self.nodes[id].grad.as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.push(v, Op::Add(a, b))
    }

    /// Adds a 1×cols bias row to every row of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let v = self.nodes[a]
            .value
            .add_row_broadcast(&self.nodes[row].value);
        self.push(v, Op::AddRowBroadcast(a, row))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Column-wise mean producing a 1×cols row (graph readout pooling).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a].value.scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Binary cross-entropy with logits: `softplus(z) − target·z`, where
    /// `z` is the single entry of a 1×1 node. Numerically stable.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not 1×1.
    pub fn bce_with_logits(&mut self, a: NodeId, target: f32) -> NodeId {
        let z = {
            let m = &self.nodes[a].value;
            assert_eq!((m.rows(), m.cols()), (1, 1), "logit must be a scalar");
            m.get(0, 0)
        };
        let loss = softplus(z) - target * z;
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            Op::BceWithLogits(a, target),
        )
    }

    /// Runs backpropagation from `root` (which must be 1×1).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a scalar node.
    pub fn backward(&mut self, root: NodeId) {
        {
            let m = &self.nodes[root].value;
            assert_eq!((m.rows(), m.cols()), (1, 1), "backward root must be scalar");
        }
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[root].grad = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[id].grad.clone() else {
                continue;
            };
            match self.nodes[id].op.clone() {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let ga = g.matmul(&self.nodes[b].value.transpose());
                    let gb = self.nodes[a].value.transpose().matmul(&g);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::AddRowBroadcast(a, row) => {
                    self.accumulate(a, g.clone());
                    self.accumulate(row, g.sum_rows());
                }
                Op::Relu(a) => {
                    let mask = self.nodes[a].value.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    self.accumulate(a, g.hadamard(&mask));
                }
                Op::MeanRows(a) => {
                    let n = self.nodes[a].value.rows().max(1);
                    let mut ga =
                        Matrix::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    for r in 0..ga.rows() {
                        for c in 0..ga.cols() {
                            ga.set(r, c, g.get(0, c) / n as f32);
                        }
                    }
                    self.accumulate(a, ga);
                }
                Op::Scale(a, s) => {
                    self.accumulate(a, g.scale(s));
                }
                Op::BceWithLogits(a, target) => {
                    let z = self.nodes[a].value.get(0, 0);
                    let dz = sigmoid(z) - target;
                    self.accumulate(a, Matrix::from_vec(1, 1, vec![dz * g.get(0, 0)]));
                }
            }
        }
    }

    fn accumulate(&mut self, id: NodeId, g: Matrix) {
        match &mut self.nodes[id].grad {
            Some(existing) => existing.add_scaled(&g, 1.0),
            slot @ None => *slot = Some(g),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Numerically stable log(1 + e^z).
pub fn softplus(z: f32) -> f32 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

/// The logistic function.
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of one leaf.
    fn grad_check(build: impl Fn(&mut Tape, NodeId) -> NodeId, input: Matrix, tolerance: f32) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("leaf participates").clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..input.data().len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let x = t.leaf(m);
                let l = build(&mut t, x);
                t.value(l).get(0, 0)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tolerance * (1.0 + numeric.abs()),
                "entry {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_gradient() {
        let w = Matrix::from_rows(&[&[0.5, -0.3], &[0.2, 0.8], &[-0.6, 0.1]]);
        grad_check(
            move |t, x| {
                let wn = t.leaf(w.clone());
                let y = t.matmul(x, wn); // (1x3)(3x2) = 1x2
                let pooled = t.mean_rows(y);
                // Reduce to scalar: multiply by a fixed column.
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0]]));
                let s = t.matmul(pooled, col);
                t.bce_with_logits(s, 1.0)
            },
            Matrix::from_rows(&[&[0.3, -0.7, 0.9]]),
            2e-2,
        );
    }

    #[test]
    fn relu_and_bias_gradient() {
        let b = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        grad_check(
            move |t, x| {
                let bn = t.leaf(b.clone());
                let h = t.add_row_broadcast(x, bn);
                let r = t.relu(h);
                let m = t.mean_rows(r);
                let col = t.leaf(Matrix::from_rows(&[&[1.0], &[-1.0], &[0.5]]));
                let s = t.matmul(m, col);
                t.bce_with_logits(s, 0.0)
            },
            Matrix::from_rows(&[&[0.4, 0.6, -0.5], &[1.2, -0.9, 0.35]]),
            2e-2,
        );
    }

    #[test]
    fn add_and_scale_gradient() {
        grad_check(
            |t, x| {
                let y = t.scale(x, 2.5);
                let z = t.add(x, y); // 3.5 x
                t.bce_with_logits(z, 1.0)
            },
            Matrix::from_rows(&[&[0.7]]),
            1e-2,
        );
    }

    #[test]
    fn mean_rows_gradient_distributes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0], &[3.0]]));
        let m = t.mean_rows(x);
        let loss = t.bce_with_logits(m, 0.0);
        t.backward(loss);
        let g = t.grad(x).expect("grad");
        // d loss/d m = sigmoid(2); each row gets half.
        let expect = sigmoid(2.0) / 2.0;
        assert!((g.get(0, 0) - expect).abs() < 1e-5);
        assert!((g.get(1, 0) - expect).abs() < 1e-5);
    }

    #[test]
    fn bce_matches_closed_form() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.5]]));
        let l = t.bce_with_logits(x, 1.0);
        let expect = softplus(1.5) - 1.5;
        assert!((t.value(l).get(0, 0) - expect).abs() < 1e-6);
        t.backward(l);
        let g = t.grad(x).expect("grad").get(0, 0);
        assert!((g - (sigmoid(1.5) - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn softplus_is_stable() {
        assert!(softplus(100.0).is_finite());
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn gradients_accumulate_over_shared_nodes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let y = t.add(x, x); // 2x
        let l = t.bce_with_logits(y, 0.0);
        t.backward(l);
        let g = t.grad(x).expect("grad").get(0, 0);
        let expect = 2.0 * sigmoid(2.0);
        assert!((g - expect).abs() < 1e-5, "{g} vs {expect}");
    }
}
