//! A minimal machine-learning substrate: dense + CSR tensors,
//! zero-clone reverse-mode autodiff, GIN graph layers, Adam and a
//! data-parallel training loop.
//!
//! The ALMOST paper's attacks (OMLA) and defence (the adversarially
//! trained proxy model M\*) are GIN subgraph classifiers implemented in
//! PyTorch; this crate replaces that dependency with a self-contained
//! implementation built around the sparsity of AIG localities (fan-in
//! ≤ 2, so `Â = A + I` carries ~3 entries per row):
//!
//! - [`tensor::Matrix`] / [`tensor::SparseMatrix`] — dense row-major
//!   `f32` matrices (He init included) and CSR adjacency operators whose
//!   `spmm` aggregates neighbourhoods in O(E·d) instead of O(n²·d),
//!   bit-identically to the dense product.
//! - [`tape::Tape`] — reverse-mode autodiff over exactly the ops a GIN
//!   classifier needs, with in-place gradient accumulation and a
//!   recycled-buffer workspace (allocation-free once warm); every
//!   gradient is finite-difference checked in tests.
//! - [`gin::GinClassifier`] — GIN message passing + mean-pool readout +
//!   MLP head, the OMLA model shape; minibatches fuse into one
//!   block-diagonal union per gradient sub-block.
//! - [`optim::Adam`], [`train::train`] — minibatch training that fans
//!   fixed-size gradient sub-blocks across the `almost_pool` workers
//!   (`ALMOST_JOBS` sets the width, results are bit-identical at any
//!   width), with an epoch hook (used by Algorithm 1's every-R-epochs
//!   adversarial augmentation).
//!
//! # Example
//!
//! ```
//! use almost_ml::gin::{Graph, GinClassifier};
//! use almost_ml::tensor::Matrix;
//!
//! let model = GinClassifier::new(2, 8, 2, 42);
//! let g = Graph::from_edges(2, &[(0, 1)], Matrix::zeros(2, 2), false);
//! let p = model.predict(&g);
//! assert!((0.0..=1.0).contains(&p));
//! ```

pub mod data;
pub mod gin;
pub mod nn;
pub mod optim;
pub mod tape;
pub mod tensor;
pub mod train;

pub use gin::{GinClassifier, Graph};
pub use optim::Adam;
pub use tape::Tape;
pub use tensor::{Matrix, SparseMatrix};
pub use train::{train, train_dense_reference, train_with_callback, TrainConfig, TrainStats};
