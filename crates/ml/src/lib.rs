//! A minimal machine-learning substrate: dense tensors, reverse-mode
//! autodiff, GIN graph layers, Adam and a training loop.
//!
//! The ALMOST paper's attacks (OMLA) and defence (the adversarially
//! trained proxy model M\*) are GIN subgraph classifiers implemented in
//! PyTorch; this crate replaces that dependency with a self-contained
//! implementation:
//!
//! - [`tensor::Matrix`] — dense row-major `f32` matrices (He init included).
//! - [`tape::Tape`] — reverse-mode autodiff over exactly the ops a GIN
//!   classifier needs; every gradient is finite-difference checked in
//!   tests.
//! - [`gin::GinClassifier`] — GIN message passing + mean-pool readout +
//!   MLP head, the OMLA model shape.
//! - [`optim::Adam`], [`train::train`] — minibatch training with an
//!   epoch hook (used by Algorithm 1's every-R-epochs adversarial
//!   augmentation).
//!
//! # Example
//!
//! ```
//! use almost_ml::gin::{Graph, GinClassifier};
//! use almost_ml::tensor::Matrix;
//!
//! let model = GinClassifier::new(2, 8, 2, 42);
//! let g = Graph::from_edges(2, &[(0, 1)], Matrix::zeros(2, 2), false);
//! let p = model.predict(&g);
//! assert!((0.0..=1.0).contains(&p));
//! ```

pub mod data;
pub mod gin;
pub mod nn;
pub mod optim;
pub mod tape;
pub mod tensor;
pub mod train;

pub use gin::{GinClassifier, Graph};
pub use optim::Adam;
pub use tape::Tape;
pub use tensor::Matrix;
pub use train::{train, train_with_callback, TrainConfig, TrainStats};
