//! Dense layers.

use crate::tape::{NodeId, Tape};
use crate::tensor::Matrix;

/// A fully connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix (`in × out`).
    pub w: Matrix,
    /// Bias row (`1 × out`).
    pub b: Matrix,
}

/// Tape handles to one layer's parameters.
#[derive(Clone, Copy, Debug)]
pub struct BoundLinear {
    /// Weight node.
    pub w: NodeId,
    /// Bias node.
    pub b: NodeId,
}

impl Linear {
    /// He-initialised layer.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        Linear {
            w: Matrix::he_init(input_dim, output_dim, seed),
            b: Matrix::zeros(1, output_dim),
        }
    }

    /// Inserts the parameters onto a tape (copying into the tape's
    /// recycled buffers, so re-binding per minibatch allocates nothing
    /// once the tape is warm).
    pub fn bind(&self, tape: &mut Tape) -> BoundLinear {
        BoundLinear {
            w: tape.leaf_copy(&self.w),
            b: tape.leaf_copy(&self.b),
        }
    }

    /// Applies the bound layer to `x` (n × in), yielding n × out.
    pub fn forward(bound: BoundLinear, tape: &mut Tape, x: NodeId) -> NodeId {
        let xw = tape.matmul(x, bound.w);
        tape.add_row_broadcast(xw, bound.b)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_map() {
        let mut layer = Linear::new(2, 2, 1);
        layer.w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        layer.b = Matrix::from_rows(&[&[0.5, -0.5]]);
        let mut tape = Tape::new();
        let bound = layer.bind(&mut tape);
        let x = tape.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let y = Linear::forward(bound, &mut tape, x);
        assert_eq!(tape.value(y), &Matrix::from_rows(&[&[3.5, 7.5]]));
    }

    #[test]
    fn dimensions() {
        let layer = Linear::new(5, 3, 2);
        assert_eq!(layer.input_dim(), 5);
        assert_eq!(layer.output_dim(), 3);
        assert_eq!(layer.b.cols(), 3);
    }
}
