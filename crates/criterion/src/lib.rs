//! A workspace-local micro-benchmark harness.
//!
//! Hermetic build environments cannot fetch the real `criterion` crate, so
//! this crate implements the slice of its API the workspace's bench targets
//! use: [`Criterion::benchmark_group`], `sample_size`, `bench_function`
//! with a [`Bencher::iter`] closure, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark reports min/mean/max wall
//! time per iteration on stdout.

use std::time::{Duration, Instant};

/// Re-export for call sites importing `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (a one-function group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a `group/name` report line.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs the closure once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up to populate caches and lazy statics.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{name:<40} [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
