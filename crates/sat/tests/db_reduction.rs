//! Learnt-clause database reduction soundness.
//!
//! Reduction only ever deletes *learnt* clauses, which are implied by the
//! original formula, so a solver that reduces aggressively must agree
//! verdict-for-verdict with one that never reduces — on a randomized CNF
//! corpus spanning SAT and UNSAT instances. Small instances are
//! additionally cross-checked against brute-force enumeration, and hard
//! structured instances (pigeonhole) confirm reductions actually fire.

use almost_sat::solver::{SatLit, SatResult, SatVar, Solver};

/// Deterministic xorshift stream.
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

fn random_3sat(seed: u64, nvars: u64, nclauses: usize) -> Vec<Vec<SatLit>> {
    let mut next = stream(seed);
    (0..nclauses)
        .map(|_| {
            (0..3)
                .map(|_| SatLit::new((next() % nvars) as SatVar, next().is_multiple_of(2)))
                .collect()
        })
        .collect()
}

fn solve_instance(clauses: &[Vec<SatLit>], nvars: u64, reduce: bool) -> (SatResult, Solver) {
    let mut s = Solver::new();
    s.set_db_reduction(reduce);
    if reduce {
        // Force reductions even on instances that learn only a few dozen
        // clauses.
        s.set_reduce_threshold(12);
    }
    for _ in 0..nvars {
        s.new_var();
    }
    for cl in clauses {
        s.add_clause(cl);
    }
    let verdict = s.solve(&[]);
    (verdict, s)
}

fn model_satisfies(s: &Solver, clauses: &[Vec<SatLit>]) -> bool {
    clauses
        .iter()
        .all(|cl| cl.iter().any(|&l| s.lit_bool(l).unwrap_or(false)))
}

#[test]
fn reduced_solver_agrees_with_unreduced_on_a_random_corpus() {
    // Clause/variable ratios from under-constrained (mostly SAT) through
    // the ~4.26 phase transition (hard, mixed verdicts) to
    // over-constrained (mostly UNSAT).
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for round in 0..30u64 {
        let nvars = 24 + (round % 5) * 4;
        let ratio_x10 = [30, 38, 43, 47, 55][(round % 5) as usize];
        let nclauses = (nvars as usize * ratio_x10) / 10;
        let clauses = random_3sat(
            0xD1CE ^ round.wrapping_mul(0x9E3779B97F4A7C15),
            nvars,
            nclauses,
        );

        let (with_reduce, s_reduced) = solve_instance(&clauses, nvars, true);
        let (without, s_plain) = solve_instance(&clauses, nvars, false);
        assert_eq!(
            with_reduce, without,
            "round {round}: reduced and unreduced solvers must agree"
        );
        match with_reduce {
            SatResult::Sat => {
                sat_seen += 1;
                assert!(
                    model_satisfies(&s_reduced, &clauses),
                    "round {round}: reduced model"
                );
                assert!(
                    model_satisfies(&s_plain, &clauses),
                    "round {round}: plain model"
                );
            }
            SatResult::Unsat => unsat_seen += 1,
        }
    }
    assert!(sat_seen > 0, "corpus must contain satisfiable instances");
    assert!(
        unsat_seen > 0,
        "corpus must contain unsatisfiable instances"
    );
}

#[test]
fn reduced_solver_matches_brute_force_on_small_instances() {
    for round in 0..12u64 {
        let nvars = 12u64;
        let nclauses = 50;
        let clauses = random_3sat(0xBF ^ round.wrapping_mul(0xABCD_EF01), nvars, nclauses);

        let mut bf_sat = false;
        'outer: for m in 0..(1u32 << nvars) {
            for cl in &clauses {
                if !cl
                    .iter()
                    .any(|l| ((m >> l.var()) & 1 != 0) ^ l.is_negative())
                {
                    continue 'outer;
                }
            }
            bf_sat = true;
            break;
        }

        let (verdict, _) = solve_instance(&clauses, nvars, true);
        assert_eq!(
            verdict,
            if bf_sat {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "round {round}"
        );
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // hole index j is clearest as written
fn aggressive_reduction_fires_and_preserves_pigeonhole_unsat() {
    let mut s = Solver::new();
    s.set_reduce_threshold(8);
    let (pigeons, holes) = (8usize, 7usize);
    let mut p = vec![vec![SatLit::positive(0); holes]; pigeons];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = SatLit::positive(s.new_var());
        }
    }
    for row in &p {
        s.add_clause(row);
    }
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                s.add_clause(&[!p[i1][j], !p[i2][j]]);
            }
        }
    }
    assert_eq!(s.solve(&[]), SatResult::Unsat);
    let stats = s.stats();
    assert!(
        stats.learnts_deleted > stats.learnts_kept,
        "an 8-clause threshold must delete aggressively (stats: {stats:?})"
    );
    // Incremental re-use still works after heavy reduction.
    assert_eq!(s.solve(&[]), SatResult::Unsat);
}
