//! Property tests for the VSIDS decision heap and the decide-loop
//! invariant it rests on.
//!
//! The heap's comparator is a strict total order (activity descending,
//! variable index ascending on ties), so three things must hold under
//! arbitrary operation sequences:
//!
//! 1. pops always return the globally best variable under that order;
//! 2. the pop order survives a `var_inc`-style uniform rescale (after the
//!    rebuild the solver performs);
//! 3. the solver's backtracking re-inserts exactly the unassigned
//!    variables, so `decide()` can never miss one.

use almost_sat::heap::ActivityHeap;
use almost_sat::solver::{SatLit, SatVar, Solver};
use proptest::prelude::*;

/// Deterministic xorshift stream for generating activities and clauses.
fn stream(mut state: u64) -> impl FnMut() -> u64 {
    state |= 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Reference order: activity descending, index ascending on ties.
fn reference_order(act: &[f64], vars: &[SatVar]) -> Vec<SatVar> {
    let mut sorted = vars.to_vec();
    sorted.sort_by(|&a, &b| {
        act[b as usize]
            .partial_cmp(&act[a as usize])
            .expect("activities are never NaN")
            .then(a.cmp(&b))
    });
    sorted
}

fn drain(heap: &mut ActivityHeap, act: &[f64]) -> Vec<SatVar> {
    std::iter::from_fn(|| heap.pop(act)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: pop order matches the total order exactly, including
    /// deliberate activity collisions (activities are drawn from a small
    /// set so ties are common).
    #[test]
    fn pop_order_matches_max_activity(seed in 0u64..1_000_000, nvars in 2usize..48) {
        let mut next = stream(seed);
        let act: Vec<f64> = (0..nvars).map(|_| (next() % 8) as f64).collect();
        let mut heap = ActivityHeap::new();
        // Insert in a scrambled order.
        let mut vars: Vec<SatVar> = (0..nvars as SatVar).collect();
        for i in (1..vars.len()).rev() {
            vars.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        for &v in &vars {
            heap.insert(v, &act);
        }
        let popped = drain(&mut heap, &act);
        prop_assert_eq!(popped, reference_order(&act, &vars));
    }

    /// Invariant 2: a uniform rescale (what `var_inc` overflow protection
    /// does) followed by the solver's rebuild leaves the pop order
    /// unchanged.
    #[test]
    fn pop_order_survives_rescale(seed in 0u64..1_000_000, nvars in 2usize..48) {
        let mut next = stream(seed ^ 0xA5A5);
        let mut act: Vec<f64> = (0..nvars).map(|_| (next() % 1000) as f64 * 1e90).collect();
        let vars: Vec<SatVar> = (0..nvars as SatVar).collect();

        let mut before = ActivityHeap::new();
        for &v in &vars {
            before.insert(v, &act);
        }
        let order_before = drain(&mut before, &act);

        let mut after = ActivityHeap::new();
        for &v in &vars {
            after.insert(v, &act);
        }
        for a in &mut act {
            *a *= 1e-100;
        }
        after.rebuild(&act);
        let order_after = drain(&mut after, &act);
        prop_assert_eq!(order_before, order_after);
    }

    /// Invariant 3: after any mix of solves (which decide, propagate,
    /// backtrack and restart), every unassigned variable is back in the
    /// heap — the completeness invariant of the decide loop.
    #[test]
    fn backtrack_reinserts_exactly_the_unassigned_vars(
        seed in 0u64..1_000_000,
        nvars in 4u64..24,
        nclauses in 8usize..96,
    ) {
        let mut next = stream(seed ^ 0x7E57);
        let mut solver = Solver::new();
        let vars: Vec<SatVar> = (0..nvars).map(|_| solver.new_var()).collect();
        prop_assert!(solver.decision_heap_consistent());
        for _ in 0..nclauses {
            let cl: Vec<SatLit> = (0..3)
                .map(|_| SatLit::new(vars[(next() % nvars) as usize], next().is_multiple_of(2)))
                .collect();
            solver.add_clause(&cl);
        }
        // Unconstrained solve, then solves under assumptions (both
        // polarities), interleaved with clause additions.
        let _ = solver.solve(&[]);
        prop_assert!(solver.decision_heap_consistent());
        let a0 = SatLit::new(vars[0], false);
        let _ = solver.solve(&[a0, !SatLit::positive(vars[(next() % nvars) as usize])]);
        prop_assert!(solver.decision_heap_consistent());
        solver.add_clause(&[!a0, SatLit::new(vars[(next() % nvars) as usize], true)]);
        let _ = solver.solve_limited(&[!a0], 4);
        prop_assert!(solver.decision_heap_consistent());
        let _ = solver.solve(&[]);
        prop_assert!(solver.decision_heap_consistent());
    }
}
