//! Property tests for portfolio soundness: racing diversified solvers
//! and exchanging learnt glue clauses must never change a verdict, and a
//! cancelled query must never *be* a verdict.
//!
//! Two invariants, over random 3-SAT instances spanning the
//! phase-transition ratio (where both verdicts occur and conflicts are
//! plentiful):
//!
//! 1. **Exchange soundness** — a width-4 portfolio (diversified workers,
//!    glue exchange on) reaches exactly the verdict of the serial
//!    no-exchange reference. Learnt clauses are implied by the formula
//!    alone, so an imported clause can prune search but never flip
//!    SAT ↔ UNSAT; a SAT winner's model must still satisfy the original
//!    clauses.
//! 2. **Cancellation is indeterminate** — `solve_raced` under an
//!    already-tripped stop flag returns `Err(Cancelled)`, never a
//!    verdict, and leaves the solver reusable (a follow-up uncancelled
//!    query still answers correctly).

use almost_sat::{Interrupt, PortfolioSolver, SatLit, SatResult, Solver};
use proptest::prelude::*;
use std::sync::atomic::AtomicBool;

/// A random 3-SAT instance: `vars` variables, clause count set by the
/// clause/variable `ratio_pct` (percent, so 426 ≈ the 4.26 phase
/// transition). Literals are decoded from the proptest-driven `seed`.
fn random_3sat(vars: u32, ratio_pct: u32, mut seed: u64) -> Vec<Vec<SatLit>> {
    let num_clauses = ((vars * ratio_pct) / 100).max(1);
    let mut next = move || {
        // splitmix64: decorrelates consecutive draws from the one seed.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let r = next();
                    SatLit::new((r % vars as u64) as u32, r & (1 << 32) != 0)
                })
                .collect()
        })
        .collect()
}

fn load_solver(clauses: &[Vec<SatLit>], vars: u32) -> Solver {
    let mut s = Solver::new();
    for _ in 0..vars {
        s.new_var();
    }
    for cl in clauses {
        s.add_clause(cl);
    }
    s
}

fn load_portfolio(clauses: &[Vec<SatLit>], vars: u32, width: usize) -> PortfolioSolver {
    let mut p = PortfolioSolver::with_width("soundness_test", width);
    for _ in 0..vars {
        p.new_var();
    }
    for cl in clauses {
        p.add_clause(cl);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: the racing, clause-exchanging portfolio agrees with
    /// the serial no-exchange reference on every instance, and a SAT
    /// winner's model satisfies the original formula.
    #[test]
    fn exchanged_glue_never_flips_a_verdict(
        vars in 10u32..40,
        ratio_pct in 300u32..550,
        seed in any::<u64>(),
    ) {
        let clauses = random_3sat(vars, ratio_pct, seed);
        let mut reference = load_solver(&clauses, vars);
        let expected = reference.solve(&[]);

        let mut portfolio = load_portfolio(&clauses, vars, 4);
        let got = portfolio.solve(&[]);
        prop_assert_eq!(got, expected, "portfolio verdict diverged from serial");
        if got == SatResult::Sat {
            for cl in &clauses {
                prop_assert!(
                    cl.iter().any(|&l| portfolio.lit_bool(l).unwrap_or(false)),
                    "winning model violates an original clause"
                );
            }
        }
    }

    /// Invariant 1b: verdicts also agree under assumptions (the miters
    /// always query under an activation guard).
    #[test]
    fn assumption_verdicts_agree(
        vars in 10u32..30,
        ratio_pct in 300u32..550,
        seed in any::<u64>(),
        assumed in 0u32..4,
    ) {
        let clauses = random_3sat(vars, ratio_pct, seed);
        let assumptions: Vec<SatLit> = (0..assumed.min(vars))
            .map(|v| SatLit::new(v, v % 2 == 0))
            .collect();
        let mut reference = load_solver(&clauses, vars);
        let expected = reference.solve(&assumptions);
        let mut portfolio = load_portfolio(&clauses, vars, 3);
        prop_assert_eq!(portfolio.solve(&assumptions), expected);
    }

    /// Invariant 2: a tripped stop flag yields `Cancelled` — never a
    /// verdict — and the solver survives to answer a real query.
    #[test]
    fn tripped_stop_flag_is_never_a_verdict(
        vars in 10u32..40,
        ratio_pct in 300u32..550,
        seed in any::<u64>(),
    ) {
        let clauses = random_3sat(vars, ratio_pct, seed);
        let mut solver = load_solver(&clauses, vars);
        let tripped = AtomicBool::new(true);
        prop_assert_eq!(
            solver.solve_raced(&[], u64::MAX, &tripped, None),
            Err(Interrupt::Cancelled)
        );
        // The cancelled solver is still consistent: an uncancelled rerun
        // reaches the reference verdict.
        let calm = AtomicBool::new(false);
        let mut reference = load_solver(&clauses, vars);
        prop_assert_eq!(
            solver.solve_raced(&[], u64::MAX, &calm, None),
            Ok(reference.solve(&[]))
        );
    }
}
