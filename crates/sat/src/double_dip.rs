//! The 2-DIP miter of the Double-DIP attack.
//!
//! A classical DIP (see [`KeyMiter`](crate::KeyMiter)) eliminates *at
//! least one* wrong key per oracle query — which is exactly the guarantee
//! point-function defences (SARLock, Anti-SAT) weaponise: they arrange
//! for every input to incriminate at most one key, so the DIP loop
//! degenerates into brute-force key enumeration.
//!
//! Double DIP [Shen & Zhou, GLSVLSI'17] asks for a *2-DIP* instead: an
//! input pattern whose oracle answer is guaranteed to eliminate at least
//! **two** wrong keys. The miter carries four key copies over one shared
//! input vector `X` — two agreeing pairs that disagree with each other:
//!
//! ```text
//! C(X, K1) = C(X, K2),  K1 ≠ K2        (pair A agrees)
//! C(X, K3) = C(X, K4),  K3 ≠ K4        (pair B agrees)
//! C(X, K1) ≠ C(X, K3)                  (the pairs disagree at X)
//! ```
//!
//! Whichever pair the oracle contradicts contains two distinct wrong keys,
//! both killed by the resulting I/O constraint. A SARLock flip is one-hot
//! in the key — at any input at most one key class errs — so its wrong
//! keys can never populate a full pair and the 2-DIP loop settles after
//! resolving only the base scheme, stripping the point function.
//!
//! One refinement keeps the loop off the point function's turf: pair
//! members must additionally agree on a batch of fixed random *probe*
//! inputs ([`DoubleDipMiter::with_probes`]). Without it, the solver can
//! pair a point-residue key with an unrelated wrong base key that merely
//! coincides at the chosen input, and the loop degenerates into flip-
//! cylinder enumeration — exactly the brute force the defence wants.
//! Probes force pair members to be near-equivalent keys (they may differ
//! only where the probes don't look, i.e. on measure-`2^-k` flip
//! cylinders), so each accepted query eliminates an entire wrong *base*
//! key class. Probes are structural: they never query the oracle.
//!
//! Like [`KeyMiter`](crate::KeyMiter), the structural constraints are
//! guarded by an activation literal (assumed to search, released to settle
//! a key), I/O constraints are input-restricted circuit residues, and the
//! solver is fully incremental across iterations.

use crate::cnf::{encode_with_inputs, encode_xor};
use crate::miter::{restrict_to_keys, splice_inputs};
use crate::portfolio::{PortfolioSolver, PortfolioStats};
use crate::solver::{SatLit, SatResult, SatVar};
use almost_aig::Aig;
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Outcome of one 2-DIP query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoDipSearch {
    /// A 2-distinguishing input pattern over the functional inputs.
    Found(Vec<bool>),
    /// No 2-DIP exists: every surviving wrong key corrupts inputs where it
    /// is the *only* dissenter — the point-function residue. The settled
    /// key is correct up to such one-key flips (for SARLock/Anti-SAT
    /// overlays: the base key is recovered exactly).
    Settled,
    /// The conflict budget ran out before the query concluded.
    OutOfBudget,
}

/// The four-copy 2-DIP miter; see the [module documentation](self).
///
/// # Example
///
/// ```
/// use almost_aig::Aig;
/// use almost_sat::double_dip::{DoubleDipMiter, TwoDipSearch};
///
/// // f = a ⊕ k: both wrong-key classes err on every input, so a 2-DIP
/// // never exists (a pair would need two distinct agreeing keys).
/// let mut locked = Aig::new();
/// let a = locked.add_input();
/// let k = locked.add_named_input("keyinput0");
/// let f = locked.xor(a, k);
/// locked.add_output(f);
/// let mut miter = DoubleDipMiter::new(&locked, 1, 1);
/// assert_eq!(miter.find_2dip(None), TwoDipSearch::Settled);
/// ```
pub struct DoubleDipMiter {
    solver: PortfolioSolver,
    locked: Aig,
    key_start: usize,
    key_len: usize,
    x_vars: Vec<SatVar>,
    /// Key copies `[K1, K2, K3, K4]`: pairs (K1, K2) and (K3, K4).
    keys: [Vec<SatVar>; 4],
    /// Guard for the pair-agreement/disagreement structure.
    act: SatLit,
    num_constraints: usize,
}

impl DoubleDipMiter {
    /// Builds the 2-DIP miter for `locked`, whose key inputs occupy input
    /// positions `key_start .. key_start + key_len`.
    ///
    /// # Panics
    ///
    /// Panics if the key range exceeds the circuit's inputs or the circuit
    /// has no outputs.
    pub fn new(locked: &Aig, key_start: usize, key_len: usize) -> Self {
        Self::with_probes(locked, key_start, key_len, &[])
    }

    /// Like [`DoubleDipMiter::new`], but sweeps the locked circuit with
    /// [`almost_aig::fraig`] before encoding. The four-copy miter
    /// amplifies any netlist reduction fourfold (every copy — and every
    /// probe residue — encodes the swept network), which is why the 2-DIP
    /// loop benefits even more from the pre-pass than the classic miter.
    /// Interface order and names are preserved; opt-in for the same
    /// reason as [`KeyMiter::with_fraig_prepass`](crate::KeyMiter::with_fraig_prepass).
    ///
    /// # Panics
    ///
    /// Panics if the key range exceeds the circuit's inputs or the circuit
    /// has no outputs.
    pub fn with_fraig_prepass(locked: &Aig, key_start: usize, key_len: usize) -> Self {
        let swept = almost_aig::fraig(locked);
        Self::with_probes(&swept, key_start, key_len, &[])
    }

    /// Builds the miter with pair-agreement *probes*: on every probe input
    /// the two keys of each pair must produce identical outputs. Probes
    /// are encoded as constant-folded key residues (cheap) and consume no
    /// oracle queries; see the [module documentation](self) for why they
    /// keep the loop from enumerating flip cylinders.
    ///
    /// # Panics
    ///
    /// Panics if the key range exceeds the circuit's inputs, the circuit
    /// has no outputs, or a probe has the wrong arity.
    pub fn with_probes(
        locked: &Aig,
        key_start: usize,
        key_len: usize,
        probes: &[Vec<bool>],
    ) -> Self {
        assert!(
            key_start + key_len <= locked.num_inputs(),
            "key range out of bounds"
        );
        assert!(locked.num_outputs() > 0, "miter needs outputs to compare");
        let mut solver = PortfolioSolver::new("double_dip_miter");
        let num_data = locked.num_inputs() - key_len;
        let x_vars: Vec<SatVar> = (0..num_data).map(|_| solver.new_var()).collect();
        let keys: [Vec<SatVar>; 4] =
            std::array::from_fn(|_| (0..key_len).map(|_| solver.new_var()).collect::<Vec<_>>());

        let no_overrides = HashMap::new();
        let cnfs: Vec<_> = keys
            .iter()
            .map(|key_vars| {
                let inputs = splice_inputs(&x_vars, key_vars, key_start);
                encode_with_inputs(&mut solver, locked, &inputs, &no_overrides)
            })
            .collect();

        let act = SatLit::positive(solver.new_var());
        // act → the copies within each pair agree on every output.
        for (p, q) in [(0, 1), (2, 3)] {
            for (&lp, &lq) in cnfs[p].output_lits.iter().zip(&cnfs[q].output_lits) {
                solver.add_clause(&[!act, !lp, lq]);
                solver.add_clause(&[!act, lp, !lq]);
            }
        }
        // act → the pairs disagree on at least one output.
        let mut diff: Vec<SatLit> = vec![!act];
        for (&la, &lb) in cnfs[0].output_lits.iter().zip(&cnfs[2].output_lits) {
            diff.push(encode_xor(&mut solver, la, lb));
        }
        solver.add_clause(&diff);
        // act → the keys within each pair are bitwise distinct (otherwise
        // a pair could be one key counted twice and the 2-elimination
        // guarantee collapses to the classical single-DIP bound).
        for (p, q) in [(0usize, 1usize), (2, 3)] {
            let mut distinct: Vec<SatLit> = vec![!act];
            for (&vp, &vq) in keys[p].iter().zip(&keys[q]) {
                distinct.push(encode_xor(
                    &mut solver,
                    SatLit::positive(vp),
                    SatLit::positive(vq),
                ));
            }
            solver.add_clause(&distinct);
        }
        // act → pair members agree on every probe input (constant-folded
        // key residues; no oracle involvement).
        for probe in probes {
            assert_eq!(probe.len(), num_data, "probe arity mismatch");
            let residue = restrict_to_keys(locked, key_start, key_len, probe);
            for (p, q) in [(0usize, 1usize), (2, 3)] {
                let cp = encode_with_inputs(&mut solver, &residue, &keys[p], &no_overrides);
                let cq = encode_with_inputs(&mut solver, &residue, &keys[q], &no_overrides);
                for (&lp, &lq) in cp.output_lits.iter().zip(&cq.output_lits) {
                    solver.add_clause(&[!act, !lp, lq]);
                    solver.add_clause(&[!act, lp, !lq]);
                }
            }
        }

        DoubleDipMiter {
            solver,
            locked: locked.clone(),
            key_start,
            key_len,
            x_vars,
            keys,
            act,
            num_constraints: 0,
        }
    }

    /// Searches for a 2-distinguishing input pattern.
    ///
    /// With `max_conflicts = None` the query runs to completion; with a
    /// budget it may return [`TwoDipSearch::OutOfBudget`].
    pub fn find_2dip(&mut self, max_conflicts: Option<u64>) -> TwoDipSearch {
        match self.solver.try_solve(&[self.act], max_conflicts) {
            Err(interrupt) => {
                let budget = max_conflicts.unwrap_or(0);
                almost_telemetry::trace(|| almost_telemetry::EventKind::BudgetExhausted {
                    engine: "double_dip_miter",
                    budget,
                    conflicts: self.solver.stats().conflicts,
                    cause: interrupt.cause(),
                });
                TwoDipSearch::OutOfBudget
            }
            Ok(SatResult::Unsat) => TwoDipSearch::Settled,
            Ok(SatResult::Sat) => TwoDipSearch::Found(
                self.x_vars
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Adds the oracle response `outputs = C*(inputs)` as a constraint on
    /// all four key copies (input-restricted residues, as in
    /// [`KeyMiter::constrain_io`](crate::KeyMiter::constrain_io)).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` have the wrong arity.
    pub fn constrain_io(&mut self, inputs: &[bool], outputs: &[bool]) {
        assert_eq!(inputs.len(), self.x_vars.len(), "input arity mismatch");
        assert_eq!(
            outputs.len(),
            self.locked.num_outputs(),
            "output arity mismatch"
        );
        let residue = restrict_to_keys(&self.locked, self.key_start, self.key_len, inputs);
        let no_overrides = HashMap::new();
        for key_vars in self.keys.clone() {
            let cnf = encode_with_inputs(&mut self.solver, &residue, &key_vars, &no_overrides);
            for (&lit, &want) in cnf.output_lits.iter().zip(outputs) {
                self.solver.add_clause(&[if want { lit } else { !lit }]);
            }
        }
        self.num_constraints += 1;
    }

    /// Extracts a key consistent with every added I/O constraint. After
    /// [`TwoDipSearch::Settled`], the key is correct on every input where
    /// more than one key class could err — i.e. the base scheme of a
    /// stacked point-function lock is recovered exactly.
    ///
    /// Returns `None` only if the constraints are contradictory, which
    /// indicates an inconsistent oracle.
    pub fn settle_key(&mut self) -> Option<Vec<bool>> {
        match self.solver.try_solve(&[!self.act], None) {
            Err(interrupt) => {
                // Only an external cancellation can interrupt an
                // unlimited query; report it like a budget exhaustion and
                // yield no key.
                almost_telemetry::trace(|| almost_telemetry::EventKind::BudgetExhausted {
                    engine: "double_dip_miter",
                    budget: 0,
                    conflicts: self.solver.stats().conflicts,
                    cause: interrupt.cause(),
                });
                None
            }
            Ok(SatResult::Unsat) => None,
            Ok(SatResult::Sat) => Some(
                self.keys[0]
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Number of I/O constraints added so far (= oracle queries consumed).
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Number of functional (non-key) inputs.
    pub fn num_data_inputs(&self) -> usize {
        self.x_vars.len()
    }

    /// Key width.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Cumulative solver-effort statistics.
    pub fn solver_stats(&self) -> crate::solver::SolverStats {
        self.solver.stats()
    }

    /// Solver size: (variables, clauses).
    pub fn solver_size(&self) -> (usize, usize) {
        (self.solver.num_vars(), self.solver.num_clauses())
    }

    /// Cumulative portfolio counters (races, wins, exchange volume).
    pub fn portfolio_stats(&self) -> PortfolioStats {
        self.solver.portfolio_stats()
    }

    /// Installs an external cancellation flag: raising it makes every
    /// subsequent query return [`TwoDipSearch::OutOfBudget`] (reported
    /// with `cause: "cancelled"` in telemetry).
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.solver.set_stop_flag(flag);
    }
}

impl std::fmt::Debug for DoubleDipMiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (vars, clauses) = self.solver_size();
        write!(
            f,
            "DoubleDipMiter {{ key_len: {}, constraints: {}, vars: {vars}, clauses: {clauses} }}",
            self.key_len, self.num_constraints
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-bit toy where wrong keys come in agreeing groups: f = a ⊕ (k₀ ∧
    /// k₁). Correct keys {00, 01, 10} all yield f = a; key 11 yields ¬a.
    fn group_locked() -> Aig {
        let mut locked = Aig::new();
        let a = locked.add_input();
        let k0 = locked.add_named_input("keyinput0");
        let k1 = locked.add_named_input("keyinput1");
        let t = locked.and(k0, k1);
        let f = locked.xor(a, t);
        locked.add_output(f);
        locked
    }

    #[test]
    fn two_dip_exists_when_two_keys_err_together() {
        // Pair A = two of {00, 01, 10}, pair B needs two distinct agreeing
        // keys too — but the dissenting class {11} is a single key, so no
        // 2-DIP exists even though a classical DIP does.
        let mut miter = DoubleDipMiter::new(&group_locked(), 1, 2);
        assert_eq!(miter.find_2dip(None), TwoDipSearch::Settled);

        // Widen the dissenting class to two keys: f = a ⊕ k₀ makes {1x}
        // a two-key agreeing wrong class. Now a 2-DIP must exist.
        let mut locked = Aig::new();
        let a = locked.add_input();
        let k0 = locked.add_named_input("keyinput0");
        let _k1 = locked.add_named_input("keyinput1");
        let f = locked.xor(a, k0);
        locked.add_output(f);
        let mut miter = DoubleDipMiter::new(&locked, 1, 2);
        match miter.find_2dip(None) {
            TwoDipSearch::Found(x) => {
                // Oracle: correct key has k₀ = 0, so y = a.
                miter.constrain_io(&x, &x);
            }
            other => panic!("a 2-DIP must exist, got {other:?}"),
        }
        assert_eq!(miter.find_2dip(None), TwoDipSearch::Settled);
        let key = miter.settle_key().expect("consistent");
        assert!(!key[0], "k₀ = 0 is pinned by the 2-DIP constraint");
    }

    #[test]
    fn fraig_prepass_preserves_the_2dip_verdict() {
        // Pad the group-locked toy with a redundant duplicate of its key
        // cone; the swept miter must reach the same settled verdict.
        let mut locked = Aig::new();
        let a = locked.add_input();
        let k0 = locked.add_named_input("keyinput0");
        let k1 = locked.add_named_input("keyinput1");
        let t = locked.and(k0, k1);
        let u = locked.or(k1, t); // ≡ k₁ (absorption)
        let t2 = locked.and(k0, u); // ≡ k₀ ∧ k₁, duplicated cone
        let f = locked.xor(a, t2);
        locked.add_output(f);
        let mut miter = DoubleDipMiter::with_fraig_prepass(&locked, 1, 2);
        assert_eq!(miter.find_2dip(None), TwoDipSearch::Settled);
        let key = miter.settle_key().expect("consistent");
        assert_eq!(key.len(), 2);
    }

    #[test]
    fn settled_key_is_consistent_with_constraints() {
        let locked = group_locked();
        let mut miter = DoubleDipMiter::new(&locked, 1, 2);
        // Constrain with the correct oracle (f = a) on both input values.
        miter.constrain_io(&[false], &[false]);
        miter.constrain_io(&[true], &[true]);
        let key = miter.settle_key().expect("consistent");
        assert!(!(key[0] && key[1]), "key 11 contradicts the constraints");
        assert_eq!(miter.num_constraints(), 2);
    }

    #[test]
    fn inconsistent_oracle_is_detected() {
        let locked = group_locked();
        let mut miter = DoubleDipMiter::new(&locked, 1, 2);
        miter.constrain_io(&[true], &[true]);
        miter.constrain_io(&[true], &[false]);
        assert_eq!(miter.settle_key(), None);
    }

    #[test]
    fn budgeted_search_reports_exhaustion_without_corruption() {
        let mut locked = Aig::new();
        let a = locked.add_input();
        let k0 = locked.add_named_input("keyinput0");
        let _k1 = locked.add_named_input("keyinput1");
        let f = locked.xor(a, k0);
        locked.add_output(f);
        let mut miter = DoubleDipMiter::new(&locked, 1, 2);
        let mut iterations = 0;
        loop {
            match miter.find_2dip(Some(1)) {
                TwoDipSearch::Found(x) => miter.constrain_io(&x, &x),
                TwoDipSearch::Settled => break,
                TwoDipSearch::OutOfBudget => match miter.find_2dip(None) {
                    TwoDipSearch::Found(x) => miter.constrain_io(&x, &x),
                    TwoDipSearch::Settled => break,
                    TwoDipSearch::OutOfBudget => unreachable!("unlimited retry"),
                },
            }
            iterations += 1;
            assert!(iterations <= 16, "2-DIP loop diverged");
        }
        assert!(miter.settle_key().is_some());
    }
}
