//! SAT-based combinational equivalence checking (CEC) and stuck-at-fault
//! test-pattern generation (ATPG).
//!
//! Both build the classic *miter*: two circuit copies share the primary
//! inputs; corresponding outputs are XOR-ed and the solver searches for an
//! input assignment that makes any XOR true.

use crate::cnf::{encode_with_inputs, encode_xor};
use crate::portfolio::PortfolioSolver;
use crate::solver::{SatLit, SatResult, SatVar, Solver};
use almost_aig::{fraig_with, Aig, FraigConfig, Lit, Var};
use std::collections::HashMap;

/// Outcome of a combinational equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// The two circuits are functionally identical on every output.
    Equivalent,
    /// A distinguishing input assignment (in primary-input order).
    Counterexample(Vec<bool>),
}

/// Proves or refutes functional equivalence of two AIGs with identical
/// interfaces — *fraig-first*.
///
/// The two circuits are copied into one joint netlist over shared
/// inputs, where the structural hash already identifies every
/// syntactically shared cone, and the joint network is then swept by
/// [`almost_aig::fraig`]: simulation signatures partition the nodes into
/// candidate classes, and one incremental SAT solver proves (or refutes,
/// feeding the counterexample back into the signatures) the candidates
/// pair by pair, from the inputs outward. Output pairs whose cones merge
/// collapse to the *identical literal* — proved equivalent without ever
/// posing the monolithic miter query. Only the residual output pairs
/// (if any) go to a final SAT call, which typically has most of its
/// internal equivalences already merged away.
///
/// This is why no conflict budget is needed here: sweeping decomposes
/// the proof into many small input-to-output queries, which is
/// dramatically faster than the single end-to-end miter on structurally
/// similar circuits (the common CEC case: original vs. resynthesized,
/// locked vs. key-programmed). Hard *residual* queries are escalated by
/// the sweep to a portfolio honouring `ALMOST_SOLVERS`.
///
/// For adversarial inner loops that only need a cheap score, prefer
/// [`check_equivalence_limited`].
///
/// # Panics
///
/// Panics if the input or output counts differ.
pub fn check_equivalence(a: &Aig, b: &Aig) -> Equivalence {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");

    // One joint netlist over shared inputs: strash unifies shared
    // structure immediately, the sweep merges the semantically equal
    // rest.
    let mut joint = Aig::new();
    let inputs: Vec<Lit> = (0..a.num_inputs()).map(|_| joint.add_input()).collect();
    let leaf_map_a: HashMap<Var, Lit> = a
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, inputs[i]))
        .collect();
    let outs_a = a.copy_cone_into(&mut joint, a.outputs(), &leaf_map_a);
    let leaf_map_b: HashMap<Var, Lit> = b
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, inputs[i]))
        .collect();
    let outs_b = b.copy_cone_into(&mut joint, b.outputs(), &leaf_map_b);
    for &o in outs_a.iter().chain(&outs_b) {
        joint.add_output(o);
    }

    let (swept, _stats) = fraig_with(&joint, &FraigConfig::default());
    let n = a.num_outputs();
    let residual: Vec<usize> = (0..n)
        .filter(|&i| swept.outputs()[i] != swept.outputs()[i + n])
        .collect();
    if residual.is_empty() {
        return Equivalence::Equivalent;
    }

    // Residual outputs: the sweep could not merge them (either truly
    // inequivalent, or equivalent only through a proof it skipped).
    // Settle them with one unbudgeted portfolio query over the swept —
    // already internally reduced — network.
    let mut solver = PortfolioSolver::new("cec");
    let input_vars: Vec<SatVar> = (0..swept.num_inputs()).map(|_| solver.new_var()).collect();
    let cnf = encode_with_inputs(&mut solver, &swept, &input_vars, &HashMap::new());
    let diffs: Vec<SatLit> = residual
        .iter()
        .map(|&i| encode_xor(&mut solver, cnf.output_lits[i], cnf.output_lits[i + n]))
        .collect();
    solver.add_clause(&diffs);
    match solver.solve(&[]) {
        SatResult::Unsat => Equivalence::Equivalent,
        SatResult::Sat => Equivalence::Counterexample(
            input_vars
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect(),
        ),
    }
}

/// Like [`check_equivalence`], but monolithic and budgeted: one
/// end-to-end miter, solved until `max_conflicts` conflicts, returning
/// `None` (undecided) when the budget trips.
///
/// This is the **legacy scoring path**, kept deliberately: arithmetic
/// miters — the c6288-style multiplier above all — are exponentially hard
/// for resolution, and callers that *score* rather than *certify* (the
/// adversarial inner simulated-annealing loop, attack report rows) want a
/// fixed, small effort ceiling and a graceful `None`, not a fraig sweep
/// whose counterexample refinement they would pay for on every candidate.
/// Use [`check_equivalence`] (fraig-first, unbudgeted) whenever the
/// answer must be definitive: certification walls, envelope tests, CI
/// parity checks.
///
/// # Panics
///
/// Panics if the input or output counts differ.
pub fn check_equivalence_limited(a: &Aig, b: &Aig, max_conflicts: u64) -> Option<Equivalence> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut solver = Solver::new();
    let inputs: Vec<SatVar> = (0..a.num_inputs()).map(|_| solver.new_var()).collect();
    let no_overrides = HashMap::new();
    let cnf_a = encode_with_inputs(&mut solver, a, &inputs, &no_overrides);
    let cnf_b = encode_with_inputs(&mut solver, b, &inputs, &no_overrides);

    let diffs: Vec<SatLit> = cnf_a
        .output_lits
        .iter()
        .zip(&cnf_b.output_lits)
        .map(|(&la, &lb)| encode_xor(&mut solver, la, lb))
        .collect();
    solver.add_clause(&diffs);

    match solver.solve_limited(&[], max_conflicts)? {
        SatResult::Unsat => Some(Equivalence::Equivalent),
        SatResult::Sat => {
            let pattern = inputs
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect();
            Some(Equivalence::Counterexample(pattern))
        }
    }
}

/// Searches for a test pattern exposing the stuck-at-`stuck_value` fault on
/// AIG node `node`.
///
/// Returns `Some(pattern)` (primary-input assignment) if the fault is
/// testable, `None` if it is *untestable* (redundant) — the quantity the
/// redundancy attack counts.
///
/// # Panics
///
/// Panics if `node` is out of range for `aig`.
pub fn test_stuck_at(aig: &Aig, node: Var, stuck_value: bool) -> Option<Vec<bool>> {
    assert!((node as usize) < aig.num_nodes());
    let mut solver = Solver::new();
    let inputs: Vec<SatVar> = (0..aig.num_inputs()).map(|_| solver.new_var()).collect();
    let good = encode_with_inputs(&mut solver, aig, &inputs, &HashMap::new());
    let mut overrides = HashMap::new();
    overrides.insert(node, stuck_value);
    let faulty = encode_with_inputs(&mut solver, aig, &inputs, &overrides);

    let diffs: Vec<SatLit> = good
        .output_lits
        .iter()
        .zip(&faulty.output_lits)
        .map(|(&la, &lb)| encode_xor(&mut solver, la, lb))
        .collect();
    solver.add_clause(&diffs);

    match solver.solve(&[]) {
        SatResult::Unsat => None,
        SatResult::Sat => Some(
            inputs
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_aig::passes::Script;
    use almost_aig::{Aig, Pass};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aig = Aig::new();
        let mut pool: Vec<almost_aig::Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
        while aig.num_ands() < num_ands {
            let a = pool[rng.random_range(0..pool.len())];
            let b = pool[rng.random_range(0..pool.len())];
            let lit = aig.and(
                a.xor_complement(rng.random()),
                b.xor_complement(rng.random()),
            );
            if !lit.is_const() {
                pool.push(lit);
            }
        }
        for i in 0..3.min(pool.len()) {
            let lit = pool[pool.len() - 1 - i];
            aig.add_output(lit);
        }
        aig
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let aig = random_aig(6, 40, 1);
        assert_eq!(
            check_equivalence(&aig, &aig.clone()),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn synthesis_passes_proved_equivalent() {
        // The strongest validation of the synthesis substrate: SAT-proved
        // equivalence after every pass, not just random simulation.
        let aig = random_aig(8, 60, 2);
        for pass in Pass::ALL {
            let out = pass.apply(&aig);
            assert_eq!(
                check_equivalence(&aig, &out),
                Equivalence::Equivalent,
                "{pass} is not equivalence-preserving"
            );
        }
    }

    #[test]
    fn resyn2_proved_equivalent() {
        let aig = random_aig(8, 80, 3);
        let out = Script::resyn2().apply(&aig);
        assert_eq!(check_equivalence(&aig, &out), Equivalence::Equivalent);
    }

    #[test]
    fn counterexample_is_reported_and_valid() {
        let mut a = Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let f = a.and(x, y);
        a.add_output(f);
        let mut b = Aig::new();
        let x2 = b.add_input();
        let y2 = b.add_input();
        let g = b.or(x2, y2);
        b.add_output(g);
        match check_equivalence(&a, &b) {
            Equivalence::Counterexample(pattern) => {
                assert_ne!(a.eval(&pattern), b.eval(&pattern));
            }
            Equivalence::Equivalent => panic!("AND and OR are not equivalent"),
        }
    }

    #[test]
    fn testable_fault_has_valid_pattern() {
        // f = a & b: stuck-at-0 on f is testable with a=b=1.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let pattern = test_stuck_at(&aig, f.var(), false).expect("testable");
        assert_eq!(pattern, vec![true, true]);
    }

    #[test]
    fn untestable_fault_detected() {
        // out = x | (x & y) == x: the redundant (x & y) node's stuck-at-0 is
        // untestable, while its stuck-at-1 is exposed by x=0 (good out = 0,
        // faulty out = 1).
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let xy = aig.and(x, y);
        let out = aig.or(x, xy);
        aig.add_output(out);
        assert!(test_stuck_at(&aig, xy.var(), false).is_none());
        assert!(test_stuck_at(&aig, xy.var(), true).is_some());
    }
}
