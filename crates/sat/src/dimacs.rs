//! DIMACS CNF reader/writer — interop with external SAT tooling.

use crate::solver::{SatLit, SatVar, Solver};
use std::fmt;

/// Error from [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError(String);

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error: {}", self.0)
    }
}

impl std::error::Error for ParseDimacsError {}

/// A plain CNF: clause list over 1-based DIMACS variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// An empty CNF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clause of non-zero DIMACS literals.
    ///
    /// # Panics
    ///
    /// Panics if any literal is zero.
    pub fn add_clause(&mut self, lits: &[i32]) {
        assert!(lits.iter().all(|&l| l != 0), "0 terminates DIMACS clauses");
        for &l in lits {
            self.num_vars = self.num_vars.max(l.unsigned_abs() as usize);
        }
        self.clauses.push(lits.to_vec());
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// Loads the CNF into a fresh [`Solver`]; returns the solver and the
    /// solver variable of DIMACS variable 1 (variables are allocated
    /// contiguously, so DIMACS var `k` is `first + k - 1`).
    pub fn into_solver(&self) -> (Solver, SatVar) {
        let mut solver = Solver::new();
        let first = solver.new_var();
        for _ in 1..self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            let lits: Vec<SatLit> = clause
                .iter()
                .map(|&l| SatLit::new(first + l.unsigned_abs() - 1, l < 0))
                .collect();
            solver.add_clause(&lits);
        }
        (solver, first)
    }
}

/// Serialises a CNF in DIMACS format.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars(), cnf.clauses().len());
    for clause in cnf.clauses() {
        for l in clause {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] for a missing/malformed problem line or
/// non-integer tokens.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new();
    let mut declared: Option<(usize, usize)> = None;
    let mut current: Vec<i32> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(ParseDimacsError(format!("bad problem line `{line}`")));
            }
            let nv = fields[1]
                .parse()
                .map_err(|_| ParseDimacsError("bad var count".into()))?;
            let nc = fields[2]
                .parse()
                .map_err(|_| ParseDimacsError("bad clause count".into()))?;
            declared = Some((nv, nc));
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i32 = tok
                .parse()
                .map_err(|_| ParseDimacsError(format!("bad literal `{tok}`")))?;
            if v == 0 {
                cnf.add_clause(&current.clone());
                current.clear();
            } else {
                current.push(v);
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(&current);
    }
    if declared.is_none() {
        return Err(ParseDimacsError("missing problem line".into()));
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        cnf.add_clause(&[1, -2]);
        cnf.add_clause(&[2, 3]);
        let text = write_dimacs(&cnf);
        let back = parse_dimacs(&text).expect("round-trips");
        assert_eq!(back, cnf);
    }

    #[test]
    fn solves_parsed_instance() {
        let text = "c demo\np cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = parse_dimacs(text).expect("parses");
        let (mut solver, first) = cnf.into_solver();
        assert_eq!(solver.solve(&[]), SatResult::Sat);
        assert_eq!(solver.value(first), Some(false)); // var 1 forced false
        assert_eq!(solver.value(first + 1), Some(true)); // so var 2 true
    }

    #[test]
    fn detects_unsat_instance() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let (mut solver, _) = parse_dimacs(text).expect("parses").into_solver();
        assert_eq!(solver.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("p cnf x 2\n").is_err());
        assert!(parse_dimacs("1 2 0\n").is_err(), "missing problem line");
        assert!(parse_dimacs("p cnf 2 1\n1 q 0\n").is_err());
    }
}
