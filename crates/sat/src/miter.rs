//! Key-conditioned miters for oracle-guided (SAT) attacks.
//!
//! The classic SAT attack on logic locking [Subramanyan et al., HOST'15]
//! works on a *key-conditioned miter*: two copies of the locked circuit
//! `C(x, k₁)` and `C(x, k₂)` share their functional inputs `x` but carry
//! independent key variables, and the solver searches for an assignment
//! where at least one output pair differs. Such an `x` is a
//! *distinguishing input pattern* (DIP): it witnesses that `k₁` and `k₂`
//! cannot both be correct. After querying the oracle (the activated chip)
//! for the true output `y = C*(x)`, the constraints `C(x, k₁) = y` and
//! `C(x, k₂) = y` are added and the search repeats. When the miter goes
//! UNSAT, *every* key consistent with the accumulated I/O pairs is
//! functionally correct, and one is extracted with [`KeyMiter::settle_key`].
//!
//! [`KeyMiter`] implements the circuit plumbing on the incremental CDCL
//! solver: the difference clause is guarded by an activation literal so the
//! same solver answers both the DIP query (assume the guard) and the key
//! settlement (release it), keeping every learnt clause across iterations.
//! I/O constraints are added as *input-restricted* circuit copies — the
//! functional inputs are constant-folded out of the AIG before encoding, so
//! each iteration only adds the key-dependent cone instead of a full
//! circuit copy.

use crate::cnf::{encode_with_inputs, encode_xor};
use crate::portfolio::{PortfolioSolver, PortfolioStats};
use crate::solver::{SatLit, SatResult, SatVar};
use almost_aig::{Aig, Lit, NodeKind};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Outcome of one DIP query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DipSearch {
    /// A distinguishing input pattern over the functional inputs (in input
    /// order, key positions excluded).
    Found(Vec<bool>),
    /// No DIP exists: all keys consistent with the added I/O constraints
    /// are functionally equivalent — the attack has converged.
    Settled,
    /// The conflict budget ran out before the query concluded
    /// (approximate/AppSAT mode only).
    OutOfBudget,
}

/// A key-conditioned miter over a locked circuit; see the
/// [module documentation](self).
///
/// # Example
///
/// ```
/// use almost_aig::Aig;
/// use almost_sat::miter::{DipSearch, KeyMiter};
///
/// // Locked circuit: f = a ⊕ k (key input last), correct key k = 0.
/// let mut locked = Aig::new();
/// let a = locked.add_input();
/// let k = locked.add_named_input("keyinput0");
/// let f = locked.xor(a, k);
/// locked.add_output(f);
///
/// let mut miter = KeyMiter::new(&locked, 1, 1);
/// match miter.find_dip(None) {
///     DipSearch::Found(x) => {
///         // Oracle: f = a, so y = x.
///         miter.constrain_io(&x, &x);
///     }
///     other => panic!("one DIP must exist, got {other:?}"),
/// }
/// assert_eq!(miter.find_dip(None), DipSearch::Settled);
/// assert_eq!(miter.settle_key(), Some(vec![false]));
/// ```
pub struct KeyMiter {
    solver: PortfolioSolver,
    locked: Aig,
    key_start: usize,
    key_len: usize,
    x_vars: Vec<SatVar>,
    key_a: Vec<SatVar>,
    key_b: Vec<SatVar>,
    /// Guard literal for the output-difference clause: assumed positive to
    /// search DIPs, negative to settle a key.
    act: SatLit,
    num_constraints: usize,
}

impl KeyMiter {
    /// Builds the miter for `locked`, whose key inputs occupy input
    /// positions `key_start .. key_start + key_len` (the
    /// `almost_locking::LockedCircuit` convention).
    ///
    /// # Panics
    ///
    /// Panics if the key range exceeds the circuit's inputs or the circuit
    /// has no outputs.
    pub fn new(locked: &Aig, key_start: usize, key_len: usize) -> Self {
        Self::build(locked, key_start, key_len, false)
    }

    /// Like [`KeyMiter::new`], but sweeps the locked circuit with
    /// [`almost_aig::fraig`] before encoding. The sweep merges every
    /// internally equivalent node once, up front — both circuit copies
    /// (and every later input-restricted I/O copy) then encode the
    /// reduced network, shrinking the CNF the DIP loop iterates on. The
    /// interface (input order and names, output order) is preserved, so
    /// key positions are unaffected.
    ///
    /// Opt-in: on netlists with little internal redundancy the sweep is
    /// pure overhead, and attack-effort comparisons against published
    /// SAT-attack numbers should keep the plain construction.
    ///
    /// # Panics
    ///
    /// Panics if the key range exceeds the circuit's inputs or the circuit
    /// has no outputs.
    pub fn with_fraig_prepass(locked: &Aig, key_start: usize, key_len: usize) -> Self {
        Self::build(locked, key_start, key_len, true)
    }

    fn build(locked: &Aig, key_start: usize, key_len: usize, fraig: bool) -> Self {
        assert!(
            key_start + key_len <= locked.num_inputs(),
            "key range out of bounds"
        );
        let swept;
        let locked = if fraig {
            swept = almost_aig::fraig(locked);
            &swept
        } else {
            locked
        };
        assert!(locked.num_outputs() > 0, "miter needs outputs to compare");
        let mut solver = PortfolioSolver::new("key_miter");
        let num_data = locked.num_inputs() - key_len;
        let x_vars: Vec<SatVar> = (0..num_data).map(|_| solver.new_var()).collect();
        let key_a: Vec<SatVar> = (0..key_len).map(|_| solver.new_var()).collect();
        let key_b: Vec<SatVar> = (0..key_len).map(|_| solver.new_var()).collect();

        let inputs_a = splice_inputs(&x_vars, &key_a, key_start);
        let inputs_b = splice_inputs(&x_vars, &key_b, key_start);
        let no_overrides = HashMap::new();
        let cnf_a = encode_with_inputs(&mut solver, locked, &inputs_a, &no_overrides);
        let cnf_b = encode_with_inputs(&mut solver, locked, &inputs_b, &no_overrides);

        // Difference clause, guarded: act → (some output pair differs).
        let act = SatLit::positive(solver.new_var());
        let mut clause: Vec<SatLit> = vec![!act];
        for (&la, &lb) in cnf_a.output_lits.iter().zip(&cnf_b.output_lits) {
            clause.push(encode_xor(&mut solver, la, lb));
        }
        solver.add_clause(&clause);

        KeyMiter {
            solver,
            locked: locked.clone(),
            key_start,
            key_len,
            x_vars,
            key_a,
            key_b,
            act,
            num_constraints: 0,
        }
    }

    /// Searches for a distinguishing input pattern.
    ///
    /// With `max_conflicts = None` the query runs to completion; with a
    /// budget it may return [`DipSearch::OutOfBudget`].
    pub fn find_dip(&mut self, max_conflicts: Option<u64>) -> DipSearch {
        match self.solver.try_solve(&[self.act], max_conflicts) {
            Err(interrupt) => {
                let budget = max_conflicts.unwrap_or(0);
                almost_telemetry::trace(|| almost_telemetry::EventKind::BudgetExhausted {
                    engine: "key_miter",
                    budget,
                    conflicts: self.solver.stats().conflicts,
                    cause: interrupt.cause(),
                });
                DipSearch::OutOfBudget
            }
            Ok(SatResult::Unsat) => DipSearch::Settled,
            Ok(SatResult::Sat) => DipSearch::Found(
                self.x_vars
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Adds the oracle response `outputs = C*(inputs)` as a constraint on
    /// both key copies.
    ///
    /// The locked circuit is first specialised to the constant `inputs`
    /// (constant propagation through AIG construction), so only the
    /// key-dependent residue is Tseitin-encoded — typically a small
    /// fraction of the circuit.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` have the wrong arity.
    pub fn constrain_io(&mut self, inputs: &[bool], outputs: &[bool]) {
        assert_eq!(inputs.len(), self.x_vars.len(), "input arity mismatch");
        assert_eq!(
            outputs.len(),
            self.locked.num_outputs(),
            "output arity mismatch"
        );
        let residue = restrict_to_keys(&self.locked, self.key_start, self.key_len, inputs);
        let no_overrides = HashMap::new();
        for key_vars in [self.key_a.clone(), self.key_b.clone()] {
            let cnf = encode_with_inputs(&mut self.solver, &residue, &key_vars, &no_overrides);
            for (&lit, &want) in cnf.output_lits.iter().zip(outputs) {
                self.solver.add_clause(&[if want { lit } else { !lit }]);
            }
        }
        self.num_constraints += 1;
    }

    /// Extracts a key consistent with every added I/O constraint (the
    /// correct key once [`DipSearch::Settled`] has been observed; the best
    /// current candidate in approximate mode).
    ///
    /// Returns `None` only if the constraints are contradictory, which
    /// indicates an inconsistent oracle.
    pub fn settle_key(&mut self) -> Option<Vec<bool>> {
        match self.solver.try_solve(&[!self.act], None) {
            Err(interrupt) => {
                // Only an external cancellation can interrupt an
                // unlimited query; report it like a budget exhaustion and
                // yield no key.
                almost_telemetry::trace(|| almost_telemetry::EventKind::BudgetExhausted {
                    engine: "key_miter",
                    budget: 0,
                    conflicts: self.solver.stats().conflicts,
                    cause: interrupt.cause(),
                });
                None
            }
            Ok(SatResult::Unsat) => None,
            Ok(SatResult::Sat) => Some(
                self.key_a
                    .iter()
                    .map(|&v| self.solver.value(v).unwrap_or(false))
                    .collect(),
            ),
        }
    }

    /// Number of I/O constraints added so far (= oracle queries consumed).
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// Number of functional (non-key) inputs.
    pub fn num_data_inputs(&self) -> usize {
        self.x_vars.len()
    }

    /// Key width.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Cumulative solver-effort statistics.
    pub fn solver_stats(&self) -> crate::solver::SolverStats {
        self.solver.stats()
    }

    /// Solver size: (variables, clauses).
    pub fn solver_size(&self) -> (usize, usize) {
        (self.solver.num_vars(), self.solver.num_clauses())
    }

    /// Cumulative portfolio counters (races, wins, exchange volume).
    pub fn portfolio_stats(&self) -> PortfolioStats {
        self.solver.portfolio_stats()
    }

    /// Installs an external cancellation flag: raising it makes every
    /// subsequent query return [`DipSearch::OutOfBudget`] (reported with
    /// `cause: "cancelled"` in telemetry).
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.solver.set_stop_flag(flag);
    }
}

impl std::fmt::Debug for KeyMiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (vars, clauses) = self.solver_size();
        write!(
            f,
            "KeyMiter {{ key_len: {}, constraints: {}, vars: {vars}, clauses: {clauses} }}",
            self.key_len, self.num_constraints
        )
    }
}

/// Interleaves shared data variables and per-copy key variables into the
/// locked circuit's input order.
pub(crate) fn splice_inputs(
    x_vars: &[SatVar],
    key_vars: &[SatVar],
    key_start: usize,
) -> Vec<SatVar> {
    let mut inputs = Vec::with_capacity(x_vars.len() + key_vars.len());
    inputs.extend_from_slice(&x_vars[..key_start]);
    inputs.extend_from_slice(key_vars);
    inputs.extend_from_slice(&x_vars[key_start..]);
    inputs
}

/// Specialises `locked` under constant functional inputs, leaving exactly
/// the key inputs (in order) as the inputs of the returned AIG.
pub(crate) fn restrict_to_keys(
    locked: &Aig,
    key_start: usize,
    key_len: usize,
    data: &[bool],
) -> Aig {
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; locked.num_nodes()];
    let mut data_iter = data.iter();
    for i in 0..locked.num_inputs() {
        let var = locked.inputs()[i];
        map[var as usize] = if (key_start..key_start + key_len).contains(&i) {
            new.add_named_input(locked.input_name(i).to_string())
        } else {
            let &value = data_iter.next().expect("data arity checked by caller");
            if value {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        };
    }
    for v in locked.iter_vars() {
        if let NodeKind::And(a, b) = locked.node(v) {
            let fa = map[a.var() as usize].xor_complement(a.is_complement());
            let fb = map[b.var() as usize].xor_complement(b.is_complement());
            map[v as usize] = new.and(fa, fb);
        }
    }
    for (i, out) in locked.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, locked.output_name(i).to_string());
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Locks `aig`-style: y = (a ∧ b) ⊕ k₀, z = (a ∨ b) ⊕ ¬k₁ (an XNOR key
    /// gate). Correct key: k₀ = 0, k₁ = 1.
    fn two_bit_locked() -> (Aig, Aig) {
        let mut plain = Aig::new();
        let a = plain.add_input();
        let b = plain.add_input();
        let y = plain.and(a, b);
        let z = plain.or(a, b);
        plain.add_output(y);
        plain.add_output(z);

        let mut locked = Aig::new();
        let a = locked.add_input();
        let b = locked.add_input();
        let k0 = locked.add_named_input("keyinput0");
        let k1 = locked.add_named_input("keyinput1");
        let y = locked.and(a, b);
        let y = locked.xor(y, k0);
        let z = locked.or(a, b);
        let z = locked.xnor(z, k1);
        locked.add_output(y);
        locked.add_output(z);
        (plain, locked)
    }

    fn run_dip_loop(plain: &Aig, locked: &Aig, key_start: usize, key_len: usize) -> Vec<bool> {
        let mut miter = KeyMiter::new(locked, key_start, key_len);
        let mut iterations = 0;
        loop {
            match miter.find_dip(None) {
                DipSearch::Found(x) => {
                    let y = plain.eval(&x);
                    miter.constrain_io(&x, &y);
                }
                DipSearch::Settled => break,
                DipSearch::OutOfBudget => unreachable!("no budget was set"),
            }
            iterations += 1;
            assert!(iterations <= 64, "DIP loop diverged");
        }
        miter.settle_key().expect("oracle-consistent constraints")
    }

    fn unlock(locked: &Aig, key_start: usize, key: &[bool]) -> Aig {
        // Local key specialisation (the locking crate is not a dependency).
        let mut new = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; locked.num_nodes()];
        for i in 0..locked.num_inputs() {
            let var = locked.inputs()[i];
            map[var as usize] = if (key_start..key_start + key.len()).contains(&i) {
                if key[i - key_start] {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            } else {
                new.add_input()
            };
        }
        for v in locked.iter_vars() {
            if let NodeKind::And(a, b) = locked.node(v) {
                let fa = map[a.var() as usize].xor_complement(a.is_complement());
                let fb = map[b.var() as usize].xor_complement(b.is_complement());
                map[v as usize] = new.and(fa, fb);
            }
        }
        for out in locked.outputs() {
            let lit = map[out.var() as usize].xor_complement(out.is_complement());
            new.add_output(lit);
        }
        new
    }

    #[test]
    fn dip_loop_recovers_the_exact_key() {
        let (plain, locked) = two_bit_locked();
        let key = run_dip_loop(&plain, &locked, 2, 2);
        assert_eq!(key, vec![false, true]);
    }

    #[test]
    fn recovered_key_is_functionally_correct() {
        let (plain, locked) = two_bit_locked();
        let key = run_dip_loop(&plain, &locked, 2, 2);
        let restored = unlock(&locked, 2, &key);
        assert_eq!(
            crate::equiv::check_equivalence(&plain, &restored),
            crate::equiv::Equivalence::Equivalent
        );
    }

    #[test]
    fn fraig_prepass_recovers_the_same_key() {
        // Pad the locked circuit with redundant structure the sweep can
        // merge; the pre-passed miter must still recover the exact key.
        let (plain, mut locked) = two_bit_locked();
        let a = Lit::positive(locked.inputs()[0]);
        let b = Lit::positive(locked.inputs()[1]);
        let ab = locked.and(a, b);
        let u = locked.or(b, ab); // ≡ b (absorption)
        let redundant = locked.and(a, u); // ≡ a ∧ b, duplicated cone
        let y = locked.outputs()[0];
        let t = locked.and(y, redundant);
        let s = locked.and(y, !redundant);
        let y2 = locked.or(s, t); // (y ∧ r) ∨ (y ∧ ¬r) ≡ y
        locked.set_output(0, y2);

        let mut miter = KeyMiter::with_fraig_prepass(&locked, 2, 2);
        let mut iterations = 0;
        loop {
            match miter.find_dip(None) {
                DipSearch::Found(x) => {
                    let y = plain.eval(&x);
                    miter.constrain_io(&x, &y);
                }
                DipSearch::Settled => break,
                DipSearch::OutOfBudget => unreachable!("no budget was set"),
            }
            iterations += 1;
            assert!(iterations <= 64, "DIP loop diverged");
        }
        assert_eq!(miter.settle_key(), Some(vec![false, true]));
    }

    #[test]
    fn settled_without_constraints_when_keys_are_equivalent() {
        // f = a ∧ (k ∨ ¬k) = a: both key values are correct, so no DIP
        // exists at all and any settled key unlocks.
        let mut locked = Aig::new();
        let a = locked.add_input();
        let k = locked.add_named_input("keyinput0");
        let t = locked.or(k, !k);
        let f = locked.and(a, t);
        locked.add_output(f);
        let mut miter = KeyMiter::new(&locked, 1, 1);
        assert_eq!(miter.find_dip(None), DipSearch::Settled);
        assert!(miter.settle_key().is_some());
    }

    #[test]
    fn budgeted_search_reports_exhaustion_without_corruption() {
        let (plain, locked) = two_bit_locked();
        let mut miter = KeyMiter::new(&locked, 2, 2);
        // A zero-conflict budget can only succeed if the first query needs
        // no conflicts at all; accept either outcome but require the miter
        // to stay usable and eventually converge.
        let mut budget_hits = 0;
        let mut iterations = 0;
        loop {
            match miter.find_dip(Some(1)) {
                DipSearch::Found(x) => miter.constrain_io(&x, &plain.eval(&x)),
                DipSearch::Settled => break,
                DipSearch::OutOfBudget => {
                    budget_hits += 1;
                    match miter.find_dip(None) {
                        DipSearch::Found(x) => miter.constrain_io(&x, &plain.eval(&x)),
                        DipSearch::Settled => break,
                        DipSearch::OutOfBudget => unreachable!("unlimited retry"),
                    }
                }
            }
            iterations += 1;
            assert!(iterations <= 64, "DIP loop diverged");
        }
        let key = miter.settle_key().expect("consistent");
        assert_eq!(key, vec![false, true]);
        // budget_hits is instance-dependent; the point is the loop finished.
        let _ = budget_hits;
    }

    #[test]
    fn inconsistent_oracle_is_detected() {
        let (_plain, locked) = two_bit_locked();
        let mut miter = KeyMiter::new(&locked, 2, 2);
        // Claim contradictory outputs for the same input pattern.
        miter.constrain_io(&[true, true], &[true, true]);
        miter.constrain_io(&[true, true], &[false, false]);
        assert_eq!(miter.settle_key(), None);
    }

    #[test]
    fn restriction_folds_data_constants() {
        let (_plain, locked) = two_bit_locked();
        let residue = restrict_to_keys(&locked, 2, 2, &[true, false]);
        assert_eq!(residue.num_inputs(), 2);
        assert_eq!(residue.num_outputs(), 2);
        // a=1, b=0: y = 0 ⊕ k₀ = k₀; z = 1 ⊕ ¬k₁ = k₁.
        assert_eq!(residue.eval(&[false, true]), vec![false, true]);
        assert_eq!(residue.eval(&[true, false]), vec![true, false]);
        assert!(residue.num_ands() <= locked.num_ands());
    }
}
