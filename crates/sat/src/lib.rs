//! A compact CDCL SAT solver with AIG Tseitin encoding, combinational
//! equivalence checking (CEC) and stuck-at-fault test generation.
//!
//! This crate provides the "proof engine" substrate of the ALMOST
//! reproduction: the synthesis passes are validated by [`equiv`]'s
//! SAT-based CEC, and the redundancy attack (`almost-attacks`) uses
//! [`equiv::test_stuck_at`] as its ATPG oracle.
//!
//! The solver ([`solver::Solver`]) implements the standard modern recipe:
//! two-watched-literal propagation, first-UIP conflict analysis with
//! clause learning, a heap-indexed VSIDS decision order ([`heap`]), phase
//! saving, Luby restarts, learnt-clause database reduction (activity/LBD
//! ranked), and incremental solving under assumptions — plus
//! conflict-budgeted queries ([`solver::Solver::solve_limited`]) for
//! approximate attacks. Effort counters are surfaced as
//! [`solver::SolverStats`] on every attack row.
//!
//! [`miter`] builds *key-conditioned* miters over locked circuits, the
//! substrate of the oracle-guided SAT attack implemented in
//! `almost-attacks`; [`double_dip`] extends them to the four-copy 2-DIP
//! miter that defeats point-function defences (SARLock, Anti-SAT).
//!
//! # Example
//!
//! ```
//! use almost_sat::solver::{Solver, SatLit, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[SatLit::positive(a), SatLit::positive(b)]);
//! s.add_clause(&[SatLit::negative(a)]);
//! assert_eq!(s.solve(&[]), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod cnf;
pub mod dimacs;
pub mod double_dip;
pub mod equiv;
pub mod miter;

// The CDCL core lives in `almost_cdcl` (so `almost_aig`'s fraig engine
// can use it without a dependency cycle); the historical module paths
// are preserved here.
pub use almost_cdcl::heap;
pub use almost_cdcl::portfolio;
pub use almost_cdcl::solver;

pub use double_dip::{DoubleDipMiter, TwoDipSearch};
pub use equiv::{check_equivalence, check_equivalence_limited, test_stuck_at, Equivalence};
pub use heap::ActivityHeap;
pub use miter::{DipSearch, KeyMiter};
pub use portfolio::{PortfolioSolver, PortfolioStats};
pub use solver::{ClauseExchange, Interrupt, SatLit, SatResult, SatVar, Solver, SolverStats};
