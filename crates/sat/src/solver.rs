//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two watched literals
//! per clause, first-UIP learning, VSIDS activities with exponential decay,
//! phase saving, and geometric restarts. It is deliberately compact — the
//! workloads in this workspace (CEC miters and ATPG queries over circuits of
//! a few thousand gates) do not need preprocessing or clause-database
//! reduction to solve in milliseconds.

use std::fmt;

/// A solver variable (0-based index).
pub type SatVar = u32;

/// A solver literal: variable plus sign, encoded as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// The positive literal of `var`.
    pub fn positive(var: SatVar) -> Self {
        SatLit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: SatVar) -> Self {
        SatLit(var << 1 | 1)
    }

    /// Builds a literal with an explicit sign (`negated = true` means ¬var).
    pub fn new(var: SatVar, negated: bool) -> Self {
        SatLit(var << 1 | negated as u32)
    }

    /// The literal's variable.
    pub fn var(self) -> SatVar {
        self.0 >> 1
    }

    /// True if the literal is negated.
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Raw index (used for watch lists).
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

const INVALID_CLAUSE: u32 = u32::MAX;

/// A CDCL SAT solver; see the [module documentation](self).
pub struct Solver {
    clauses: Vec<Vec<SatLit>>,
    watches: Vec<Vec<u32>>,
    assign: Vec<Value>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    seen: Vec<bool>,
    /// Set when an empty clause (or a root-level conflict) makes the formula
    /// trivially unsatisfiable.
    unsat: bool,
    num_conflicts: u64,
    num_decisions: u64,
    num_propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            seen: Vec::new(),
            unsat: false,
            num_conflicts: 0,
            num_decisions: 0,
            num_propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = self.assign.len() as SatVar;
        self.assign.push(Value::Unassigned);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID_CLAUSE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Statistics: (decisions, propagations, conflicts).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.num_decisions,
            self.num_propagations,
            self.num_conflicts,
        )
    }

    fn lit_value(&self, lit: SatLit) -> Value {
        match self.assign[lit.var() as usize] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if lit.is_negative() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if lit.is_negative() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    /// Adds a clause. If a model from a previous `solve` call is still
    /// active, it is discarded (the solver backtracks to level 0).
    ///
    /// # Panics
    ///
    /// Panics if any literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        self.cancel_until(0);
        for l in lits {
            assert!((l.var() as usize) < self.assign.len(), "unknown variable");
        }
        // Simplify: drop duplicate literals; detect tautologies.
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if simplified.contains(&!l) {
                return; // tautology, always satisfied
            }
            if !simplified.contains(&l) {
                // Skip literals already false at level 0 and drop the clause
                // if any literal is already true at level 0.
                match self.lit_value(l) {
                    Value::True => return,
                    Value::False => continue,
                    Value::Unassigned => simplified.push(l),
                }
            }
        }
        match simplified.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(simplified[0], INVALID_CLAUSE)
                    || self.propagate() != INVALID_CLAUSE
                {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[simplified[0].index()].push(idx);
                self.watches[simplified[1].index()].push(idx);
                self.clauses.push(simplified);
            }
        }
    }

    /// Enqueues an assignment; returns false on conflict with the current
    /// assignment.
    fn enqueue(&mut self, lit: SatLit, reason: u32) -> bool {
        match self.lit_value(lit) {
            Value::True => true,
            Value::False => false,
            Value::Unassigned => {
                let v = lit.var() as usize;
                self.assign[v] = if lit.is_negative() {
                    Value::False
                } else {
                    Value::True
                };
                self.phase[v] = !lit.is_negative();
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause or
    /// `INVALID_CLAUSE`.
    fn propagate(&mut self) -> u32 {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.num_propagations += 1;
            let false_lit = !lit;
            // Take the watch list; rebuild it as we go.
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                enum Action {
                    Keep,
                    Move(SatLit),
                    Unit(SatLit),
                }
                let action = {
                    let clause = &mut self.clauses[ci as usize];
                    // Ensure the false literal is at position 1.
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], false_lit);
                    let first = clause[0];
                    if value_in(&self.assign, first) == Value::True {
                        Action::Keep // clause already satisfied
                    } else {
                        // Look for a new literal to watch.
                        let mut found = None;
                        for k in 2..clause.len() {
                            if value_in(&self.assign, clause[k]) != Value::False {
                                clause.swap(1, k);
                                found = Some(clause[1]);
                                break;
                            }
                        }
                        match found {
                            Some(l) => Action::Move(l),
                            None => Action::Unit(first),
                        }
                    }
                };
                match action {
                    Action::Keep => i += 1,
                    Action::Move(new_watch) => {
                        self.watches[new_watch.index()].push(ci);
                        watch_list.swap_remove(i);
                    }
                    Action::Unit(first) => {
                        // Clause is unit or conflicting.
                        if !self.enqueue(first, ci) {
                            // Conflict: restore remaining watches and report.
                            self.watches[false_lit.index()].extend_from_slice(&watch_list);
                            self.qhead = self.trail.len();
                            return ci;
                        }
                        i += 1;
                    }
                }
            }
            self.watches[false_lit.index()] = watch_list;
        }
        INVALID_CLAUSE
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<SatLit>, u32) {
        let mut learnt: Vec<SatLit> = vec![SatLit::positive(0)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut lit: Option<SatLit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            let start = if lit.is_none() { 0 } else { 1 };
            let clause_len = self.clauses[clause_idx as usize].len();
            for k in start..clause_len {
                let q = self.clauses[clause_idx as usize][k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_pos -= 1;
                let p = self.trail[trail_pos];
                if self.seen[p.var() as usize] {
                    lit = Some(p);
                    break;
                }
            }
            let p = lit.expect("found a seen literal");
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p;
                break;
            }
            clause_idx = self.reason[p.var() as usize];
            debug_assert_ne!(clause_idx, INVALID_CLAUSE, "UIP literal has a reason");
        }

        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }

        // Backjump level: the highest level among the non-asserting
        // literals.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level to position 1 (watch
        // invariant after backjumping).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == backjump)
                .expect("a literal at the backjump level exists")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, backjump)
    }

    fn cancel_until(&mut self, target_level: u32) {
        while self.trail_lim.len() as u32 > target_level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail non-empty");
                let v = lit.var() as usize;
                self.assign[v] = Value::Unassigned;
                self.reason[v] = INVALID_CLAUSE;
            }
        }
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<SatLit> {
        let mut best: Option<usize> = None;
        for v in 0..self.assign.len() {
            if self.assign[v] == Value::Unassigned {
                match best {
                    None => best = Some(v),
                    Some(b) => {
                        if self.activity[v] > self.activity[b] {
                            best = Some(v);
                        }
                    }
                }
            }
        }
        best.map(|v| SatLit::new(v as SatVar, !self.phase[v]))
    }

    /// Solves the formula under the given assumptions.
    ///
    /// After [`SatResult::Sat`], [`Solver::value`] reports the model. The
    /// solver can be re-used: more clauses and further `solve` calls are
    /// allowed.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.search(assumptions, u64::MAX)
            .expect("unlimited search always concludes")
    }

    /// Like [`Solver::solve`], but gives up after `max_conflicts` conflicts,
    /// returning `None`. The solver stays usable after a budget exhaustion:
    /// learnt clauses are kept, and a later (larger-budget) call resumes the
    /// proof effort.
    ///
    /// This is the primitive behind AppSAT-style *approximate* attacks,
    /// which trade completeness for bounded per-query effort.
    pub fn solve_limited(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: u64,
    ) -> Option<SatResult> {
        self.search(assumptions, max_conflicts)
    }

    fn search(&mut self, assumptions: &[SatLit], max_conflicts: u64) -> Option<SatResult> {
        if self.unsat {
            return Some(SatResult::Unsat);
        }
        self.cancel_until(0);
        if self.propagate() != INVALID_CLAUSE {
            self.unsat = true;
            return Some(SatResult::Unsat);
        }

        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_this_call = 0u64;

        loop {
            let conflict = self.propagate();
            if conflict != INVALID_CLAUSE {
                self.num_conflicts += 1;
                conflicts_since_restart += 1;
                conflicts_this_call += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Some(SatResult::Unsat);
                }
                // Conflicts below the assumption levels mean the assumptions
                // are inconsistent with the formula; analyze() still works,
                // and re-deciding the assumptions below re-detects it until
                // the learnt clauses force a root conflict. To keep it
                // simple and terminating, treat a conflict at or below the
                // number of assumption levels as UNSAT-under-assumptions.
                let (learnt, backjump) = self.analyze(conflict);
                if (self.trail_lim.len() as u32) <= num_assumed_levels(assumptions, self) {
                    return Some(SatResult::Unsat);
                }
                // Decay activities.
                self.var_inc /= 0.95;
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    // A unit learnt must live at the root: enqueueing it at
                    // an assumption level would leave a reason-less literal
                    // above level 0, which a later conflict analysis cannot
                    // resolve through. The main loop re-decides the
                    // assumptions afterwards.
                    self.cancel_until(0);
                    if !self.enqueue(asserting, INVALID_CLAUSE)
                        || self.propagate() != INVALID_CLAUSE
                    {
                        self.unsat = true;
                        return Some(SatResult::Unsat);
                    }
                } else {
                    let backjump = backjump.max(num_assumed_levels(assumptions, self));
                    self.cancel_until(backjump);
                    let idx = self.clauses.len() as u32;
                    self.watches[learnt[0].index()].push(idx);
                    self.watches[learnt[1].index()].push(idx);
                    self.clauses.push(learnt);
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                if conflicts_this_call >= max_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit + restart_limit / 2;
                    self.cancel_until(num_assumed_levels(assumptions, self));
                }
                continue;
            }

            // Assumption decisions first.
            let next_level = self.trail_lim.len();
            if next_level < assumptions.len() {
                let a = assumptions[next_level];
                match self.lit_value(a) {
                    Value::True => {
                        // Already implied; open an empty decision level so
                        // the level <-> assumption-index bookkeeping stays
                        // aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    Value::False => return Some(SatResult::Unsat),
                    Value::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, INVALID_CLAUSE);
                        debug_assert!(ok);
                        continue;
                    }
                }
            }

            match self.decide() {
                None => return Some(SatResult::Sat),
                Some(lit) => {
                    self.num_decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let ok = self.enqueue(lit, INVALID_CLAUSE);
                    debug_assert!(ok);
                }
            }
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] answer; `None` if
    /// the variable is unassigned (didn't matter).
    pub fn value(&self, var: SatVar) -> Option<bool> {
        match self.assign[var as usize] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    /// The model value of a literal.
    pub fn lit_bool(&self, lit: SatLit) -> Option<bool> {
        self.value(lit.var()).map(|v| v ^ lit.is_negative())
    }
}

/// Literal value lookup over the assignment array (a free function so it can
/// be used while other solver fields are mutably borrowed).
fn value_in(assign: &[Value], lit: SatLit) -> Value {
    match assign[lit.var() as usize] {
        Value::Unassigned => Value::Unassigned,
        Value::True => {
            if lit.is_negative() {
                Value::False
            } else {
                Value::True
            }
        }
        Value::False => {
            if lit.is_negative() {
                Value::True
            } else {
                Value::False
            }
        }
    }
}

fn num_assumed_levels(assumptions: &[SatLit], solver: &Solver) -> u32 {
    (assumptions.len() as u32).min(solver.trail_lim.len() as u32)
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solver {{ vars: {}, clauses: {}, conflicts: {} }}",
            self.num_vars(),
            self.num_clauses(),
            self.num_conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: SatVar, neg: bool) -> SatLit {
        SatLit::new(v, neg)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        s.add_clause(&[lit(a, true)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<SatVar> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], true), lit(w[1], false)]); // v[i] -> v[i+1]
        }
        s.add_clause(&[lit(vars[0], false)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[SatLit::positive(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn xor_constraints() {
        // a xor b, b xor c, a xor c is UNSAT (odd cycle).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let xor = |s: &mut Solver, x: SatVar, y: SatVar| {
            s.add_clause(&[lit(x, false), lit(y, false)]);
            s.add_clause(&[lit(x, true), lit(y, true)]);
        };
        xor(&mut s, a, b);
        xor(&mut s, b, c);
        xor(&mut s, a, c);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, false)]); // a -> b
        assert_eq!(s.solve(&[lit(a, false), lit(b, true)]), SatResult::Unsat);
        assert_eq!(s.solve(&[lit(a, false), lit(b, false)]), SatResult::Sat);
        // Solver is reusable after both answers.
        assert_eq!(s.solve(&[lit(a, true)]), SatResult::Sat);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // 12 variables, random 3-SAT instances cross-checked against
        // exhaustive enumeration.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..20 {
            let nvars = 12u32;
            let nclauses = 48;
            let mut clauses: Vec<Vec<SatLit>> = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as SatVar;
                    let neg = next() % 2 == 0;
                    cl.push(SatLit::new(v, neg));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut bf_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    let ok = cl.iter().any(|l| {
                        let val = (m >> l.var()) & 1 != 0;
                        val ^ l.is_negative()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                bf_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl);
            }
            let got = s.solve(&[]);
            assert_eq!(
                got,
                if bf_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
            );
            if got == SatResult::Sat {
                // The model must satisfy every clause.
                for cl in &clauses {
                    assert!(cl.iter().any(|l| s.lit_bool(*l).unwrap_or(false)));
                }
            }
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn pigeonhole_4_into_3_is_unsat() {
        let mut s = Solver::new();
        let mut p = vec![[SatLit::positive(0); 3]; 4];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1], row[2]]);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let (_, _, conflicts) = s.stats();
        assert!(conflicts > 0, "UNSAT proof requires conflicts");
    }

    #[test]
    fn incremental_clause_addition_after_sat() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        // Narrow the solution space incrementally.
        s.add_clause(&[!a]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.lit_bool(b), Some(true));
        s.add_clause(&[!b]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        // Once root-level UNSAT, it stays UNSAT.
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_simplified() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let before = s.num_clauses();
        s.add_clause(&[a, !a]); // tautology: dropped
        assert_eq!(s.num_clauses(), before);
        s.add_clause(&[a, a]); // duplicates collapse to a unit
        assert_eq!(
            s.num_clauses(),
            before,
            "unit clauses are enqueued, not stored"
        );
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.lit_bool(a), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn limited_solve_gives_up_and_resumes() {
        // Pigeonhole 6-into-5 needs many conflicts; a 1-conflict budget must
        // give up, and an unlimited retry on the same solver must finish.
        let mut s = Solver::new();
        let mut p = vec![[SatLit::positive(0); 5]; 6];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..5 {
            for i1 in 0..6 {
                for i2 in (i1 + 1)..6 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[], 1), None, "budget must be exhausted");
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SatResult::Unsat));
    }

    #[test]
    fn limited_solve_matches_solve_on_easy_instances() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_limited(&[], 1000), Some(SatResult::Sat));
        assert_eq!(s.solve_limited(&[!a, !b], 1000), Some(SatResult::Unsat));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn assumptions_do_not_pollute_later_solves() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(&[!a, !b]), SatResult::Unsat);
        // Without assumptions the instance is satisfiable again.
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.lit_bool(b), Some(true));
    }
}
