//! Tseitin encoding of AIGs into CNF.
//!
//! Every AIG node gets a solver variable; an AND node `v = a ∧ b` produces
//! the three clauses `(¬v ∨ a) (¬v ∨ b) (v ∨ ¬a ∨ ¬b)`. Node overrides allow
//! encoding *faulty* copies (stuck-at values) for ATPG.

use crate::portfolio::PortfolioSolver;
use crate::solver::{SatLit, SatVar, Solver};
use almost_aig::{Aig, Lit, NodeKind, Var};
use std::collections::HashMap;

/// Anything Tseitin clauses can be emitted into: the plain [`Solver`] or
/// a [`PortfolioSolver`] broadcasting to its racing workers.
pub trait ClauseSink {
    /// Allocates a fresh solver variable.
    fn new_var(&mut self) -> SatVar;
    /// Adds a clause over existing variables.
    fn add_clause(&mut self, lits: &[SatLit]);
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> SatVar {
        Solver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[SatLit]) {
        Solver::add_clause(self, lits)
    }
}

impl ClauseSink for PortfolioSolver {
    fn new_var(&mut self) -> SatVar {
        PortfolioSolver::new_var(self)
    }
    fn add_clause(&mut self, lits: &[SatLit]) {
        PortfolioSolver::add_clause(self, lits)
    }
}

/// The result of encoding one AIG copy into a solver.
#[derive(Clone, Debug)]
pub struct AigCnf {
    /// Solver variable for each primary input, in input order.
    pub input_vars: Vec<SatVar>,
    /// Solver literal for each primary output, in output order.
    pub output_lits: Vec<SatLit>,
    /// Solver literal for every AIG node (by node index).
    pub node_lits: Vec<SatLit>,
}

/// Encodes `aig` into `solver`, creating fresh input variables.
pub fn encode<S: ClauseSink>(solver: &mut S, aig: &Aig) -> AigCnf {
    let input_vars: Vec<SatVar> = (0..aig.num_inputs()).map(|_| solver.new_var()).collect();
    encode_with_inputs(solver, aig, &input_vars, &HashMap::new())
}

/// Encodes `aig` into `solver` re-using the given input variables (for
/// miters), with optional stuck-at `overrides` (AIG node → forced constant).
///
/// An overridden node's defining clauses are skipped; the node is replaced
/// by the constant. Fanout logic then sees the faulty value.
///
/// # Panics
///
/// Panics if `input_vars.len()` differs from the AIG's input count.
pub fn encode_with_inputs<S: ClauseSink>(
    solver: &mut S,
    aig: &Aig,
    input_vars: &[SatVar],
    overrides: &HashMap<Var, bool>,
) -> AigCnf {
    assert_eq!(input_vars.len(), aig.num_inputs());
    // A dedicated "false" variable keeps constants uniform.
    let false_var = solver.new_var();
    solver.add_clause(&[SatLit::negative(false_var)]);
    let const_false = SatLit::positive(false_var);

    let mut node_lits: Vec<SatLit> = Vec::with_capacity(aig.num_nodes());
    for v in aig.iter_vars() {
        if let Some(&value) = overrides.get(&v) {
            node_lits.push(if value { !const_false } else { const_false });
            continue;
        }
        let lit = match aig.node(v) {
            NodeKind::Const0 => const_false,
            NodeKind::Input(i) => SatLit::positive(input_vars[i as usize]),
            NodeKind::And(a, b) => {
                let la = lit_of(&node_lits, a);
                let lb = lit_of(&node_lits, b);
                let out = SatLit::positive(solver.new_var());
                solver.add_clause(&[!out, la]);
                solver.add_clause(&[!out, lb]);
                solver.add_clause(&[out, !la, !lb]);
                out
            }
        };
        node_lits.push(lit);
    }
    let output_lits = aig
        .outputs()
        .iter()
        .map(|l| lit_of(&node_lits, *l))
        .collect();
    AigCnf {
        input_vars: input_vars.to_vec(),
        output_lits,
        node_lits,
    }
}

fn lit_of(node_lits: &[SatLit], lit: Lit) -> SatLit {
    let base = node_lits[lit.var() as usize];
    if lit.is_complement() {
        !base
    } else {
        base
    }
}

/// Adds an XOR constraint `out = a ⊕ b` and returns `out`.
pub fn encode_xor<S: ClauseSink>(solver: &mut S, a: SatLit, b: SatLit) -> SatLit {
    let out = SatLit::positive(solver.new_var());
    solver.add_clause(&[!out, a, b]);
    solver.add_clause(&[!out, !a, !b]);
    solver.add_clause(&[out, !a, b]);
    solver.add_clause(&[out, a, !b]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use almost_aig::Aig;

    fn build_xor() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        aig
    }

    #[test]
    fn encoding_matches_eval() {
        let aig = build_xor();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut s = Solver::new();
            let cnf = encode(&mut s, &aig);
            let assumptions = [
                SatLit::new(cnf.input_vars[0], !va),
                SatLit::new(cnf.input_vars[1], !vb),
            ];
            assert_eq!(s.solve(&assumptions), SatResult::Sat);
            let got = s.lit_bool(cnf.output_lits[0]).expect("assigned");
            assert_eq!(got, aig.eval(&[va, vb])[0]);
        }
    }

    #[test]
    fn override_forces_constant() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let mut s = Solver::new();
        let inputs: Vec<SatVar> = (0..2).map(|_| s.new_var()).collect();
        let mut overrides = HashMap::new();
        overrides.insert(f.var(), true); // stuck-at-1
        let cnf = encode_with_inputs(&mut s, &aig, &inputs, &overrides);
        // With a=0, output must still be 1 because of the stuck-at.
        let assumptions = [SatLit::negative(inputs[0])];
        assert_eq!(s.solve(&assumptions), SatResult::Sat);
        assert_eq!(s.lit_bool(cnf.output_lits[0]), Some(true));
    }

    #[test]
    fn xor_gadget() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        let x = encode_xor(&mut s, a, b);
        // Force x=1 and a=1 => b must be 0.
        s.add_clause(&[x]);
        s.add_clause(&[a]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.lit_bool(b), Some(false));
    }
}
