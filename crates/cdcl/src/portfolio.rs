//! A portfolio of diversified racing CDCL solvers.
//!
//! [`PortfolioSolver`] wraps N [`Solver`] instances holding the identical
//! formula. Every clause is broadcast to all instances; every query races
//! them on scoped threads ([`almost_pool::race`]): the first instance to
//! reach a verdict wins, raises the shared stop flag, and the rest park
//! at their next propagation-poll (a budget-style early return — never a
//! wrong verdict, because SAT/UNSAT is a property of the shared formula,
//! not of the schedule). Workers 1.. are diversified — perturbed initial
//! VSIDS activities, a different Luby restart unit, the complementary
//! initial polarity — so they explore different parts of the search
//! space, and they share learnt *glue* clauses (units, binaries, LBD ≤ 2)
//! through a bounded sharded-mutex exchange ring, imported at restart
//! boundaries.
//!
//! # Determinism contract
//!
//! Width 1 (`ALMOST_SOLVERS=1`, or one available core) is the **pinned
//! reference**: no threads, no stop flag, no exchange — worker 0 is
//! bit-for-bit today's serial solver, including [`SolverStats`], so every
//! attack CSV stays byte-identical in the deterministic configuration.
//! At width > 1 verdicts still agree with the reference (racing is
//! sound), but which SAT *model* is found — and therefore the attack
//! trajectory and effort counters — depends on who wins each race.

use crate::solver::{ClauseExchange, Interrupt, SatLit, SatResult, SatVar, Solver, SolverStats};
use almost_telemetry as telemetry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Hard cap on the default portfolio width (the env override may exceed
/// it): racing more than this wastes cores that the harness pool puts to
/// better use across cells.
const DEFAULT_MAX_WIDTH: usize = 4;

/// Bounded capacity of each worker's publication shard; publishing past
/// it drops the oldest clause (importers that fell behind lose history,
/// never correctness — imports are an optimisation, not a dependency).
const EXCHANGE_CAP: usize = 128;

/// Per-race worker outcome codes (shared with the race closures through
/// relaxed atomics; only read after the race scope joins).
const OUTCOME_NONE: u8 = 0;
const OUTCOME_FINISHED: u8 = 1;
const OUTCOME_BUDGET: u8 = 2;
const OUTCOME_CANCELLED: u8 = 3;

/// The portfolio width: `ALMOST_SOLVERS` when set (≥ 1), else
/// `min(pool workers, 4)`.
pub fn default_width() -> usize {
    std::env::var("ALMOST_SOLVERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| almost_pool::num_workers().min(DEFAULT_MAX_WIDTH))
}

/// Cumulative portfolio counters, threaded through the miters onto the
/// attack run records (the portfolio analogue of [`SolverStats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Portfolio width (1 = pinned serial reference).
    pub workers: usize,
    /// Races run (solver queries at width > 1).
    pub races: u64,
    /// Per-worker win counts, indexed by worker.
    pub wins: Vec<u64>,
    /// Winner of the most recent race.
    pub last_winner: usize,
    /// Glue clauses imported across all workers and races.
    pub imported: u64,
    /// Glue clauses published across all workers and races.
    pub exported: u64,
    /// Races where every worker exhausted its budget (no winner).
    pub budget_races: u64,
    /// Worst observed cancellation latency (winner finish → all parked),
    /// microseconds.
    pub cancel_us_max: u64,
}

/// One worker's publication shard: a bounded deque of sequence-stamped
/// glue clauses. Sequence numbers only grow, so importers track a cursor
/// per shard and never re-import (or miss, short of overflow-driven
/// drops) a clause.
struct ExchangeShard {
    next_seq: u64,
    clauses: VecDeque<(u64, Vec<SatLit>)>,
}

/// The sharded-mutex exchange ring: one shard per worker, so publishers
/// never contend with each other — only with importers draining their
/// shard, which happens at restart boundaries.
struct ExchangeRing {
    shards: Vec<Mutex<ExchangeShard>>,
    imported: Vec<AtomicU64>,
    exported: Vec<AtomicU64>,
}

impl ExchangeRing {
    fn new(workers: usize) -> Self {
        ExchangeRing {
            shards: (0..workers)
                .map(|_| {
                    Mutex::new(ExchangeShard {
                        next_seq: 0,
                        clauses: VecDeque::new(),
                    })
                })
                .collect(),
            imported: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            exported: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One worker's view of the ring, implementing the solver-side
/// [`ClauseExchange`] hooks.
struct ExchangeHandle<'a> {
    ring: &'a ExchangeRing,
    worker: usize,
    /// Next unseen sequence number per sibling shard.
    cursors: Vec<u64>,
}

impl<'a> ExchangeHandle<'a> {
    fn new(ring: &'a ExchangeRing, worker: usize) -> Self {
        let cursors = vec![0; ring.shards.len()];
        ExchangeHandle {
            ring,
            worker,
            cursors,
        }
    }
}

impl ClauseExchange for ExchangeHandle<'_> {
    fn export(&mut self, lits: &[SatLit], _lbd: u32) {
        let mut shard = self.ring.shards[self.worker]
            .lock()
            .expect("exchange shard lock");
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.clauses.push_back((seq, lits.to_vec()));
        if shard.clauses.len() > EXCHANGE_CAP {
            shard.clauses.pop_front();
        }
        drop(shard);
        self.ring.exported[self.worker].fetch_add(1, Ordering::Relaxed);
    }

    fn import(&mut self, buf: &mut Vec<Vec<SatLit>>) {
        let mut pulled = 0u64;
        for (s, cursor) in self.cursors.iter_mut().enumerate() {
            if s == self.worker {
                continue;
            }
            let shard = self.ring.shards[s].lock().expect("exchange shard lock");
            for (seq, lits) in &shard.clauses {
                if *seq >= *cursor {
                    buf.push(lits.clone());
                    pulled += 1;
                }
            }
            *cursor = shard.next_seq;
        }
        if pulled > 0 {
            self.ring.imported[self.worker].fetch_add(pulled, Ordering::Relaxed);
        }
    }
}

/// A portfolio of diversified racing solvers; see the
/// [module documentation](self).
pub struct PortfolioSolver {
    workers: Vec<Solver>,
    /// Engine label stamped on `PortfolioRace` telemetry events
    /// (`"key_miter"`, `"double_dip_miter"`, …).
    engine: &'static str,
    last_winner: usize,
    stats: PortfolioStats,
    /// Optional external cancellation point (raised by the caller, not by
    /// a race): checked before every query, and polled during the solve
    /// in the width-1 configuration.
    stop: Option<Arc<AtomicBool>>,
}

impl PortfolioSolver {
    /// A portfolio at the [`default_width`], labelled `engine` in
    /// telemetry.
    pub fn new(engine: &'static str) -> Self {
        Self::with_width(engine, default_width())
    }

    /// A portfolio of exactly `width` workers (clamped to ≥ 1). Worker 0
    /// is always the undiversified pinned reference; workers 1.. get a
    /// seeded activity shuffle, a different Luby unit, and alternating
    /// initial polarity.
    pub fn with_width(engine: &'static str, width: usize) -> Self {
        let width = width.max(1);
        let mut workers = Vec::with_capacity(width);
        for w in 0..width {
            let mut solver = Solver::new();
            if w > 0 {
                solver.set_diversity_seed(0x5EED_0000_u64 + w as u64);
                // Restart units spread around the reference 100: shorter
                // units resample aggressively, longer ones commit to
                // deeper dives between restarts (and hit the exchange
                // import point at a different cadence).
                solver.set_restart_base(match w % 4 {
                    1 => 64,
                    2 => 171,
                    3 => 271,
                    _ => 100,
                });
                solver.set_default_phase(w % 2 == 1);
            }
            workers.push(solver);
        }
        PortfolioSolver {
            workers,
            engine,
            last_winner: 0,
            stats: PortfolioStats {
                workers: width,
                wins: vec![0; width],
                ..PortfolioStats::default()
            },
            stop: None,
        }
    }

    /// Installs an external cancellation flag. A raised flag makes every
    /// subsequent query return the indeterminate result (surfaced by the
    /// miters as a `cause: "cancelled"` telemetry event — distinct from a
    /// budget exhaustion).
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.stop = Some(flag);
    }

    /// Portfolio width.
    pub fn width(&self) -> usize {
        self.workers.len()
    }

    /// Allocates a fresh variable in every worker; the (identical)
    /// variable index is returned once.
    pub fn new_var(&mut self) -> SatVar {
        let mut it = self.workers.iter_mut();
        let v = it.next().expect("portfolio has ≥ 1 worker").new_var();
        for w in it {
            let v2 = w.new_var();
            debug_assert_eq!(v, v2, "workers allocate variables in lock-step");
        }
        v
    }

    /// Broadcasts a clause to every worker (all workers hold the
    /// identical formula — the invariant clause exchange relies on).
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        for w in &mut self.workers {
            w.add_clause(lits);
        }
    }

    /// Solves under assumptions, racing the portfolio. See
    /// [`Solver::solve`] for the verdict semantics.
    ///
    /// # Panics
    ///
    /// Panics if an external stop flag is installed and raised (an
    /// unlimited query has no indeterminate result to return); use
    /// [`PortfolioSolver::try_solve`] when cancellation is in play.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        match self.try_solve(assumptions, None) {
            Ok(r) => r,
            Err(i) => panic!("unlimited uncancelled solve cannot be interrupted, got {i:?}"),
        }
    }

    /// Budgeted solve: `None` when the conflict budget ran out (or an
    /// external stop flag cancelled the query) — the indeterminate
    /// result, matching [`Solver::solve_limited`].
    pub fn solve_limited(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: u64,
    ) -> Option<SatResult> {
        self.try_solve(assumptions, Some(max_conflicts)).ok()
    }

    /// The full-fidelity query: `Ok` verdicts, or the [`Interrupt`] cause
    /// of an early return (budget vs cancelled), which the miters record
    /// in telemetry.
    pub fn try_solve(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: Option<u64>,
    ) -> Result<SatResult, Interrupt> {
        let budget = max_conflicts.unwrap_or(u64::MAX);
        if let Some(flag) = &self.stop {
            if flag.load(Ordering::Acquire) {
                return Err(Interrupt::Cancelled);
            }
        }
        if self.workers.len() == 1 {
            // Pinned serial reference: no threads, no exchange. Without
            // an external stop flag this is byte-for-byte the plain
            // solver (same code path, same stats).
            self.last_winner = 0;
            let worker = &mut self.workers[0];
            return match self.stop.clone() {
                Some(flag) => worker.solve_raced(assumptions, budget, &flag, None),
                None => match worker.solve_limited(assumptions, budget) {
                    Some(r) => Ok(r),
                    None => Err(Interrupt::Budget),
                },
            };
        }
        self.race(assumptions, budget)
    }

    fn race(&mut self, assumptions: &[SatLit], budget: u64) -> Result<SatResult, Interrupt> {
        let n = self.workers.len();
        let ring = ExchangeRing::new(n);
        let outcomes: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(OUTCOME_NONE)).collect();
        let before: Vec<u64> = self.workers.iter().map(|w| w.stats().conflicts).collect();
        let start_us = telemetry::clock::now_us();

        type Runner<'s> = Box<dyn FnOnce(&AtomicBool) -> Option<SatResult> + Send + 's>;
        let runners: Vec<Runner<'_>> = self
            .workers
            .iter_mut()
            .enumerate()
            .map(|(w, solver)| {
                let (ring, outcomes) = (&ring, &outcomes);
                Box::new(move |stop: &AtomicBool| {
                    let mut handle = ExchangeHandle::new(ring, w);
                    match solver.solve_raced(assumptions, budget, stop, Some(&mut handle)) {
                        Ok(r) => {
                            outcomes[w].store(OUTCOME_FINISHED, Ordering::Relaxed);
                            Some(r)
                        }
                        Err(Interrupt::Budget) => {
                            outcomes[w].store(OUTCOME_BUDGET, Ordering::Relaxed);
                            None
                        }
                        Err(Interrupt::Cancelled) => {
                            outcomes[w].store(OUTCOME_CANCELLED, Ordering::Relaxed);
                            None
                        }
                    }
                }) as Runner<'_>
            })
            .collect();

        let outcome = almost_pool::race(runners);
        let dur_us = telemetry::clock::now_us().saturating_sub(start_us);

        let (imported, exported): (u64, u64) = (
            ring.imported
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum(),
            ring.exported
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum(),
        );
        self.stats.races += 1;
        self.stats.imported += imported;
        self.stats.exported += exported;

        telemetry::trace(|| telemetry::EventKind::PortfolioRace {
            engine: self.engine,
            workers: n as u32,
            winner: outcome.as_ref().map_or(0, |o| o.winner) as u32,
            dur_us,
            cancel_us: outcome.as_ref().map_or(0, |o| o.cancel_us),
            per_worker: (0..n)
                .map(|w| telemetry::RaceWorkerTally {
                    conflicts: self.workers[w].stats().conflicts - before[w],
                    imported: ring.imported[w].load(Ordering::Relaxed),
                    exported: ring.exported[w].load(Ordering::Relaxed),
                })
                .collect(),
        });

        match outcome {
            Some(o) => {
                self.last_winner = o.winner;
                self.stats.last_winner = o.winner;
                self.stats.wins[o.winner] += 1;
                self.stats.cancel_us_max = self.stats.cancel_us_max.max(o.cancel_us);
                Ok(o.result)
            }
            None => {
                // Every worker returned without a verdict: all budget, by
                // the race contract (nobody raised the flag). The
                // `outcomes` array is kept for debug assertions only.
                debug_assert!(outcomes
                    .iter()
                    .all(|o| o.load(Ordering::Relaxed) == OUTCOME_BUDGET));
                self.stats.budget_races += 1;
                Err(Interrupt::Budget)
            }
        }
    }

    /// The model value of `var` in the most recent winner's model.
    pub fn value(&self, var: SatVar) -> Option<bool> {
        self.workers[self.last_winner].value(var)
    }

    /// The model value of a literal in the most recent winner's model.
    pub fn lit_bool(&self, lit: SatLit) -> Option<bool> {
        self.workers[self.last_winner].lit_bool(lit)
    }

    /// Number of allocated variables (identical across workers).
    pub fn num_vars(&self) -> usize {
        self.workers[0].num_vars()
    }

    /// Number of live clauses in worker 0 (the reference database; other
    /// workers may hold more through exchange imports).
    pub fn num_clauses(&self) -> usize {
        self.workers[0].num_clauses()
    }

    /// Solver-effort statistics: worker 0's exactly at width 1 (the
    /// pinned contract), the sum across workers at width > 1 (total
    /// effort spent, comparable to wall-clock cost).
    pub fn stats(&self) -> SolverStats {
        if self.workers.len() == 1 {
            return self.workers[0].stats();
        }
        let mut total = SolverStats::default();
        for w in &self.workers {
            let s = w.stats();
            total.decisions += s.decisions;
            total.propagations += s.propagations;
            total.conflicts += s.conflicts;
            total.restarts += s.restarts;
            total.learnts_kept += s.learnts_kept;
            total.learnts_deleted += s.learnts_deleted;
        }
        total
    }

    /// Cumulative portfolio counters (races, wins, exchange volume).
    pub fn portfolio_stats(&self) -> PortfolioStats {
        self.stats.clone()
    }
}

impl std::fmt::Debug for PortfolioSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PortfolioSolver {{ engine: {}, workers: {}, races: {} }}",
            self.engine,
            self.workers.len(),
            self.stats.races
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: SatVar, neg: bool) -> SatLit {
        SatLit::new(v, neg)
    }

    /// Pigeonhole `n+1` into `n`: small, UNSAT, and conflict-heavy enough
    /// to exercise restarts and the exchange ring.
    fn pigeonhole(solver: &mut PortfolioSolver, holes: usize) {
        let pigeons = holes + 1;
        let p: Vec<Vec<SatLit>> = (0..pigeons)
            .map(|_| {
                (0..holes)
                    .map(|_| SatLit::positive(solver.new_var()))
                    .collect()
            })
            .collect();
        for row in &p {
            solver.add_clause(row);
        }
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                for (&a, &b) in p[i1].iter().zip(&p[i2]) {
                    solver.add_clause(&[!a, !b]);
                }
            }
        }
    }

    #[test]
    fn width_one_matches_the_plain_solver_bit_for_bit() {
        let clauses: [&[(SatVar, bool)]; 3] = [
            &[(0, false), (1, false)],
            &[(0, true), (2, false)],
            &[(1, true), (2, true)],
        ];
        let mut plain = Solver::new();
        let mut port = PortfolioSolver::with_width("test", 1);
        for _ in 0..3 {
            plain.new_var();
            port.new_var();
        }
        for cl in clauses {
            let lits: Vec<SatLit> = cl.iter().map(|&(v, neg)| lit(v, neg)).collect();
            plain.add_clause(&lits);
            port.add_clause(&lits);
        }
        assert_eq!(plain.solve(&[]), port.solve(&[]));
        assert_eq!(plain.stats(), port.stats(), "pinned stats are identical");
        for v in 0..3 {
            assert_eq!(plain.value(v), port.value(v));
        }
    }

    #[test]
    fn racing_verdicts_agree_with_the_serial_reference() {
        for holes in [3usize, 4, 5] {
            let mut port = PortfolioSolver::with_width("test", 4);
            pigeonhole(&mut port, holes);
            assert_eq!(port.solve(&[]), SatResult::Unsat);
        }
        // A satisfiable instance: the winning model must satisfy it.
        let mut port = PortfolioSolver::with_width("test", 4);
        let vars: Vec<SatVar> = (0..8).map(|_| port.new_var()).collect();
        let mut clauses: Vec<Vec<SatLit>> = Vec::new();
        for w in vars.windows(2) {
            clauses.push(vec![lit(w[0], true), lit(w[1], false)]);
        }
        clauses.push(vec![lit(vars[0], false)]);
        for cl in &clauses {
            port.add_clause(cl);
        }
        assert_eq!(port.solve(&[]), SatResult::Sat);
        for cl in &clauses {
            assert!(
                cl.iter().any(|l| port.lit_bool(*l).unwrap_or(false)),
                "winning model satisfies every clause"
            );
        }
    }

    #[test]
    fn assumptions_race_correctly() {
        let mut port = PortfolioSolver::with_width("test", 3);
        let a = SatLit::positive(port.new_var());
        let b = SatLit::positive(port.new_var());
        port.add_clause(&[!a, b]); // a → b
        assert_eq!(port.solve(&[a, !b]), SatResult::Unsat);
        assert_eq!(port.solve(&[a]), SatResult::Sat);
        assert_eq!(port.lit_bool(b), Some(true));
    }

    #[test]
    fn budget_exhaustion_has_no_winner() {
        let mut port = PortfolioSolver::with_width("test", 2);
        pigeonhole(&mut port, 6);
        assert_eq!(
            port.try_solve(&[], Some(1)),
            Err(Interrupt::Budget),
            "a 1-conflict budget cannot crack pigeonhole-7/6"
        );
        assert_eq!(port.portfolio_stats().budget_races, 1);
        // The portfolio stays usable: an unlimited retry concludes.
        assert_eq!(port.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn tripped_external_stop_flag_is_cancelled_not_a_verdict() {
        let mut port = PortfolioSolver::with_width("test", 2);
        pigeonhole(&mut port, 4);
        let flag = Arc::new(AtomicBool::new(true));
        port.set_stop_flag(flag.clone());
        assert_eq!(port.try_solve(&[], None), Err(Interrupt::Cancelled));
        assert_eq!(port.solve_limited(&[], 1_000_000), None);
        // Lowering the flag restores normal service.
        flag.store(false, Ordering::Release);
        assert_eq!(port.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn hard_instances_exercise_the_exchange_ring() {
        let mut port = PortfolioSolver::with_width("test", 4);
        pigeonhole(&mut port, 6);
        assert_eq!(port.solve(&[]), SatResult::Unsat);
        let stats = port.portfolio_stats();
        assert_eq!(stats.races, 1);
        assert!(
            stats.exported > 0,
            "a conflict-heavy UNSAT proof publishes glue: {stats:?}"
        );
    }

    #[test]
    fn default_width_is_at_least_one() {
        assert!(default_width() >= 1);
        assert!(PortfolioSolver::new("test").width() >= 1);
    }
}
