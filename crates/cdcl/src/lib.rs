//! The AIG-independent CDCL core of the ALMOST reproduction.
//!
//! This crate was split out of `almost_sat` so that lower layers — above
//! all the `almost_aig` fraig/SAT-sweeping engine — can pose incremental
//! SAT queries without depending on the circuit-level plumbing (Tseitin
//! encoding, CEC, key-conditioned miters), which stays in `almost_sat`
//! and depends on `almost_aig` in turn.
//!
//! Contents:
//!
//! - [`solver`] — the incremental CDCL solver (two-watched-literal
//!   propagation, first-UIP learning, VSIDS, phase saving, Luby restarts,
//!   learnt-DB reduction, conflict budgets, cancellation, clause
//!   exchange hooks).
//! - [`heap`] — the indexed max-heap behind the VSIDS decision order.
//! - [`portfolio`] — N diversified racing solver instances over one
//!   shared formula (`ALMOST_SOLVERS`), glue-clause exchange included.
//!
//! `almost_sat` re-exports these modules under their historical paths
//! (`almost_sat::solver`, `almost_sat::heap`, `almost_sat::portfolio`),
//! so existing callers are unaffected by the split.

pub mod heap;
pub mod portfolio;
pub mod solver;

pub use heap::ActivityHeap;
pub use portfolio::{PortfolioSolver, PortfolioStats};
pub use solver::{ClauseExchange, Interrupt, SatLit, SatResult, SatVar, Solver, SolverStats};
