//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the MiniSat architecture: two watched literals
//! per clause, first-UIP learning, VSIDS activities with exponential decay,
//! phase saving, Luby restarts, and incremental solving under assumptions.
//! Decisions come from an indexed max-heap ([`crate::heap::ActivityHeap`])
//! with a deterministic total order (activity descending, variable index
//! ascending on ties), and learnt clauses carry activities and LBD scores
//! so the database can be periodically reduced — cold, high-LBD learnts are
//! dropped while glue clauses and active reasons survive. Both matter for
//! the attack workloads in this workspace: key-conditioned (and four-copy
//! 2-DIP) miters run thousands of incremental queries over the same solver,
//! and without reduction the learnt database grows without bound.

use crate::heap::ActivityHeap;
use almost_telemetry as telemetry;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// The telemetry mirror of [`SolverStats`]' search-effort counters
/// (database-size fields are gauges, not effort, and stay out of the
/// event stream).
fn counters(s: SolverStats) -> telemetry::SolverCounters {
    telemetry::SolverCounters {
        decisions: s.decisions,
        propagations: s.propagations,
        conflicts: s.conflicts,
        restarts: s.restarts,
    }
}

/// A solver variable (0-based index).
pub type SatVar = u32;

/// A solver literal: variable plus sign, encoded as `var << 1 | negated`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// The positive literal of `var`.
    pub fn positive(var: SatVar) -> Self {
        SatLit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: SatVar) -> Self {
        SatLit(var << 1 | 1)
    }

    /// Builds a literal with an explicit sign (`negated = true` means ¬var).
    pub fn new(var: SatVar, negated: bool) -> Self {
        SatLit(var << 1 | negated as u32)
    }

    /// The literal's variable.
    pub fn var(self) -> SatVar {
        self.0 >> 1
    }

    /// True if the literal is negated.
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Raw index (used for watch lists).
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Cumulative solver-effort counters, surfaced on every attack row so
/// heuristic changes are audited behaviourally (see the release-mode
/// envelope test) and perf regressions show up in the bench CSVs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Decision-literal picks.
    pub decisions: u64,
    /// Literals propagated off the trail.
    pub propagations: u64,
    /// Conflicts analysed (= clauses learnt, counting unit learnts).
    pub conflicts: u64,
    /// Restarts performed (Luby schedule).
    pub restarts: u64,
    /// Learnt clauses currently alive in the database.
    pub learnts_kept: u64,
    /// Learnt clauses deleted by database reduction (cumulative).
    pub learnts_deleted: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

const INVALID_CLAUSE: u32 = u32::MAX;

/// Sentinel returned by the propagate loop when a portfolio stop flag
/// interrupted it mid-queue. Distinct from both [`INVALID_CLAUSE`] and
/// every real clause index so cancellation can never be mistaken for a
/// conflict (which would turn a race into a wrong UNSAT).
const CANCELLED: u32 = u32::MAX - 1;

/// Why a cancellable search came back without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The per-call conflict budget ran out.
    Budget,
    /// A portfolio stop flag was raised (a sibling finished first).
    Cancelled,
}

impl Interrupt {
    /// The telemetry `cause` label for a `budget_exhausted` event.
    pub fn cause(self) -> &'static str {
        match self {
            Interrupt::Budget => "budget",
            Interrupt::Cancelled => "cancelled",
        }
    }
}

/// Hook points a portfolio uses to share learnt glue clauses between
/// racing solver instances. Soundness rests on every participant holding
/// the *identical* original formula: learnt clauses are implied by the
/// formula alone, so importing a sibling's glue can never flip a verdict.
pub trait ClauseExchange {
    /// Offers a freshly learnt glue clause (unit, binary, or LBD ≤ 2)
    /// for publication to siblings.
    fn export(&mut self, lits: &[SatLit], lbd: u32);
    /// Drains clauses published by siblings into `buf` (called at search
    /// start and at restart boundaries, when the trail is shallow).
    fn import(&mut self, buf: &mut Vec<Vec<SatLit>>);
}

/// What happened while splicing a batch of imported clauses in at the
/// root level.
enum ImportOutcome {
    Proceed,
    RootConflict,
    Cancelled,
}

/// Learnt clauses at or below this LBD ("glue" clauses) are never deleted.
const GLUE_LBD: u32 = 2;

/// Initial live-learnt count that triggers a database reduction; grows
/// geometrically after each reduction.
const DEFAULT_REDUCE_THRESHOLD: usize = 4000;

/// Luby restart unit, in conflicts.
const RESTART_BASE: u64 = 100;

/// Telemetry heartbeat period, in conflicts (must be a power of two: the
/// conflict path tests `num_conflicts & (PROGRESS_INTERVAL - 1) == 0`,
/// which costs one AND+branch when telemetry is disabled).
const PROGRESS_INTERVAL: u64 = 8192;

/// A stored clause: original clauses keep only their literals; learnt
/// clauses additionally carry an activity (bumped when they participate in
/// conflict analysis) and their literal-block distance at learn time.
/// Deleted clauses keep their slot (watch lists and reasons index by slot)
/// with `lits` emptied; slots are recycled through a free list.
struct Clause {
    lits: Vec<SatLit>,
    learnt: bool,
    activity: f64,
    lbd: u32,
}

/// A CDCL SAT solver; see the [module documentation](self).
pub struct Solver {
    clauses: Vec<Clause>,
    /// Recycled slots of deleted clauses.
    free: Vec<u32>,
    watches: Vec<Vec<u32>>,
    assign: Vec<Value>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// VSIDS decision order over unassigned variables.
    order: ActivityHeap,
    cla_inc: f64,
    seen: Vec<bool>,
    /// Set when an empty clause (or a root-level conflict) makes the formula
    /// trivially unsatisfiable.
    unsat: bool,
    db_reduction: bool,
    reduce_threshold: usize,
    /// Luby restart unit in conflicts; [`RESTART_BASE`] unless a
    /// portfolio diversified this instance.
    restart_base: u64,
    /// Nonzero when this instance carries diversified initial VSIDS
    /// activities (portfolio workers ≥ 1); 0 is the pinned reference.
    diversity_seed: u64,
    /// Initial saved phase for freshly allocated variables.
    default_phase: bool,
    num_learnts: usize,
    num_conflicts: u64,
    num_decisions: u64,
    num_propagations: u64,
    num_restarts: u64,
    num_learnts_deleted: u64,
    /// Stats at the previous telemetry heartbeat, so each
    /// `SolverProgress` event carries deltas an aggregator can sum
    /// across many solver instances.
    last_progress: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            free: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: ActivityHeap::new(),
            cla_inc: 1.0,
            seen: Vec::new(),
            unsat: false,
            db_reduction: true,
            reduce_threshold: DEFAULT_REDUCE_THRESHOLD,
            restart_base: RESTART_BASE,
            diversity_seed: 0,
            default_phase: false,
            num_learnts: 0,
            num_conflicts: 0,
            num_decisions: 0,
            num_propagations: 0,
            num_restarts: 0,
            num_learnts_deleted: 0,
            last_progress: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = self.assign.len() as SatVar;
        self.assign.push(Value::Unassigned);
        self.phase.push(self.default_phase);
        self.level.push(0);
        self.reason.push(INVALID_CLAUSE);
        self.activity.push(if self.diversity_seed == 0 {
            0.0
        } else {
            diversity_activity(self.diversity_seed, v)
        });
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Seeds diversified initial VSIDS activities (applied retroactively
    /// to existing variables and to every variable allocated later). The
    /// perturbations are tiny (≤ 1e-6, against a decision bump of 1.0),
    /// so they only reshuffle the tie order among untouched variables —
    /// enough to send racing instances down different branches. Seed 0 is
    /// the undiversified pinned reference (a no-op).
    pub fn set_diversity_seed(&mut self, seed: u64) {
        self.diversity_seed = seed;
        if seed == 0 {
            return;
        }
        for v in 0..self.activity.len() {
            self.activity[v] = diversity_activity(seed, v as SatVar);
        }
        self.order.rebuild(&self.activity);
    }

    /// Overrides the Luby restart unit (default 100 conflicts) — a
    /// portfolio diversification knob: workers on longer units dig
    /// deeper between restarts, workers on shorter ones resample more.
    pub fn set_restart_base(&mut self, base: u64) {
        self.restart_base = base.max(1);
    }

    /// Sets the initial saved phase handed to fresh variables (and to
    /// every currently unassigned variable). The default `false` matches
    /// the classic MiniSat negative-first policy; portfolio workers flip
    /// it to explore the complementary half of the space first.
    pub fn set_default_phase(&mut self, phase: bool) {
        self.default_phase = phase;
        for (v, ph) in self.phase.iter_mut().enumerate() {
            if self.assign[v] == Value::Unassigned {
                *ph = phase;
            }
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of live clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.free.len()
    }

    /// Cumulative effort statistics.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            decisions: self.num_decisions,
            propagations: self.num_propagations,
            conflicts: self.num_conflicts,
            restarts: self.num_restarts,
            learnts_kept: self.num_learnts as u64,
            learnts_deleted: self.num_learnts_deleted,
        }
    }

    /// Emits a telemetry heartbeat carrying both cumulative counters and
    /// deltas since the previous heartbeat. No-op (and no allocation)
    /// when no trace sink is installed.
    fn emit_progress(&mut self) {
        if !telemetry::tracing() {
            return;
        }
        let stats = self.stats();
        let last = self.last_progress;
        self.last_progress = stats;
        telemetry::trace(|| telemetry::EventKind::SolverProgress {
            total: counters(stats),
            delta: counters(SolverStats {
                decisions: stats.decisions - last.decisions,
                propagations: stats.propagations - last.propagations,
                conflicts: stats.conflicts - last.conflicts,
                restarts: stats.restarts - last.restarts,
                learnts_kept: 0,
                learnts_deleted: 0,
            }),
        });
    }

    /// Enables or disables learnt-clause database reduction (on by
    /// default). Reduction only ever drops *learnt* clauses — which are
    /// implied by the original formula — so verdicts are unaffected; the
    /// soundness tests cross-check a reducing solver against a
    /// non-reducing one.
    pub fn set_db_reduction(&mut self, enabled: bool) {
        self.db_reduction = enabled;
    }

    /// Overrides the live-learnt count that triggers the next database
    /// reduction (default 4000). Primarily a test/tuning hook: a tiny
    /// threshold forces reductions on small instances.
    pub fn set_reduce_threshold(&mut self, threshold: usize) {
        self.reduce_threshold = threshold.max(1);
    }

    /// True when every unassigned variable is queued in the decision heap —
    /// the invariant that makes [`Solver::solve`]'s `decide` loop complete.
    /// Exposed for the property tests; not part of the stable API.
    #[doc(hidden)]
    pub fn decision_heap_consistent(&self) -> bool {
        (0..self.assign.len())
            .all(|v| self.assign[v] != Value::Unassigned || self.order.contains(v as SatVar))
    }

    fn lit_value(&self, lit: SatLit) -> Value {
        match self.assign[lit.var() as usize] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if lit.is_negative() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if lit.is_negative() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    /// Adds a clause. If a model from a previous `solve` call is still
    /// active, it is discarded (the solver backtracks to level 0).
    ///
    /// # Panics
    ///
    /// Panics if any literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[SatLit]) {
        self.cancel_until(0);
        for l in lits {
            assert!((l.var() as usize) < self.assign.len(), "unknown variable");
        }
        // Simplify: drop duplicate literals; detect tautologies.
        let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if simplified.contains(&!l) {
                return; // tautology, always satisfied
            }
            if !simplified.contains(&l) {
                // Skip literals already false at level 0 and drop the clause
                // if any literal is already true at level 0.
                match self.lit_value(l) {
                    Value::True => return,
                    Value::False => continue,
                    Value::Unassigned => simplified.push(l),
                }
            }
        }
        match simplified.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(simplified[0], INVALID_CLAUSE)
                    || self.propagate() != INVALID_CLAUSE
                {
                    self.unsat = true;
                }
            }
            _ => {
                self.alloc_clause(simplified, false, 0);
            }
        }
    }

    /// Stores a clause (recycling a deleted slot when one exists) and
    /// attaches its first two literals to the watch lists.
    fn alloc_clause(&mut self, lits: Vec<SatLit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2, "stored clauses have at least 2 literals");
        let (w0, w1) = (lits[0], lits[1]);
        let clause = Clause {
            lits,
            learnt,
            activity: if learnt { self.cla_inc } else { 0.0 },
            lbd,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.clauses[i as usize] = clause;
                i
            }
            None => {
                self.clauses.push(clause);
                (self.clauses.len() - 1) as u32
            }
        };
        self.watches[w0.index()].push(idx);
        self.watches[w1.index()].push(idx);
        if learnt {
            self.num_learnts += 1;
        }
        idx
    }

    /// Removes a clause from the database: detaches its watches, empties
    /// its literal list, and recycles the slot.
    fn detach_clause(&mut self, ci: u32) {
        let (w0, w1) = {
            let c = &self.clauses[ci as usize];
            (c.lits[0], c.lits[1])
        };
        for w in [w0, w1] {
            let list = &mut self.watches[w.index()];
            let p = list
                .iter()
                .position(|&x| x == ci)
                .expect("live clause is watched by its first two literals");
            list.swap_remove(p);
        }
        let c = &mut self.clauses[ci as usize];
        c.lits = Vec::new();
        if c.learnt {
            self.num_learnts -= 1;
            self.num_learnts_deleted += 1;
        }
        self.free.push(ci);
    }

    /// True when `ci` is the reason of its asserting literal's current
    /// assignment (such clauses must survive reduction).
    fn clause_is_locked(&self, ci: u32) -> bool {
        let v = self.clauses[ci as usize].lits[0].var() as usize;
        self.reason[v] == ci && self.assign[v] != Value::Unassigned
    }

    /// Deletes the cold half of the deletable learnt clauses: glue clauses
    /// (LBD ≤ 2), binary clauses and active reasons are kept; the rest are
    /// ranked by activity (LBD and slot index as deterministic tiebreaks)
    /// and the bottom half is dropped.
    fn reduce_db(&mut self) {
        let mut cands: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&ci| {
                let c = &self.clauses[ci as usize];
                !c.lits.is_empty()
                    && c.learnt
                    && c.lits.len() > 2
                    && c.lbd > GLUE_LBD
                    && !self.clause_is_locked(ci)
            })
            .collect();
        cands.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            ca.activity
                .partial_cmp(&cb.activity)
                .expect("clause activities are never NaN")
                .then(cb.lbd.cmp(&ca.lbd))
                .then(a.cmp(&b))
        });
        cands.truncate(cands.len() / 2);
        for ci in cands {
            self.detach_clause(ci);
        }
    }

    /// Enqueues an assignment; returns false on conflict with the current
    /// assignment.
    fn enqueue(&mut self, lit: SatLit, reason: u32) -> bool {
        match self.lit_value(lit) {
            Value::True => true,
            Value::False => false,
            Value::Unassigned => {
                let v = lit.var() as usize;
                self.assign[v] = if lit.is_negative() {
                    Value::False
                } else {
                    Value::True
                };
                self.phase[v] = !lit.is_negative();
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause or
    /// `INVALID_CLAUSE`.
    fn propagate(&mut self) -> u32 {
        self.propagate_ctl(None)
    }

    /// Unit propagation with an optional portfolio stop flag, polled
    /// every 1024 propagations (one relaxed load amortised over a long
    /// propagation burst — invisible in the serial reference, bounded
    /// cancellation latency in a race). Returns [`CANCELLED`] when the
    /// flag is up; the poll sits between trail literals, so the watch
    /// lists and `qhead` are consistent and the queue resumes later.
    fn propagate_ctl(&mut self, stop: Option<&AtomicBool>) -> u32 {
        while self.qhead < self.trail.len() {
            if let Some(flag) = stop {
                if self.num_propagations & 1023 == 0 && flag.load(Ordering::Relaxed) {
                    return CANCELLED;
                }
            }
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.num_propagations += 1;
            let false_lit = !lit;
            // Take the watch list; rebuild it as we go.
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                enum Action {
                    Keep,
                    Move(SatLit),
                    Unit(SatLit),
                }
                let action = {
                    let clause = &mut self.clauses[ci as usize].lits;
                    // Ensure the false literal is at position 1.
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], false_lit);
                    let first = clause[0];
                    if value_in(&self.assign, first) == Value::True {
                        Action::Keep // clause already satisfied
                    } else {
                        // Look for a new literal to watch.
                        let mut found = None;
                        for k in 2..clause.len() {
                            if value_in(&self.assign, clause[k]) != Value::False {
                                clause.swap(1, k);
                                found = Some(clause[1]);
                                break;
                            }
                        }
                        match found {
                            Some(l) => Action::Move(l),
                            None => Action::Unit(first),
                        }
                    }
                };
                match action {
                    Action::Keep => i += 1,
                    Action::Move(new_watch) => {
                        self.watches[new_watch.index()].push(ci);
                        watch_list.swap_remove(i);
                    }
                    Action::Unit(first) => {
                        // Clause is unit or conflicting.
                        if !self.enqueue(first, ci) {
                            // Conflict: restore remaining watches and report.
                            self.watches[false_lit.index()].extend_from_slice(&watch_list);
                            self.qhead = self.trail.len();
                            return ci;
                        }
                        i += 1;
                    }
                }
            }
            self.watches[false_lit.index()] = watch_list;
        }
        INVALID_CLAUSE
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            // Uniform scaling preserves strict order but can collapse tiny
            // activities into ties; re-heapify so the heap property holds
            // under the (index-tiebroken) total order.
            self.order.rebuild(&self.activity);
        }
        self.order.bumped(v as SatVar, &self.activity);
    }

    fn bump_clause(&mut self, ci: u32) {
        if !self.clauses[ci as usize].learnt {
            return;
        }
        self.clauses[ci as usize].activity += self.cla_inc;
        if self.clauses[ci as usize].activity > 1e20 {
            for c in &mut self.clauses {
                if c.learnt {
                    c.activity *= 1e-20;
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance: number of distinct decision levels among the
    /// clause's literals (computed at learn time, before backjumping).
    fn clause_lbd(&self, lits: &[SatLit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var() as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<SatLit>, u32) {
        let mut learnt: Vec<SatLit> = vec![SatLit::positive(0)]; // placeholder slot 0
        let mut counter = 0usize;
        let mut lit: Option<SatLit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            // Clauses that drive conflicts are the ones worth keeping.
            self.bump_clause(clause_idx);
            let start = if lit.is_none() { 0 } else { 1 };
            let clause_len = self.clauses[clause_idx as usize].lits.len();
            for k in start..clause_len {
                let q = self.clauses[clause_idx as usize].lits[k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_pos -= 1;
                let p = self.trail[trail_pos];
                if self.seen[p.var() as usize] {
                    lit = Some(p);
                    break;
                }
            }
            let p = lit.expect("found a seen literal");
            self.seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p;
                break;
            }
            clause_idx = self.reason[p.var() as usize];
            debug_assert_ne!(clause_idx, INVALID_CLAUSE, "UIP literal has a reason");
        }

        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }

        // Backjump level: the highest level among the non-asserting
        // literals.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level to position 1 (watch
        // invariant after backjumping).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == backjump)
                .expect("a literal at the backjump level exists")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, backjump)
    }

    fn cancel_until(&mut self, target_level: u32) {
        while self.trail_lim.len() as u32 > target_level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail non-empty");
                let v = lit.var() as usize;
                self.assign[v] = Value::Unassigned;
                self.reason[v] = INVALID_CLAUSE;
                self.order.insert(v as SatVar, &self.activity);
            }
        }
        // Clamp rather than jump: after a cancelled propagation `qhead`
        // may sit below the surviving trail, and skipping those queued
        // literals would silently drop implications (future wrong
        // verdicts). On every non-cancelled path propagation has drained
        // the queue, so the clamp is the old assignment exactly.
        self.qhead = self.qhead.min(self.trail.len());
    }

    /// Picks the unassigned variable ordered first by the VSIDS heap.
    /// Variables assigned by propagation are skipped lazily (backtracking
    /// re-inserts every unassigned variable), and ties on activity resolve
    /// to the lowest index, so the pick is deterministic.
    fn decide(&mut self) -> Option<SatLit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v as usize] == Value::Unassigned {
                return Some(SatLit::new(v, !self.phase[v as usize]));
            }
        }
        None
    }

    /// Solves the formula under the given assumptions.
    ///
    /// After [`SatResult::Sat`], [`Solver::value`] reports the model. The
    /// solver can be re-used: more clauses and further `solve` calls are
    /// allowed.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SatResult {
        match self.search(assumptions, u64::MAX, None, None) {
            Ok(r) => r,
            Err(_) => unreachable!("unlimited, uncancellable search always concludes"),
        }
    }

    /// Like [`Solver::solve`], but gives up after `max_conflicts` conflicts,
    /// returning `None`. The solver stays usable after a budget exhaustion:
    /// learnt clauses are kept, and a later (larger-budget) call resumes the
    /// proof effort.
    ///
    /// This is the primitive behind AppSAT-style *approximate* attacks,
    /// which trade completeness for bounded per-query effort.
    pub fn solve_limited(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: u64,
    ) -> Option<SatResult> {
        self.search(assumptions, max_conflicts, None, None).ok()
    }

    /// The portfolio entry point: a conflict-budgeted solve that also
    /// polls `stop` (raised by a sibling that finished first) and, when
    /// `exchange` is given, publishes learnt glue clauses and imports
    /// siblings' glue at restart boundaries.
    ///
    /// A raised stop flag yields `Err(Interrupt::Cancelled)` — always the
    /// indeterminate result, never a verdict — and leaves the solver in
    /// the same resumable state a budget exhaustion would.
    pub fn solve_raced(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: u64,
        stop: &AtomicBool,
        exchange: Option<&mut dyn ClauseExchange>,
    ) -> Result<SatResult, Interrupt> {
        // The in-search poll fires every 1024 propagations; an
        // unconditional entry check keeps the contract exact — a tripped
        // flag NEVER yields a verdict, even on instances small enough to
        // decide between two poll points.
        if stop.load(Ordering::Relaxed) {
            return Err(Interrupt::Cancelled);
        }
        self.search(assumptions, max_conflicts, Some(stop), exchange)
    }

    /// Splices a batch of imported glue clauses in at the root level:
    /// simplifies each against the root assignment, stores survivors as
    /// undeletable glue learnts, then runs one propagation pass over the
    /// enqueued units. Caller must already be at decision level 0.
    fn import_clauses(
        &mut self,
        imports: &mut Vec<Vec<SatLit>>,
        stop: Option<&AtomicBool>,
    ) -> ImportOutcome {
        debug_assert!(self.trail_lim.is_empty(), "imports splice in at the root");
        for lits in imports.drain(..) {
            let mut simplified: Vec<SatLit> = Vec::with_capacity(lits.len());
            let mut satisfied = false;
            for &l in &lits {
                if simplified.contains(&!l) {
                    satisfied = true; // tautology
                    break;
                }
                if !simplified.contains(&l) {
                    match self.lit_value(l) {
                        Value::True => {
                            satisfied = true;
                            break;
                        }
                        Value::False => continue,
                        Value::Unassigned => simplified.push(l),
                    }
                }
            }
            if satisfied {
                continue;
            }
            match simplified.len() {
                // An imported clause is implied by the shared formula, so
                // falsifying it at the root is a genuine UNSAT proof.
                0 => return ImportOutcome::RootConflict,
                1 => {
                    if !self.enqueue(simplified[0], INVALID_CLAUSE) {
                        return ImportOutcome::RootConflict;
                    }
                }
                // Imported glue is pinned at GLUE_LBD so database
                // reduction never drops it (matching its status in the
                // exporting instance).
                _ => {
                    self.alloc_clause(simplified, true, GLUE_LBD);
                }
            }
        }
        match self.propagate_ctl(stop) {
            INVALID_CLAUSE => ImportOutcome::Proceed,
            CANCELLED => ImportOutcome::Cancelled,
            _conflict => ImportOutcome::RootConflict,
        }
    }

    fn search(
        &mut self,
        assumptions: &[SatLit],
        max_conflicts: u64,
        stop: Option<&AtomicBool>,
        mut exchange: Option<&mut dyn ClauseExchange>,
    ) -> Result<SatResult, Interrupt> {
        if self.unsat {
            return Ok(SatResult::Unsat);
        }
        self.cancel_until(0);
        match self.propagate_ctl(stop) {
            INVALID_CLAUSE => {}
            CANCELLED => return Err(Interrupt::Cancelled),
            _conflict => {
                self.unsat = true;
                return Ok(SatResult::Unsat);
            }
        }
        let mut import_buf: Vec<Vec<SatLit>> = Vec::new();
        if let Some(ex) = exchange.as_deref_mut() {
            ex.import(&mut import_buf);
            match self.import_clauses(&mut import_buf, stop) {
                ImportOutcome::Proceed => {}
                ImportOutcome::Cancelled => return Err(Interrupt::Cancelled),
                ImportOutcome::RootConflict => {
                    self.unsat = true;
                    return Ok(SatResult::Unsat);
                }
            }
        }

        let mut curr_restarts = 0u64;
        let mut restart_limit = luby(curr_restarts) * self.restart_base;
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_this_call = 0u64;

        loop {
            let conflict = self.propagate_ctl(stop);
            if conflict == CANCELLED {
                self.cancel_until(0);
                return Err(Interrupt::Cancelled);
            }
            if conflict != INVALID_CLAUSE {
                self.num_conflicts += 1;
                conflicts_since_restart += 1;
                conflicts_this_call += 1;
                if self.num_conflicts & (PROGRESS_INTERVAL - 1) == 0 {
                    self.emit_progress();
                }
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Ok(SatResult::Unsat);
                }
                // Conflicts below the assumption levels mean the assumptions
                // are inconsistent with the formula; analyze() still works,
                // and re-deciding the assumptions below re-detects it until
                // the learnt clauses force a root conflict. To keep it
                // simple and terminating, treat a conflict at or below the
                // number of assumption levels as UNSAT-under-assumptions.
                let (learnt, backjump) = self.analyze(conflict);
                if (self.trail_lim.len() as u32) <= num_assumed_levels(assumptions, self) {
                    return Ok(SatResult::Unsat);
                }
                // Decay activities.
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if let Some(ex) = exchange.as_deref_mut() {
                        ex.export(&learnt, 1);
                    }
                    // A unit learnt must live at the root: enqueueing it at
                    // an assumption level would leave a reason-less literal
                    // above level 0, which a later conflict analysis cannot
                    // resolve through. The main loop re-decides the
                    // assumptions afterwards.
                    self.cancel_until(0);
                    if !self.enqueue(asserting, INVALID_CLAUSE) {
                        self.unsat = true;
                        return Ok(SatResult::Unsat);
                    }
                    match self.propagate_ctl(stop) {
                        INVALID_CLAUSE => {}
                        CANCELLED => {
                            self.cancel_until(0);
                            return Err(Interrupt::Cancelled);
                        }
                        _conflict => {
                            self.unsat = true;
                            return Ok(SatResult::Unsat);
                        }
                    }
                } else {
                    // LBD is measured before backjumping unassigns levels.
                    let lbd = self.clause_lbd(&learnt);
                    if learnt.len() <= 2 || lbd <= GLUE_LBD {
                        if let Some(ex) = exchange.as_deref_mut() {
                            ex.export(&learnt, lbd);
                        }
                    }
                    let backjump = backjump.max(num_assumed_levels(assumptions, self));
                    self.cancel_until(backjump);
                    let idx = self.alloc_clause(learnt, true, lbd);
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok, "asserting literal must be enqueueable");
                }
                if self.db_reduction && self.num_learnts >= self.reduce_threshold {
                    self.reduce_db();
                    self.reduce_threshold += self.reduce_threshold / 2;
                }
                if conflicts_this_call >= max_conflicts {
                    self.cancel_until(0);
                    return Err(Interrupt::Budget);
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    curr_restarts += 1;
                    restart_limit = luby(curr_restarts) * self.restart_base;
                    self.num_restarts += 1;
                    self.cancel_until(num_assumed_levels(assumptions, self));
                    if let Some(ex) = exchange.as_deref_mut() {
                        ex.import(&mut import_buf);
                        if !import_buf.is_empty() {
                            // Imports splice in at the root; the main
                            // loop re-decides the assumptions afterwards.
                            self.cancel_until(0);
                            match self.import_clauses(&mut import_buf, stop) {
                                ImportOutcome::Proceed => {}
                                ImportOutcome::Cancelled => {
                                    self.cancel_until(0);
                                    return Err(Interrupt::Cancelled);
                                }
                                ImportOutcome::RootConflict => {
                                    self.unsat = true;
                                    return Ok(SatResult::Unsat);
                                }
                            }
                        }
                    }
                }
                continue;
            }

            // Assumption decisions first.
            let next_level = self.trail_lim.len();
            if next_level < assumptions.len() {
                let a = assumptions[next_level];
                match self.lit_value(a) {
                    Value::True => {
                        // Already implied; open an empty decision level so
                        // the level <-> assumption-index bookkeeping stays
                        // aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    Value::False => return Ok(SatResult::Unsat),
                    Value::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, INVALID_CLAUSE);
                        debug_assert!(ok);
                        continue;
                    }
                }
            }

            match self.decide() {
                None => return Ok(SatResult::Sat),
                Some(lit) => {
                    self.num_decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let ok = self.enqueue(lit, INVALID_CLAUSE);
                    debug_assert!(ok);
                }
            }
        }
    }

    /// The model value of `var` after a [`SatResult::Sat`] answer; `None` if
    /// the variable is unassigned (didn't matter).
    pub fn value(&self, var: SatVar) -> Option<bool> {
        match self.assign[var as usize] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    /// The model value of a literal.
    pub fn lit_bool(&self, lit: SatLit) -> Option<bool> {
        self.value(lit.var()).map(|v| v ^ lit.is_negative())
    }
}

/// Deterministic per-variable activity perturbation for portfolio
/// diversification: a splitmix64-style hash of (seed, var) scaled into
/// (0, 1e-6] — large enough to reshuffle ties, three orders of magnitude
/// below the first real VSIDS bump.
fn diversity_activity(seed: u64, var: SatVar) -> f64 {
    let mut z = seed ^ (u64::from(var)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to (0, 1]: never exactly 0, so diversified instances are
    // distinguishable from the pinned reference on every variable.
    ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64 * 1e-6
}

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, … (`i` is 0-based).
fn luby(i: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// Literal value lookup over the assignment array (a free function so it can
/// be used while other solver fields are mutably borrowed).
fn value_in(assign: &[Value], lit: SatLit) -> Value {
    match assign[lit.var() as usize] {
        Value::Unassigned => Value::Unassigned,
        Value::True => {
            if lit.is_negative() {
                Value::False
            } else {
                Value::True
            }
        }
        Value::False => {
            if lit.is_negative() {
                Value::True
            } else {
                Value::False
            }
        }
    }
}

fn num_assumed_levels(assumptions: &[SatLit], solver: &Solver) -> u32 {
    (assumptions.len() as u32).min(solver.trail_lim.len() as u32)
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solver {{ vars: {}, clauses: {}, conflicts: {} }}",
            self.num_vars(),
            self.num_clauses(),
            self.num_conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: SatVar, neg: bool) -> SatLit {
        SatLit::new(v, neg)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, false)]);
        s.add_clause(&[lit(a, true)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Solver::new();
        let vars: Vec<SatVar> = (0..10).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], true), lit(w[1], false)]); // v[i] -> v[i+1]
        }
        s.add_clause(&[lit(vars[0], false)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for &v in &vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[SatLit::positive(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn xor_constraints() {
        // a xor b, b xor c, a xor c is UNSAT (odd cycle).
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let xor = |s: &mut Solver, x: SatVar, y: SatVar| {
            s.add_clause(&[lit(x, false), lit(y, false)]);
            s.add_clause(&[lit(x, true), lit(y, true)]);
        };
        xor(&mut s, a, b);
        xor(&mut s, b, c);
        xor(&mut s, a, c);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_flip_results() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, false)]); // a -> b
        assert_eq!(s.solve(&[lit(a, false), lit(b, true)]), SatResult::Unsat);
        assert_eq!(s.solve(&[lit(a, false), lit(b, false)]), SatResult::Sat);
        // Solver is reusable after both answers.
        assert_eq!(s.solve(&[lit(a, true)]), SatResult::Sat);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // 12 variables, random 3-SAT instances cross-checked against
        // exhaustive enumeration.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..20 {
            let nvars = 12u32;
            let nclauses = 48;
            let mut clauses: Vec<Vec<SatLit>> = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as SatVar;
                    let neg = next() % 2 == 0;
                    cl.push(SatLit::new(v, neg));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut bf_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    let ok = cl.iter().any(|l| {
                        let val = (m >> l.var()) & 1 != 0;
                        val ^ l.is_negative()
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                bf_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl);
            }
            let got = s.solve(&[]);
            assert_eq!(
                got,
                if bf_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
            );
            if got == SatResult::Sat {
                // The model must satisfy every clause.
                for cl in &clauses {
                    assert!(cl.iter().any(|l| s.lit_bool(*l).unwrap_or(false)));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn pigeonhole_4_into_3_is_unsat() {
        let mut s = Solver::new();
        let mut p = vec![[SatLit::positive(0); 3]; 4];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(&[row[0], row[1], row[2]]);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "UNSAT proof requires conflicts");
    }

    #[test]
    fn incremental_clause_addition_after_sat() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        // Narrow the solution space incrementally.
        s.add_clause(&[!a]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.lit_bool(b), Some(true));
        s.add_clause(&[!b]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        // Once root-level UNSAT, it stays UNSAT.
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_simplified() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let before = s.num_clauses();
        s.add_clause(&[a, !a]); // tautology: dropped
        assert_eq!(s.num_clauses(), before);
        s.add_clause(&[a, a]); // duplicates collapse to a unit
        assert_eq!(
            s.num_clauses(),
            before,
            "unit clauses are enqueued, not stored"
        );
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.lit_bool(a), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn limited_solve_gives_up_and_resumes() {
        // Pigeonhole 6-into-5 needs many conflicts; a 1-conflict budget must
        // give up, and an unlimited retry on the same solver must finish.
        let mut s = Solver::new();
        let mut p = vec![[SatLit::positive(0); 5]; 6];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..5 {
            for i1 in 0..6 {
                for i2 in (i1 + 1)..6 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[], 1), None, "budget must be exhausted");
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SatResult::Unsat));
    }

    #[test]
    fn limited_solve_matches_solve_on_easy_instances() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_limited(&[], 1000), Some(SatResult::Sat));
        assert_eq!(s.solve_limited(&[!a, !b], 1000), Some(SatResult::Unsat));
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn assumptions_do_not_pollute_later_solves() {
        let mut s = Solver::new();
        let a = SatLit::positive(s.new_var());
        let b = SatLit::positive(s.new_var());
        s.add_clause(&[a, b]);
        assert_eq!(s.solve(&[!a, !b]), SatResult::Unsat);
        // Without assumptions the instance is satisfiable again.
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.lit_bool(b), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn db_reduction_keeps_unsat_verdicts_and_deletes_learnts() {
        // Pigeonhole 7-into-6 generates plenty of learnt clauses; with a
        // tiny reduction threshold the database must actually shrink while
        // the UNSAT verdict is unaffected (learnt clauses are implied).
        let mut s = Solver::new();
        s.set_reduce_threshold(20);
        let mut p = vec![[SatLit::positive(0); 6]; 7];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let stats = s.stats();
        assert!(
            stats.learnts_deleted > 0,
            "a 20-clause threshold must trigger reduction (stats: {stats:?})"
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // hole index j is clearest as written
    fn restarts_are_counted_under_the_luby_schedule() {
        // Any instance needing > RESTART_BASE conflicts restarts at least
        // once; pigeonhole 7-into-6 comfortably qualifies.
        let mut s = Solver::new();
        let mut p = vec![[SatLit::positive(0); 6]; 7];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = SatLit::positive(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row);
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let stats = s.stats();
        assert!(stats.conflicts > 100);
        assert!(stats.restarts > 0, "stats: {stats:?}");
    }
}
