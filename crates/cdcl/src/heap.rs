//! The indexed max-heap behind the solver's VSIDS decision order.
//!
//! [`ActivityHeap`] keeps every *unassigned* variable ordered by activity
//! so [`Solver::solve`](crate::Solver::solve) picks its next decision in
//! O(log n) instead of the O(n) scan the first implementation used — the
//! bottleneck once four-copy 2-DIP miters double the variable count.
//!
//! The heap does not own the activities (they live in the solver and are
//! bumped during conflict analysis); every operation takes the activity
//! slice as an argument. Ordering is a **strict total order** —
//! activity descending, variable index ascending on ties — so the pop
//! sequence is fully deterministic and survives the uniform `var_inc`
//! rescale (which multiplies every activity by the same constant).

use crate::solver::SatVar;

const ABSENT: u32 = u32::MAX;

/// Is `a` ordered strictly before `b`? Ties on activity break towards the
/// smaller variable index, making the order total (and decisions
/// reproducible across runs and platforms).
#[inline]
fn precedes(act: &[f64], a: SatVar, b: SatVar) -> bool {
    let (aa, ab) = (act[a as usize], act[b as usize]);
    aa > ab || (aa == ab && a < b)
}

/// An indexed binary max-heap of variables keyed by activity; see the
/// [module documentation](self).
#[derive(Clone, Debug, Default)]
pub struct ActivityHeap {
    /// Heap-ordered variables.
    heap: Vec<SatVar>,
    /// `pos[v]` is `v`'s index in `heap`, or `ABSENT`.
    pos: Vec<u32>,
}

impl ActivityHeap {
    /// An empty heap.
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Number of variables currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no variable is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `var` is currently queued.
    pub fn contains(&self, var: SatVar) -> bool {
        self.pos.get(var as usize).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `var` (no-op if already present).
    pub fn insert(&mut self, var: SatVar, act: &[f64]) {
        if self.pos.len() <= var as usize {
            self.pos.resize(var as usize + 1, ABSENT);
        }
        if self.pos[var as usize] != ABSENT {
            return;
        }
        let i = self.heap.len();
        self.heap.push(var);
        self.pos[var as usize] = i as u32;
        self.sift_up(i, act);
    }

    /// Removes and returns the variable ordered first (highest activity,
    /// lowest index on ties).
    pub fn pop(&mut self, act: &[f64]) -> Option<SatVar> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    /// Restores the heap property after `var`'s activity increased (VSIDS
    /// bumps only ever raise activities, so sifting up suffices).
    pub fn bumped(&mut self, var: SatVar, act: &[f64]) {
        if let Some(&p) = self.pos.get(var as usize) {
            if p != ABSENT {
                self.sift_up(p as usize, act);
            }
        }
    }

    /// Re-heapifies the current contents (deterministic bottom-up
    /// heapify). Needed after a global activity rescale: uniform scaling
    /// preserves strict order but underflow can collapse near-zero
    /// activities into ties, whose index tiebreak may disagree with the
    /// stored layout.
    pub fn rebuild(&mut self, act: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if precedes(act, self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && precedes(act, self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && precedes(act, self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order_with_index_tiebreak() {
        let act = vec![1.0, 3.0, 3.0, 0.5, 2.0];
        let mut h = ActivityHeap::new();
        for v in [4u32, 2, 0, 3, 1] {
            h.insert(v, &act);
        }
        let order: Vec<SatVar> = std::iter::from_fn(|| h.pop(&act)).collect();
        assert_eq!(order, vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn insert_is_idempotent_and_contains_tracks_membership() {
        let act = vec![0.0; 3];
        let mut h = ActivityHeap::new();
        h.insert(1, &act);
        h.insert(1, &act);
        assert_eq!(h.len(), 1);
        assert!(h.contains(1));
        assert!(!h.contains(0));
        assert_eq!(h.pop(&act), Some(1));
        assert!(h.is_empty());
        assert_eq!(h.pop(&act), None);
    }

    #[test]
    fn bumped_restores_order_after_an_activity_raise() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.bumped(0, &act);
        assert_eq!(h.pop(&act), Some(0));
        assert_eq!(h.pop(&act), Some(2));
        assert_eq!(h.pop(&act), Some(1));
    }
}
