//! Monotonic process clock and small per-thread ordinals.
//!
//! Every event carries a timestamp in microseconds since the **process
//! epoch** — the first time any telemetry call touched the clock — so
//! timelines from different sinks line up without wall-clock skew, and a
//! thread ordinal assigned on first use (the main thread is almost always
//! `0`; pool workers get small consecutive ids). Ordinals are what the
//! Chrome-trace exporter uses as `tid`s, so they must be cheap to read
//! (one thread-local load on the fast path) and stable for the lifetime
//! of the thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_ORDINAL: AtomicU32 = AtomicU32::new(0);

std::thread_local! {
    static ORDINAL: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Microseconds since the process epoch (monotonic, never goes backwards).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Pins the epoch to "now" if no telemetry call has touched the clock yet
/// (harness inits call this so `t_us = 0` means "harness start").
pub fn pin_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// This thread's small ordinal (assigned on first call, stable after).
pub fn thread_ordinal() -> u32 {
    ORDINAL.with(|c| {
        let v = c.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn ordinals_are_stable_per_thread_and_distinct_across_threads() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "ordinal is sticky");
        let theirs = std::thread::spawn(thread_ordinal).join().expect("join");
        assert_ne!(mine, theirs, "another thread gets its own ordinal");
    }
}
