//! Minimal JSON writing and parsing, std-only.
//!
//! The writer side is just [`escape`] (event serialisation builds its
//! objects with `format!`). The parser exists so the sink tests and the
//! `trace_check` CI binary can *prove* every emitted line is
//! well-formed — a hand-rolled "does it look like JSON" regex would
//! defeat the point of a schema check. It is a strict recursive-descent
//! parser over the RFC 8259 grammar: no trailing commas, no comments, no
//! bare NaN/Infinity (the emitters must never produce them).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal (no surrounding
/// quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our emitters;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is safe
                    // to do bytewise by finding the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().ok_or("empty char")?;
                    if (c as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let mut any = false;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
                any = true;
            }
            any
        };
        // Integer part: "0" or [1-9][0-9]* — leading zeros are invalid JSON.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(format!("leading zero at byte {start}"));
                }
            }
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(format!("bad number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escaped_strings() {
        let raw = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&json).expect("parses"), Value::Str(raw.to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("e").and_then(|e| e.as_str()), Some("x"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01",
            "1.2.3",
            "nul",
            "{}garbage",
            "\"ctrl\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
