//! End-of-run aggregation.
//!
//! [`SummarySink`] folds the event stream into one [`SummaryReport`]:
//! pool occupancy, solver effort, search-cache behaviour and trainer
//! throughput, summed across every instance that emitted (the delta
//! convention in `event.rs` makes that a plain accumulation). On finish
//! it renders a compact stderr table — the table harnesses used to
//! hand-build — and writes a machine-readable `BENCH_<name>.json`.

use crate::event::{Event, EventKind};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Aggregated run statistics (also serialised as `BENCH_<name>.json`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummaryReport {
    /// Harness name (the `BENCH_*.json` stem).
    pub name: String,
    /// Wall time from init to finish, microseconds.
    pub wall_us: u64,
    /// Cells completed.
    pub cells: u64,
    /// Pool jobs executed.
    pub pool_jobs: u64,
    /// Of those, stolen from a sibling queue.
    pub pool_stolen: u64,
    /// Summed worker busy time, microseconds.
    pub pool_busy_us: u64,
    /// Pool batches dispatched.
    pub pool_batches: u64,
    /// Solver conflicts (summed deltas across all solver instances).
    pub solver_conflicts: u64,
    /// Solver propagations (summed deltas).
    pub solver_propagations: u64,
    /// Solver restarts (summed deltas).
    pub solver_restarts: u64,
    /// Budget-exhaustion events.
    pub budget_exhaustions: u64,
    /// Portfolio races run.
    pub portfolio_races: u64,
    /// Glue clauses imported across all portfolio workers (summed).
    pub portfolio_imported: u64,
    /// Glue clauses exported across all portfolio workers (summed).
    pub portfolio_exported: u64,
    /// Search temperature steps.
    pub search_steps: u64,
    /// Candidates proposed across all steps.
    pub search_candidates: u64,
    /// Steps that accepted a candidate.
    pub search_accepted: u64,
    /// Synthesis-cache hits (summed deltas).
    pub cache_hits: u64,
    /// Synthesis-cache misses (summed deltas).
    pub cache_misses: u64,
    /// Synthesis-cache evictions (summed deltas).
    pub cache_evictions: u64,
    /// Fraig sweeps completed.
    pub fraig_passes: u64,
    /// Nodes merged by fraig sweeps (summed).
    pub fraig_merges: u64,
    /// Fraig candidate pairs refuted by SAT (summed).
    pub fraig_refuted: u64,
    /// SAT queries posed by fraig sweeps (summed).
    pub fraig_sat_calls: u64,
    /// Summed fraig sweep wall time, microseconds.
    pub fraig_wall_us: u64,
    /// Training epochs.
    pub train_epochs: u64,
    /// Summed epoch wall time, microseconds.
    pub train_wall_us: u64,
    /// Final epoch's loss (last `TrainEpoch` seen).
    pub train_last_loss: f64,
    /// Tape nodes recorded (summed deltas).
    pub tape_ops: u64,
    /// Fresh tape buffers allocated (summed deltas).
    pub tape_allocs: u64,
}

impl SummaryReport {
    /// The `BENCH_<name>.json` payload.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"name\": \"{}\",\n  \"wall_us\": {},\n  \"cells\": {},\n  \"pool\": {{\"jobs\": {}, \"stolen\": {}, \"busy_us\": {}, \"batches\": {}}},\n  \"solver\": {{\"conflicts\": {}, \"propagations\": {}, \"restarts\": {}, \"budget_exhaustions\": {}}},\n  \"portfolio\": {{\"races\": {}, \"imported\": {}, \"exported\": {}}},\n  \"search\": {{\"steps\": {}, \"candidates\": {}, \"accepted\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}}},\n  \"fraig\": {{\"passes\": {}, \"merges\": {}, \"refuted\": {}, \"sat_calls\": {}, \"wall_us\": {}}},\n  \"trainer\": {{\"epochs\": {}, \"wall_us\": {}, \"last_loss\": {}, \"tape_ops\": {}, \"tape_allocs\": {}}}\n",
            crate::json::escape(&self.name),
            self.wall_us,
            self.cells,
            self.pool_jobs,
            self.pool_stolen,
            self.pool_busy_us,
            self.pool_batches,
            self.solver_conflicts,
            self.solver_propagations,
            self.solver_restarts,
            self.budget_exhaustions,
            self.portfolio_races,
            self.portfolio_imported,
            self.portfolio_exported,
            self.search_steps,
            self.search_candidates,
            self.search_accepted,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.fraig_passes,
            self.fraig_merges,
            self.fraig_refuted,
            self.fraig_sat_calls,
            self.fraig_wall_us,
            self.train_epochs,
            self.train_wall_us,
            if self.train_last_loss.is_finite() { self.train_last_loss } else { 0.0 },
            self.tape_ops,
            self.tape_allocs,
        );
        s.push('}');
        s.push('\n');
        s
    }

    /// The stderr summary table (only sections that saw activity).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "[telemetry] {} summary: {:.2}s wall, {} cells",
            self.name,
            self.wall_us as f64 / 1e6,
            self.cells
        );
        if self.pool_jobs > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   pool    | {} jobs ({} stolen) over {} batches, {:.2}s busy",
                self.pool_jobs,
                self.pool_stolen,
                self.pool_batches,
                self.pool_busy_us as f64 / 1e6
            );
        }
        if self.solver_conflicts > 0 || self.budget_exhaustions > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   solver  | {} conflicts, {} propagations, {} restarts, {} budget exhaustions",
                self.solver_conflicts,
                self.solver_propagations,
                self.solver_restarts,
                self.budget_exhaustions
            );
        }
        if self.portfolio_races > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   portfolio | {} races, {} clauses imported, {} exported",
                self.portfolio_races, self.portfolio_imported, self.portfolio_exported
            );
        }
        if self.search_steps > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   search  | {} steps, {} candidates ({} accepted), cache {}h/{}m/{}e",
                self.search_steps,
                self.search_candidates,
                self.search_accepted,
                self.cache_hits,
                self.cache_misses,
                self.cache_evictions
            );
        }
        if self.fraig_passes > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   fraig   | {} passes, {} merges ({} refuted), {} SAT calls in {:.2}s",
                self.fraig_passes,
                self.fraig_merges,
                self.fraig_refuted,
                self.fraig_sat_calls,
                self.fraig_wall_us as f64 / 1e6
            );
        }
        if self.train_epochs > 0 {
            let _ = writeln!(
                s,
                "[telemetry]   trainer | {} epochs in {:.2}s, final loss {:.4}, {} tape ops ({} fresh buffers)",
                self.train_epochs,
                self.train_wall_us as f64 / 1e6,
                self.train_last_loss,
                self.tape_ops,
                self.tape_allocs
            );
        }
        s
    }
}

/// The aggregating sink installed by `init_harness`.
pub struct SummarySink {
    report: SummaryReport,
    start_us: u64,
    /// Where to write `BENCH_<name>.json` (skipped when `None`).
    out_dir: Option<PathBuf>,
    /// Render the table to stderr on finish.
    render_stderr: bool,
}

impl SummarySink {
    /// A new aggregator for harness `name`.
    pub fn new(name: &str, out_dir: Option<PathBuf>, render_stderr: bool) -> Self {
        SummarySink {
            report: SummaryReport {
                name: name.to_string(),
                ..SummaryReport::default()
            },
            start_us: crate::clock::now_us(),
            out_dir,
            render_stderr,
        }
    }
}

impl super::sink::Sink for SummarySink {
    fn record(&mut self, event: &Event) {
        let r = &mut self.report;
        match &event.kind {
            EventKind::PoolJob { stolen, dur_us, .. } => {
                r.pool_jobs += 1;
                r.pool_stolen += u64::from(*stolen);
                r.pool_busy_us += dur_us;
            }
            EventKind::PoolBatch { .. } => r.pool_batches += 1,
            EventKind::SolverProgress { delta, .. } => {
                r.solver_conflicts += delta.conflicts;
                r.solver_propagations += delta.propagations;
                r.solver_restarts += delta.restarts;
            }
            EventKind::BudgetExhausted { .. } => r.budget_exhaustions += 1,
            EventKind::PortfolioRace { per_worker, .. } => {
                r.portfolio_races += 1;
                for w in per_worker {
                    r.portfolio_imported += w.imported;
                    r.portfolio_exported += w.exported;
                }
            }
            EventKind::SearchStep {
                candidates,
                accepted,
                cache,
                ..
            } => {
                r.search_steps += 1;
                r.search_candidates += u64::from(*candidates);
                r.search_accepted += u64::from(*accepted);
                r.cache_hits += cache.hits;
                r.cache_misses += cache.misses;
                r.cache_evictions += cache.evictions;
            }
            EventKind::TrainEpoch {
                loss,
                wall_us,
                tape_ops,
                tape_allocs,
                ..
            } => {
                r.train_epochs += 1;
                r.train_wall_us += wall_us;
                r.train_last_loss = *loss;
                r.tape_ops += tape_ops;
                r.tape_allocs += tape_allocs;
            }
            EventKind::FraigPass {
                merges,
                refuted,
                sat_calls,
                wall_us,
                ..
            } => {
                r.fraig_passes += 1;
                r.fraig_merges += merges;
                r.fraig_refuted += refuted;
                r.fraig_sat_calls += sat_calls;
                r.fraig_wall_us += wall_us;
            }
            EventKind::CellDone { .. } => r.cells += 1,
            // Oracle compiles are one-shot setup costs; the throughput
            // story lives in the oracle_throughput harness, not the
            // (schema-pinned) summary report.
            EventKind::SpanOpen { .. }
            | EventKind::SpanClose { .. }
            | EventKind::OracleCompile { .. }
            | EventKind::Message { .. } => {}
        }
    }

    fn finish(&mut self) {
        self.report.wall_us = crate::clock::now_us().saturating_sub(self.start_us);
        if let Some(dir) = &self.out_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("BENCH_{}.json", self.report.name));
            if let Err(e) = std::fs::write(&path, self.report.to_json()) {
                eprintln!("[telemetry] cannot write {}: {e}", path.display());
            }
        }
        if self.render_stderr {
            eprint!("{}", self.report.render());
        }
    }

    fn take_summary(&mut self) -> Option<SummaryReport> {
        Some(self.report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheDelta, SolverCounters};
    use crate::json;
    use crate::sink::Sink;

    #[test]
    fn aggregates_deltas_and_serialises_valid_json() {
        let mut sink = SummarySink::new("unit", None, false);
        for i in 0..3u64 {
            sink.record(&Event {
                t_us: i,
                thread: 0,
                kind: EventKind::SolverProgress {
                    total: SolverCounters {
                        conflicts: (i + 1) * 10,
                        ..Default::default()
                    },
                    delta: SolverCounters {
                        conflicts: 10,
                        propagations: 5,
                        ..Default::default()
                    },
                },
            });
        }
        sink.record(&Event {
            t_us: 4,
            thread: 0,
            kind: EventKind::SearchStep {
                step: 0,
                candidates: 8,
                current: 0.5,
                best: 0.5,
                accepted: true,
                cache: CacheDelta {
                    hits: 2,
                    misses: 6,
                    evictions: 1,
                    live_nodes: 10,
                },
            },
        });
        sink.record(&Event {
            t_us: 5,
            thread: 0,
            kind: EventKind::CellDone { label: "x".into() },
        });
        sink.finish();
        let report = sink.take_summary().expect("summary");
        assert_eq!(report.solver_conflicts, 30, "summed deltas, not totals");
        assert_eq!(report.solver_propagations, 15);
        assert_eq!(report.search_candidates, 8);
        assert_eq!(report.cache_misses, 6);
        assert_eq!(report.cells, 1);
        let v = json::parse(&report.to_json()).expect("BENCH json parses");
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("unit"));
        assert_eq!(
            v.get("solver")
                .and_then(|s| s.get("conflicts"))
                .and_then(|c| c.as_u64()),
            Some(30)
        );
    }
}
