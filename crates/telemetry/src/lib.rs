//! `almost_telemetry` — structured spans, typed events, and pluggable
//! sinks for the ALMOST reproduction.
//!
//! This crate is the event channel the harness stderr lines graduate
//! into: one vocabulary of typed events ([`event::EventKind`]) emitted by
//! the pool, the SAT solver, the search engine and the GIN trainer, fanned
//! out to whatever sinks a run installs — human stderr progress, a JSONL
//! event log (`ALMOST_TRACE=<path>`), a Perfetto-loadable Chrome trace,
//! and an end-of-run aggregator that renders summary tables and writes
//! `BENCH_<name>.json`.
//!
//! ## Zero cost when off
//!
//! Telemetry is off by default and provably inert: instrumented hot loops
//! guard on [`tracing()`] — one relaxed atomic load — before building
//! anything, and the [`trace`] helper takes a closure so event payloads
//! (and their allocations) only exist when a trace-consuming sink is
//! installed. Progress-level output ([`progress`], [`cell_done`]) is
//! likewise closure-deferred, falling back to plain `eprintln!` when no
//! registry is active so library users see the same liveness lines
//! harnesses always printed.
//!
//! ## Typical harness wiring
//!
//! ```no_run
//! almost_telemetry::init_harness("my_bench", None);
//! // ... run cells, emit events ...
//! almost_telemetry::cell_done(|| "c432 k=8".to_string());
//! let report = almost_telemetry::finish();
//! assert!(report.is_some());
//! ```

pub mod clock;
pub mod event;
pub mod json;
pub mod sink;
pub mod summary;

pub use event::{
    CacheDelta, Event, EventKind, Level, RaceWorkerTally, Scope, SolverCounters, WorkerTally,
};
pub use sink::{
    CaptureSink, ChromeTraceSink, JsonlSink, ProgressSink, Sink, POOL_TRACK_BASE,
    PORTFOLIO_TRACK_BASE,
};
pub use summary::{SummaryReport, SummarySink};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// True while any sinks are installed (progress routing enabled).
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// True while at least one installed sink consumes trace-level events.
/// This is THE hot-loop guard: instrumented code must check it before
/// constructing any trace event.
static TRACING: AtomicBool = AtomicBool::new(false);

static SINKS: Mutex<Vec<Box<dyn Sink>>> = Mutex::new(Vec::new());

/// Whether any telemetry registry is active (sinks installed).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Whether trace-level events are being consumed. One relaxed atomic
/// load; hot loops branch on this before building events.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Installs `sinks`, replacing any existing registry (the old sinks are
/// finished first). `consume_trace` controls the [`tracing`] flag: the
/// stderr progress sink alone does not need trace events.
pub fn install(sinks: Vec<Box<dyn Sink>>, consume_trace: bool) {
    clock::pin_epoch();
    let mut reg = SINKS.lock().expect("telemetry registry");
    for sink in reg.iter_mut() {
        sink.finish();
    }
    *reg = sinks;
    ACTIVE.store(!reg.is_empty(), Ordering::Relaxed);
    TRACING.store(consume_trace && !reg.is_empty(), Ordering::Relaxed);
}

/// Standard harness setup: stderr progress + end-of-run summary, and —
/// when the `ALMOST_TRACE=<path>` environment variable is set — a JSONL
/// event log at `<path>` plus a Chrome trace at `<path minus extension>
/// .trace.json`. `out_dir` is where `BENCH_<name>.json` lands (pass the
/// harness CSV directory); `None` skips the JSON summary file.
pub fn init_harness(name: &str, out_dir: Option<&Path>) {
    let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(ProgressSink)];
    let mut consume_trace = false;
    if let Ok(trace_path) = std::env::var("ALMOST_TRACE") {
        if !trace_path.is_empty() {
            let jsonl_path = PathBuf::from(&trace_path);
            if let Some(jsonl) = JsonlSink::create(&jsonl_path) {
                sinks.push(Box::new(jsonl));
            }
            let chrome_path = jsonl_path.with_extension("trace.json");
            sinks.push(Box::new(ChromeTraceSink::new(&chrome_path)));
            consume_trace = true;
        }
    }
    // The summary aggregator consumes trace events too, but it must not
    // force the tracing flag on its own: summaries are a bonus when
    // tracing is already paid for, not a reason to slow hot loops down.
    // It still sees progress + whatever trace events others caused.
    sinks.push(Box::new(SummarySink::new(
        name,
        out_dir.map(Path::to_path_buf),
        consume_trace,
    )));
    install(sinks, consume_trace);
    emit(Event::now(EventKind::SpanOpen {
        scope: Scope::Harness,
        name: name.to_string(),
    }));
}

/// Finishes and removes all sinks, returning the aggregated report if a
/// [`SummarySink`] was installed. Idempotent; safe with no registry.
pub fn finish() -> Option<SummaryReport> {
    let mut reg = SINKS.lock().expect("telemetry registry");
    let mut report = None;
    for sink in reg.iter_mut() {
        sink.finish();
        if report.is_none() {
            report = sink.take_summary();
        }
    }
    reg.clear();
    ACTIVE.store(false, Ordering::Relaxed);
    TRACING.store(false, Ordering::Relaxed);
    report
}

/// Delivers `event` to every installed sink. Prefer [`trace`]/[`progress`]
/// in instrumented code — they defer construction behind the flags.
pub fn emit(event: Event) {
    if !active() {
        return;
    }
    let mut reg = SINKS.lock().expect("telemetry registry");
    for sink in reg.iter_mut() {
        sink.record(&event);
    }
}

/// Emits a trace-level event, building it only if a trace-consuming sink
/// is installed. The closure runs at most once.
#[inline]
pub fn trace(f: impl FnOnce() -> EventKind) {
    if tracing() {
        emit(Event::now(f()));
    }
}

/// Emits a human progress line. Routed through the sinks when a registry
/// is active; otherwise printed straight to stderr so ad-hoc runs keep
/// their liveness output.
#[inline]
pub fn progress(f: impl FnOnce() -> String) {
    if active() {
        emit(Event::now(EventKind::Message { text: f() }));
    } else {
        eprintln!("{}", f());
    }
}

/// Emits a cell-completion event (rendered `  [cell done] <label>` by the
/// progress sink). Falls back to stderr without a registry.
#[inline]
pub fn cell_done(f: impl FnOnce() -> String) {
    if active() {
        emit(Event::now(EventKind::CellDone { label: f() }));
    } else {
        eprintln!("  [cell done] {}", f());
    }
}

/// An RAII span guard: opens on construction, closes (with measured
/// duration) on drop. A no-op carrying no allocation when tracing is off.
pub struct Span {
    open: Option<(Scope, String, u64)>,
}

impl Span {
    /// Opens a span named by `name()` at `scope` — only when tracing.
    pub fn enter(scope: Scope, name: impl FnOnce() -> String) -> Span {
        if !tracing() {
            return Span { open: None };
        }
        let name = name();
        let t = clock::now_us();
        emit(Event {
            t_us: t,
            thread: clock::thread_ordinal(),
            kind: EventKind::SpanOpen {
                scope,
                name: name.clone(),
            },
        });
        Span {
            open: Some((scope, name, t)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((scope, name, t0)) = self.open.take() {
            let t = clock::now_us();
            emit(Event {
                t_us: t,
                thread: clock::thread_ordinal(),
                kind: EventKind::SpanClose {
                    scope,
                    name,
                    dur_us: t.saturating_sub(t0),
                },
            });
        }
    }
}

/// Convenience alias for [`Span::enter`].
#[inline]
pub fn span(scope: Scope, name: impl FnOnce() -> String) -> Span {
    Span::enter(scope, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // All registry tests share one #[test]: the registry is global, and
    // the default test harness runs #[test] fns concurrently.
    #[test]
    fn registry_lifecycle_gating_and_spans() {
        // Disabled by default: flags off, helpers fall through.
        assert!(!active() && !tracing());
        let mut built = false;
        trace(|| {
            built = true;
            EventKind::Message {
                text: String::new(),
            }
        });
        assert!(!built, "trace closure must not run when disabled");

        // Install a capture sink consuming trace events.
        let (capture, lines) = CaptureSink::new();
        install(vec![Box::new(capture)], true);
        assert!(active() && tracing());

        trace(|| EventKind::Message {
            text: "traced".into(),
        });
        progress(|| "progressed".into());
        cell_done(|| "cell".into());
        {
            let _span = span(Scope::Search, || "anneal".into());
            trace(|| EventKind::SearchStep {
                step: 0,
                candidates: 1,
                current: 0.0,
                best: 0.0,
                accepted: false,
                cache: CacheDelta::default(),
            });
        }
        let snapshot = lines.lock().expect("lines").clone();
        assert_eq!(
            snapshot.len(),
            6,
            "message, message, cell, open, step, close"
        );
        for line in &snapshot {
            json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(snapshot[3].contains("span_open") && snapshot[3].contains("anneal"));
        assert!(snapshot[5].contains("span_close") && snapshot[5].contains("dur_us"));

        // finish() clears everything and is idempotent.
        assert!(finish().is_none(), "capture sink has no summary");
        assert!(!active() && !tracing());
        assert!(finish().is_none());

        // Spans allocate nothing and emit nothing when disabled.
        {
            let s = span(Scope::Cell, || unreachable!("name closure must not run"));
            assert!(s.open.is_none());
        }
        assert_eq!(
            lines.lock().expect("lines").len(),
            6,
            "no events after finish"
        );

        // install with consume_trace=false keeps the tracing flag off.
        let (capture2, lines2) = CaptureSink::new();
        install(vec![Box::new(capture2)], false);
        assert!(active() && !tracing());
        trace(|| EventKind::Message {
            text: "dropped".into(),
        });
        progress(|| "kept".into());
        assert_eq!(
            lines2.lock().expect("lines").len(),
            1,
            "trace suppressed, progress kept"
        );
        finish();
    }
}
