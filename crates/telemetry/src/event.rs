//! The typed event vocabulary.
//!
//! Events are the one currency every sink understands. The vocabulary is
//! deliberately closed (an enum, not a string bag): each instrumented
//! layer — pool, solver, search engine, trainer, harness — emits its own
//! typed variant, carrying **deltas** for cumulative counters so
//! aggregation is a plain sum even when many solver or engine instances
//! run concurrently. Every event is stamped with the monotonic process
//! clock and the emitting thread's ordinal at construction.

use crate::clock;
use crate::json::escape;
use std::fmt::Write as _;

/// Where in the hierarchy a span lives: harness → cell → attack/search →
/// solver/trainer (plus the pool, which is orthogonal infrastructure).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scope {
    /// A whole experiment binary.
    Harness,
    /// One (bench, key, scheme)-style unit of harness work.
    Cell,
    /// One attack run (SAT attack, Double DIP, OMLA, …).
    Attack,
    /// One recipe-search run (SA / RL / joint).
    Search,
    /// One training run.
    Trainer,
    /// One solver episode.
    Solver,
    /// One pool batch.
    Pool,
}

impl Scope {
    /// Stable lowercase label used in JSONL and as the Chrome `cat`.
    pub fn label(self) -> &'static str {
        match self {
            Scope::Harness => "harness",
            Scope::Cell => "cell",
            Scope::Attack => "attack",
            Scope::Search => "search",
            Scope::Trainer => "trainer",
            Scope::Solver => "solver",
            Scope::Pool => "pool",
        }
    }
}

/// Solver effort counters carried by [`EventKind::SolverProgress`].
/// Mirrors `almost_sat::SolverStats` field-for-field — the solver
/// converts, telemetry does not depend on the solver crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Decision-literal picks.
    pub decisions: u64,
    /// Literals propagated off the trail.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Synthesis-cache counter deltas carried by [`EventKind::SearchStep`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheDelta {
    /// Trie hits since the previous step.
    pub hits: u64,
    /// Trie misses since the previous step.
    pub misses: u64,
    /// Trie evictions since the previous step.
    pub evictions: u64,
    /// Live cached intermediates after the step (a gauge, not a delta).
    pub live_nodes: u64,
}

/// One pool worker's tally over a whole `map_indexed` batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTally {
    /// Jobs this worker executed (own-queue pops plus steals).
    pub executed: u32,
    /// Of those, jobs stolen from a sibling's queue.
    pub stolen: u32,
    /// Microseconds spent executing jobs (idle/steal-probing excluded).
    pub busy_us: u64,
}

/// One portfolio worker's tally over a single race, carried by
/// [`EventKind::PortfolioRace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceWorkerTally {
    /// Conflicts this worker spent on the raced query.
    pub conflicts: u64,
    /// Glue clauses this worker imported from siblings during the query.
    pub imported: u64,
    /// Glue clauses this worker published for siblings during the query.
    pub exported: u64,
}

/// The typed event payloads. See the module docs for the delta convention.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A hierarchical span opened on this thread.
    SpanOpen {
        /// Hierarchy level.
        scope: Scope,
        /// Human-readable span name.
        name: String,
    },
    /// The matching close (same thread, `dur_us` after the open).
    SpanClose {
        /// Hierarchy level.
        scope: Scope,
        /// Human-readable span name.
        name: String,
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// One executed pool job (emitted by the worker as the job finishes).
    PoolJob {
        /// Executing worker index (stable within a batch: 0..workers).
        worker: u32,
        /// Job index in submission order.
        job: u32,
        /// True when the job was stolen from a sibling's queue.
        stolen: bool,
        /// Job start, microseconds since the process epoch.
        start_us: u64,
        /// Job duration in microseconds.
        dur_us: u64,
    },
    /// End-of-batch pool summary (emitted by the calling thread).
    PoolBatch {
        /// Jobs in the batch.
        jobs: u32,
        /// Workers that ran it.
        workers: u32,
        /// Per-worker tallies, indexed by worker id.
        per_worker: Vec<WorkerTally>,
    },
    /// Periodic solver heartbeat (every few thousand conflicts).
    SolverProgress {
        /// Cumulative counters of this solver instance.
        total: SolverCounters,
        /// Counters since this instance's previous heartbeat.
        delta: SolverCounters,
    },
    /// A conflict-budgeted query came back without a verdict.
    BudgetExhausted {
        /// Which engine: `"key_miter"` or `"double_dip_miter"`.
        engine: &'static str,
        /// The per-query conflict budget in force.
        budget: u64,
        /// The solver's cumulative conflicts at the early return.
        conflicts: u64,
        /// Why the query stopped: `"budget"` when the conflict budget ran
        /// out, `"cancelled"` when a portfolio stop flag interrupted it —
        /// so traces don't misreport races as effort blowups.
        cause: &'static str,
    },
    /// One portfolio race over a miter query (emitted by the winner's
    /// caller once every worker has parked).
    PortfolioRace {
        /// Which engine raced: `"key_miter"` or `"double_dip_miter"`.
        engine: &'static str,
        /// Portfolio width (racing workers).
        workers: u32,
        /// Index of the worker whose verdict was taken.
        winner: u32,
        /// Race wall time in microseconds.
        dur_us: u64,
        /// Microseconds from the winner finishing to all workers parked.
        cancel_us: u64,
        /// Per-worker effort/exchange tallies, indexed by worker id.
        per_worker: Vec<RaceWorkerTally>,
    },
    /// One temperature step of the batched search engine.
    SearchStep {
        /// Step index (0-based).
        step: u32,
        /// Candidates proposed and scored this step.
        candidates: u32,
        /// Objective of the current state after the step.
        current: f64,
        /// Best objective seen so far.
        best: f64,
        /// Whether any candidate was accepted this step.
        accepted: bool,
        /// Synthesis-cache deltas over the step.
        cache: CacheDelta,
    },
    /// One training epoch.
    TrainEpoch {
        /// Epoch index (0-based).
        epoch: u32,
        /// Mean training loss of the epoch.
        loss: f64,
        /// Epoch wall time in microseconds.
        wall_us: u64,
        /// Tape nodes recorded this epoch (delta).
        tape_ops: u64,
        /// Fresh tape buffers allocated this epoch (delta; 0 after warm-up).
        tape_allocs: u64,
    },
    /// An oracle netlist was compiled to the batch instruction buffer.
    OracleCompile {
        /// AND nodes in the source netlist.
        ands: u64,
        /// Instructions emitted (the output-reachable cone).
        instructions: u64,
        /// Register-file size of the compiled program.
        registers: u64,
        /// Dead AND nodes skipped by the compiler.
        dead_skipped: u64,
        /// Compile wall time in microseconds.
        wall_us: u64,
    },
    /// One fraig / SAT-sweeping pass over a netlist completed.
    FraigPass {
        /// Candidate equivalence classes formed (signature
        /// representatives, excluding the constant class).
        classes: u64,
        /// Candidate pairs proved equivalent (UNSAT verdicts).
        proved: u64,
        /// Candidate pairs refuted (a counterexample was found).
        refuted: u64,
        /// Candidate pairs skipped on budget exhaustion.
        skipped: u64,
        /// Nodes merged into a representative.
        merges: u64,
        /// Merges whose representative is a constant.
        constants: u64,
        /// Budget-exhausted queries re-run on a portfolio solver.
        escalations: u64,
        /// Total SAT queries posed.
        sat_calls: u64,
        /// Counterexample feedback words appended to the sim vectors.
        sim_words_added: u64,
        /// AND nodes before the sweep.
        ands_before: u64,
        /// AND nodes after the sweep.
        ands_after: u64,
        /// Sweep wall time in microseconds.
        wall_us: u64,
    },
    /// A harness cell finished (the streamed liveness marker).
    CellDone {
        /// Cell label, e.g. `"c1908 k=32"`.
        label: String,
    },
    /// A human progress line (rendered verbatim by the stderr sink).
    Message {
        /// The line, without trailing newline.
        text: String,
    },
}

/// Event levels: progress events are for humans and always cheap; trace
/// events only exist when a trace sink is installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Human-facing liveness output ([`EventKind::CellDone`],
    /// [`EventKind::Message`]).
    Progress,
    /// Machine-facing timeline data (everything else).
    Trace,
}

/// A timestamped, thread-stamped event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the process epoch.
    pub t_us: u64,
    /// Emitting thread's ordinal.
    pub thread: u32,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// Stamps `kind` with the current clock and thread.
    pub fn now(kind: EventKind) -> Self {
        Event {
            t_us: clock::now_us(),
            thread: clock::thread_ordinal(),
            kind,
        }
    }

    /// The event's level (progress vs trace).
    pub fn level(&self) -> Level {
        match self.kind {
            EventKind::CellDone { .. } | EventKind::Message { .. } => Level::Progress,
            _ => Level::Trace,
        }
    }

    /// One line of the JSONL schema (no trailing newline).
    ///
    /// Every line is an object with `t_us`, `thread` and `kind`; the
    /// remaining fields depend on `kind` (see the README's Observability
    /// section for the full schema).
    pub fn to_jsonl(&self) -> String {
        let mut s = format!("{{\"t_us\":{},\"thread\":{},", self.t_us, self.thread);
        match &self.kind {
            EventKind::SpanOpen { scope, name } => {
                let _ = write!(
                    s,
                    "\"kind\":\"span_open\",\"scope\":\"{}\",\"name\":\"{}\"",
                    scope.label(),
                    escape(name)
                );
            }
            EventKind::SpanClose {
                scope,
                name,
                dur_us,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"span_close\",\"scope\":\"{}\",\"name\":\"{}\",\"dur_us\":{}",
                    scope.label(),
                    escape(name),
                    dur_us
                );
            }
            EventKind::PoolJob {
                worker,
                job,
                stolen,
                start_us,
                dur_us,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"pool_job\",\"worker\":{worker},\"job\":{job},\"stolen\":{stolen},\
                     \"start_us\":{start_us},\"dur_us\":{dur_us}"
                );
            }
            EventKind::PoolBatch {
                jobs,
                workers,
                per_worker,
            } => {
                let _ = write!(s, "\"kind\":\"pool_batch\",\"jobs\":{jobs},\"workers\":{workers},\"per_worker\":[");
                for (i, w) in per_worker.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"executed\":{},\"stolen\":{},\"busy_us\":{}}}",
                        w.executed, w.stolen, w.busy_us
                    );
                }
                s.push(']');
            }
            EventKind::SolverProgress { total, delta } => {
                let _ = write!(
                    s,
                    "\"kind\":\"solver_progress\",\"conflicts\":{},\"decisions\":{},\
                     \"propagations\":{},\"restarts\":{},\"d_conflicts\":{},\"d_decisions\":{},\
                     \"d_propagations\":{},\"d_restarts\":{}",
                    total.conflicts,
                    total.decisions,
                    total.propagations,
                    total.restarts,
                    delta.conflicts,
                    delta.decisions,
                    delta.propagations,
                    delta.restarts
                );
            }
            EventKind::BudgetExhausted {
                engine,
                budget,
                conflicts,
                cause,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"budget_exhausted\",\"engine\":\"{engine}\",\"budget\":{budget},\
                     \"conflicts\":{conflicts},\"cause\":\"{cause}\""
                );
            }
            EventKind::PortfolioRace {
                engine,
                workers,
                winner,
                dur_us,
                cancel_us,
                per_worker,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"portfolio_race\",\"engine\":\"{engine}\",\"workers\":{workers},\
                     \"winner\":{winner},\"dur_us\":{dur_us},\"cancel_us\":{cancel_us},\
                     \"per_worker\":["
                );
                for (i, w) in per_worker.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"conflicts\":{},\"imported\":{},\"exported\":{}}}",
                        w.conflicts, w.imported, w.exported
                    );
                }
                s.push(']');
            }
            EventKind::SearchStep {
                step,
                candidates,
                current,
                best,
                accepted,
                cache,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"search_step\",\"step\":{step},\"candidates\":{candidates},\
                     \"current\":{},\"best\":{},\"accepted\":{accepted},\"d_hits\":{},\
                     \"d_misses\":{},\"d_evictions\":{},\"live_nodes\":{}",
                    fmt_f64(*current),
                    fmt_f64(*best),
                    cache.hits,
                    cache.misses,
                    cache.evictions,
                    cache.live_nodes
                );
            }
            EventKind::TrainEpoch {
                epoch,
                loss,
                wall_us,
                tape_ops,
                tape_allocs,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"train_epoch\",\"epoch\":{epoch},\"loss\":{},\"wall_us\":{wall_us},\
                     \"tape_ops\":{tape_ops},\"tape_allocs\":{tape_allocs}",
                    fmt_f64(*loss)
                );
            }
            EventKind::OracleCompile {
                ands,
                instructions,
                registers,
                dead_skipped,
                wall_us,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"oracle_compile\",\"ands\":{ands},\"instructions\":{instructions},\
                     \"registers\":{registers},\"dead_skipped\":{dead_skipped},\"wall_us\":{wall_us}"
                );
            }
            EventKind::FraigPass {
                classes,
                proved,
                refuted,
                skipped,
                merges,
                constants,
                escalations,
                sat_calls,
                sim_words_added,
                ands_before,
                ands_after,
                wall_us,
            } => {
                let _ = write!(
                    s,
                    "\"kind\":\"fraig_pass\",\"classes\":{classes},\"proved\":{proved},\
                     \"refuted\":{refuted},\"skipped\":{skipped},\"merges\":{merges},\
                     \"constants\":{constants},\"escalations\":{escalations},\
                     \"sat_calls\":{sat_calls},\"sim_words_added\":{sim_words_added},\
                     \"ands_before\":{ands_before},\"ands_after\":{ands_after},\
                     \"wall_us\":{wall_us}"
                );
            }
            EventKind::CellDone { label } => {
                let _ = write!(s, "\"kind\":\"cell_done\",\"label\":\"{}\"", escape(label));
            }
            EventKind::Message { text } => {
                let _ = write!(s, "\"kind\":\"message\",\"text\":\"{}\"", escape(text));
            }
        }
        s.push('}');
        s
    }
}

/// JSON-safe float formatting: finite values print normally, NaN and
/// infinities (which the emitters should never produce, but an objective
/// can in principle go non-finite) degrade to `null`-adjacent sentinels
/// that still parse as numbers.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "0".into()
    } else if x > 0.0 {
        "1e308".into()
    } else {
        "-1e308".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn every_variant_serialises_to_valid_json() {
        let kinds = vec![
            EventKind::SpanOpen {
                scope: Scope::Cell,
                name: "c1908 \"quoted\"".into(),
            },
            EventKind::SpanClose {
                scope: Scope::Search,
                name: "anneal".into(),
                dur_us: 12,
            },
            EventKind::PoolJob {
                worker: 1,
                job: 3,
                stolen: true,
                start_us: 5,
                dur_us: 9,
            },
            EventKind::PoolBatch {
                jobs: 4,
                workers: 2,
                per_worker: vec![
                    WorkerTally::default(),
                    WorkerTally {
                        executed: 2,
                        stolen: 1,
                        busy_us: 77,
                    },
                ],
            },
            EventKind::SolverProgress {
                total: SolverCounters {
                    decisions: 1,
                    propagations: 2,
                    conflicts: 3,
                    restarts: 4,
                },
                delta: SolverCounters::default(),
            },
            EventKind::BudgetExhausted {
                engine: "key_miter",
                budget: 2000,
                conflicts: 2100,
                cause: "budget",
            },
            EventKind::PortfolioRace {
                engine: "key_miter",
                workers: 4,
                winner: 2,
                dur_us: 512,
                cancel_us: 33,
                per_worker: vec![
                    RaceWorkerTally::default(),
                    RaceWorkerTally {
                        conflicts: 9,
                        imported: 2,
                        exported: 1,
                    },
                ],
            },
            EventKind::SearchStep {
                step: 0,
                candidates: 3,
                current: 0.25,
                best: f64::NAN,
                accepted: false,
                cache: CacheDelta::default(),
            },
            EventKind::TrainEpoch {
                epoch: 2,
                loss: 0.5,
                wall_us: 100,
                tape_ops: 10,
                tape_allocs: 0,
            },
            EventKind::OracleCompile {
                ands: 640,
                instructions: 600,
                registers: 642,
                dead_skipped: 40,
                wall_us: 85,
            },
            EventKind::FraigPass {
                classes: 40,
                proved: 12,
                refuted: 5,
                skipped: 1,
                merges: 12,
                constants: 2,
                escalations: 1,
                sat_calls: 18,
                sim_words_added: 5,
                ands_before: 300,
                ands_after: 250,
                wall_us: 1234,
            },
            EventKind::CellDone {
                label: "c432 k=8".into(),
            },
            EventKind::Message {
                text: "  [cache] hits 1".into(),
            },
        ];
        for kind in kinds {
            let line = Event::now(kind.clone()).to_jsonl();
            let parsed = json::parse(&line).unwrap_or_else(|e| panic!("{kind:?}: {e}\n{line}"));
            assert!(parsed.get("t_us").is_some(), "{line}");
            assert!(parsed.get("thread").is_some(), "{line}");
            assert!(
                parsed.get("kind").and_then(|k| k.as_str()).is_some(),
                "{line}"
            );
        }
    }

    #[test]
    fn levels_split_progress_from_trace() {
        assert_eq!(
            Event::now(EventKind::Message { text: "x".into() }).level(),
            Level::Progress
        );
        assert_eq!(
            Event::now(EventKind::SpanOpen {
                scope: Scope::Pool,
                name: "b".into()
            })
            .level(),
            Level::Trace
        );
    }
}
