//! Pluggable event sinks.
//!
//! Four are provided: a human stderr progress sink (the replacement for
//! the harnesses' ad-hoc `eprintln!`s), a JSONL event-log sink (one
//! event per line, streamed as they happen), a Chrome-trace-event
//! exporter (buffered, written as a single Perfetto-loadable JSON array
//! on finish), and an in-memory capture sink for the test suite. Sinks
//! receive every event under the registry lock — they must be cheap and
//! must never panic on I/O failure (a broken trace file degrades to a
//! warning, not a crashed experiment).

use crate::event::{Event, EventKind, Level};
use crate::summary::SummaryReport;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Chrome-trace `tid` offset for pool-worker tracks: worker `w` renders
/// on track `POOL_TRACK_BASE + w`, well clear of real thread ordinals.
pub const POOL_TRACK_BASE: u32 = 1000;

/// Chrome-trace `tid` offset for portfolio-solver tracks: racing solver
/// `w` renders on track `PORTFOLIO_TRACK_BASE + w`, clear of both thread
/// ordinals and pool-worker tracks.
pub const PORTFOLIO_TRACK_BASE: u32 = 2000;

/// An event consumer. `record` is called for every emitted event (the
/// registry filters nothing); `finish` flushes/writes output exactly once
/// at end of run.
pub trait Sink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &Event);
    /// Flushes buffered output; called once by `telemetry::finish()`.
    fn finish(&mut self);
    /// The end-of-run report, if this sink aggregates one.
    fn take_summary(&mut self) -> Option<SummaryReport> {
        None
    }
}

/// Human liveness output on stderr: progress-level events only, rendered
/// exactly like the `eprintln!` lines they replace so existing log
/// consumers keep working.
pub struct ProgressSink;

impl Sink for ProgressSink {
    fn record(&mut self, event: &Event) {
        if event.level() != Level::Progress {
            return;
        }
        match &event.kind {
            EventKind::CellDone { label } => eprintln!("  [cell done] {label}"),
            EventKind::Message { text } => eprintln!("{text}"),
            _ => {}
        }
    }

    fn finish(&mut self) {}
}

/// Streams every event as one JSON object per line to the path in
/// `ALMOST_TRACE`. Lines are written (not just buffered) as events
/// arrive, so a killed run still leaves a useful prefix.
pub struct JsonlSink {
    writer: BufWriter<File>,
    path: PathBuf,
    broken: bool,
}

impl JsonlSink {
    /// Opens (truncates) `path`; `None` with a stderr warning on failure.
    pub fn create(path: &Path) -> Option<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match File::create(path) {
            Ok(f) => Some(JsonlSink {
                writer: BufWriter::new(f),
                path: path.to_path_buf(),
                broken: false,
            }),
            Err(e) => {
                eprintln!("[telemetry] cannot open trace file {}: {e}", path.display());
                None
            }
        }
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if self.broken {
            return;
        }
        let mut line = event.to_jsonl();
        line.push('\n');
        if self.writer.write_all(line.as_bytes()).is_err() {
            eprintln!(
                "[telemetry] trace write to {} failed; disabling",
                self.path.display()
            );
            self.broken = true;
        }
    }

    fn finish(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Buffers Chrome Trace Event Format fragments and writes a single JSON
/// array on finish — loadable in Perfetto / `chrome://tracing`.
///
/// Track layout:
/// - spans render as complete (`ph:"X"`) slices on `tid` = thread ordinal;
/// - pool jobs render on dedicated per-worker tracks at
///   `tid = POOL_TRACK_BASE + worker`, so occupancy, steals (slices whose
///   `args.stolen` is true) and idle gaps are visible at a glance;
/// - solver heartbeats become counter (`ph:"C"`) samples;
/// - search steps, budget exhaustions and cell completions become
///   instants (`ph:"i"`);
/// - train epochs render as slices spanning their measured wall time.
pub struct ChromeTraceSink {
    events: Vec<String>,
    /// Open span stack per thread: (thread, scope label, name, open t_us).
    open: Vec<(u32, &'static str, String, u64)>,
    threads_seen: BTreeSet<u32>,
    workers_seen: BTreeSet<u32>,
    portfolio_seen: BTreeSet<u32>,
    path: PathBuf,
}

impl ChromeTraceSink {
    /// Creates an exporter that will write `path` on finish.
    pub fn new(path: &Path) -> Self {
        ChromeTraceSink {
            events: Vec::new(),
            open: Vec::new(),
            threads_seen: BTreeSet::new(),
            workers_seen: BTreeSet::new(),
            portfolio_seen: BTreeSet::new(),
            path: path.to_path_buf(),
        }
    }

    fn push(&mut self, fragment: String) {
        self.events.push(fragment);
    }
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, event: &Event) {
        let t = event.t_us;
        let tid = event.thread;
        self.threads_seen.insert(tid);
        match &event.kind {
            EventKind::SpanOpen { scope, name } => {
                self.open.push((tid, scope.label(), name.clone(), t));
            }
            EventKind::SpanClose {
                scope,
                name,
                dur_us,
            } => {
                // Match the innermost open span of the same thread+name;
                // fall back to the close event's own timing if unmatched.
                let start =
                    match self.open.iter().rposition(|(th, sc, nm, _)| {
                        *th == tid && *sc == scope.label() && nm == name
                    }) {
                        Some(i) => self.open.remove(i).3,
                        None => t.saturating_sub(*dur_us),
                    };
                self.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{}}}",
                    crate::json::escape(name),
                    scope.label(),
                    start,
                    dur_us,
                    tid
                ));
            }
            EventKind::PoolJob {
                worker,
                job,
                stolen,
                start_us,
                dur_us,
            } => {
                self.workers_seen.insert(*worker);
                self.push(format!(
                    "{{\"name\":\"job {job}\",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":{start_us},\
                     \"dur\":{dur_us},\"pid\":1,\"tid\":{},\"args\":{{\"stolen\":{stolen}}}}}",
                    POOL_TRACK_BASE + worker
                ));
            }
            EventKind::PoolBatch {
                jobs,
                workers,
                per_worker,
            } => {
                let mut args = String::new();
                for (w, tally) in per_worker.iter().enumerate() {
                    let _ = write!(
                        args,
                        ",\"w{}_executed\":{},\"w{}_stolen\":{},\"w{}_busy_us\":{}",
                        w, tally.executed, w, tally.stolen, w, tally.busy_us
                    );
                }
                self.push(format!(
                    "{{\"name\":\"pool batch\",\"cat\":\"pool\",\"ph\":\"i\",\"ts\":{t},\"s\":\"p\",\
                     \"pid\":1,\"tid\":{tid},\"args\":{{\"jobs\":{jobs},\"workers\":{workers}{args}}}}}"
                ));
            }
            EventKind::SolverProgress { total, .. } => {
                self.push(format!(
                    "{{\"name\":\"solver\",\"cat\":\"solver\",\"ph\":\"C\",\"ts\":{t},\"pid\":1,\
                     \"tid\":{tid},\"args\":{{\"conflicts\":{},\"propagations\":{},\"restarts\":{}}}}}",
                    total.conflicts, total.propagations, total.restarts
                ));
            }
            EventKind::BudgetExhausted {
                engine,
                budget,
                conflicts,
                cause,
            } => {
                self.push(format!(
                    "{{\"name\":\"{cause} ({engine})\",\"cat\":\"solver\",\"ph\":\"i\",\
                     \"ts\":{t},\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"budget\":{budget},\"conflicts\":{conflicts},\"cause\":\"{cause}\"}}}}"
                ));
            }
            EventKind::PortfolioRace {
                engine,
                workers: _,
                winner,
                dur_us,
                cancel_us,
                per_worker,
            } => {
                // One slice per racing solver on its dedicated track: the
                // race interval with that worker's effort/exchange args,
                // so occupancy and winner alternation are visible per
                // query. The event arrives when every worker has parked.
                let start = t.saturating_sub(*dur_us);
                for (w, tally) in per_worker.iter().enumerate() {
                    let w = w as u32;
                    self.portfolio_seen.insert(w);
                    let won = w == *winner;
                    self.push(format!(
                        "{{\"name\":\"race ({engine})\",\"cat\":\"portfolio\",\"ph\":\"X\",\
                         \"ts\":{start},\"dur\":{dur_us},\"pid\":1,\"tid\":{},\
                         \"args\":{{\"winner\":{won},\"conflicts\":{},\"imported\":{},\
                         \"exported\":{},\"cancel_us\":{cancel_us}}}}}",
                        PORTFOLIO_TRACK_BASE + w,
                        tally.conflicts,
                        tally.imported,
                        tally.exported
                    ));
                }
            }
            EventKind::SearchStep {
                step,
                candidates,
                accepted,
                cache,
                ..
            } => {
                self.push(format!(
                    "{{\"name\":\"step {step}\",\"cat\":\"search\",\"ph\":\"i\",\"ts\":{t},\
                     \"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{{\"candidates\":{candidates},\
                     \"accepted\":{accepted},\"hits\":{},\"misses\":{}}}}}",
                    cache.hits, cache.misses
                ));
            }
            EventKind::TrainEpoch {
                epoch,
                loss,
                wall_us,
                ..
            } => {
                self.push(format!(
                    "{{\"name\":\"epoch {epoch}\",\"cat\":\"trainer\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{wall_us},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"loss\":{loss}}}}}",
                    t.saturating_sub(*wall_us)
                ));
            }
            EventKind::OracleCompile {
                ands,
                instructions,
                registers,
                dead_skipped,
                wall_us,
            } => {
                self.push(format!(
                    "{{\"name\":\"oracle compile\",\"cat\":\"oracle\",\"ph\":\"i\",\"ts\":{t},\
                     \"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{{\"ands\":{ands},\
                     \"instructions\":{instructions},\"registers\":{registers},\
                     \"dead_skipped\":{dead_skipped},\"wall_us\":{wall_us}}}}}"
                ));
            }
            EventKind::FraigPass {
                classes,
                proved,
                refuted,
                merges,
                sat_calls,
                ands_before,
                ands_after,
                wall_us,
                ..
            } => {
                self.push(format!(
                    "{{\"name\":\"fraig pass\",\"cat\":\"fraig\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{wall_us},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"classes\":{classes},\"proved\":{proved},\
                     \"refuted\":{refuted},\"merges\":{merges},\"sat_calls\":{sat_calls},\
                     \"ands_before\":{ands_before},\"ands_after\":{ands_after}}}}}",
                    t.saturating_sub(*wall_us)
                ));
            }
            EventKind::CellDone { label } => {
                self.push(format!(
                    "{{\"name\":\"cell done: {}\",\"cat\":\"cell\",\"ph\":\"i\",\"ts\":{t},\
                     \"s\":\"g\",\"pid\":1,\"tid\":{tid}}}",
                    crate::json::escape(label)
                ));
            }
            EventKind::Message { .. } => {}
        }
    }

    fn finish(&mut self) {
        // Close any spans still open (a panicking harness, or spans held
        // across finish) so the trace stays well-formed.
        let open = std::mem::take(&mut self.open);
        for (tid, scope, name, start) in open {
            let now = crate::clock::now_us();
            self.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                crate::json::escape(&name),
                scope,
                start,
                now.saturating_sub(start),
                tid
            ));
        }
        // Name the tracks: real threads first, then pool-worker tracks.
        let mut meta = Vec::new();
        for &tid in &self.threads_seen {
            let name = if tid == 0 {
                "main".to_string()
            } else {
                format!("thread-{tid}")
            };
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for &w in &self.workers_seen {
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"pool-worker-{w}\"}}}}",
                POOL_TRACK_BASE + w
            ));
        }
        for &w in &self.portfolio_seen {
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"portfolio-w{w}\"}}}}",
                PORTFOLIO_TRACK_BASE + w
            ));
        }
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        let mut out = String::from("[\n");
        for (i, frag) in meta.iter().chain(self.events.iter()).enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(frag);
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(&self.path, out) {
            eprintln!(
                "[telemetry] cannot write chrome trace {}: {e}",
                self.path.display()
            );
        }
    }
}

/// Captures every event's JSONL line in memory; the handle stays valid
/// after the sink is consumed by `install`, so tests can inspect what a
/// run emitted.
pub struct CaptureSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl CaptureSink {
    /// A new capture sink and the shared handle to its line buffer.
    pub fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            CaptureSink {
                lines: lines.clone(),
            },
            lines,
        )
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, event: &Event) {
        self.lines
            .lock()
            .expect("capture lock")
            .push(event.to_jsonl());
    }

    fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Scope;
    use crate::json;

    #[test]
    fn chrome_trace_matches_spans_and_names_worker_tracks() {
        let dir =
            std::env::temp_dir().join(format!("almost_telemetry_sink_{}", std::process::id()));
        let path = dir.join("t.trace.json");
        let mut sink = ChromeTraceSink::new(&path);
        let open = Event {
            t_us: 10,
            thread: 0,
            kind: EventKind::SpanOpen {
                scope: Scope::Cell,
                name: "c".into(),
            },
        };
        let close = Event {
            t_us: 25,
            thread: 0,
            kind: EventKind::SpanClose {
                scope: Scope::Cell,
                name: "c".into(),
                dur_us: 15,
            },
        };
        let job = Event {
            t_us: 30,
            thread: 3,
            kind: EventKind::PoolJob {
                worker: 1,
                job: 0,
                stolen: true,
                start_us: 20,
                dur_us: 10,
            },
        };
        sink.record(&open);
        sink.record(&close);
        sink.record(&job);
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("trace written");
        let parsed = json::parse(&text).expect("valid JSON");
        let events = parsed.as_arr().expect("array");
        // One slice for the span with ts matching the open, one job slice
        // on the worker track, plus thread_name metadata.
        let span = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("cat").and_then(|c| c.as_str()) == Some("cell")
            })
            .expect("span slice");
        assert_eq!(span.get("ts").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(span.get("dur").and_then(|v| v.as_u64()), Some(15));
        let job = events
            .iter()
            .find(|e| {
                e.get("cat").and_then(|c| c.as_str()) == Some("pool")
                    && e.get("ph").and_then(|p| p.as_str()) == Some("X")
            })
            .expect("job slice");
        assert_eq!(
            job.get("tid").and_then(|v| v.as_u64()),
            Some(POOL_TRACK_BASE as u64 + 1)
        );
        let worker_meta = events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    == Some("pool-worker-1")
        });
        assert!(worker_meta, "worker track is named");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_sink_streams_parseable_lines() {
        let dir =
            std::env::temp_dir().join(format!("almost_telemetry_jsonl_{}", std::process::id()));
        let path = dir.join("t.jsonl");
        let mut sink = JsonlSink::create(&path).expect("create");
        sink.record(&Event {
            t_us: 1,
            thread: 0,
            kind: EventKind::Message {
                text: "hello".into(),
            },
        });
        sink.finish();
        let text = std::fs::read_to_string(&path).expect("written");
        let line = text.lines().next().expect("one line");
        let v = json::parse(line).expect("parses");
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("message"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
