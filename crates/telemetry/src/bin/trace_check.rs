//! `trace_check` — CI validator for telemetry output.
//!
//! Usage: `trace_check <events.jsonl> [trace.json]`
//!
//! Checks, exiting non-zero on the first failure:
//! - every JSONL line parses as a JSON object with `t_us`, `thread`, and
//!   a known `kind`, plus the kind-specific required fields;
//! - timestamps are monotone non-decreasing per thread;
//! - span open/close events balance per thread (LIFO, matching names);
//! - if given, the Chrome trace parses as a JSON array whose pool-worker
//!   tracks (`tid >= 1000`) and portfolio-solver tracks (`tid >= 2000`)
//!   each carry a `thread_name` metadata record, with one track per
//!   worker that executed jobs (or raced a query) in the JSONL.

use almost_telemetry::json::{parse, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: trace_check <events.jsonl> [trace.json]");
        return ExitCode::from(2);
    }
    let jsonl = match std::fs::read_to_string(&args[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: cannot read {}: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    };
    let (workers, portfolio) = match check_jsonl(&jsonl) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("trace_check: {}: {e}", args[0]);
            return ExitCode::FAILURE;
        }
    };
    if let Some(trace_path) = args.get(1) {
        let trace = match std::fs::read_to_string(trace_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_check: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_chrome(&trace, &workers, &portfolio) {
            eprintln!("trace_check: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "trace_check: OK ({} lines, {} pool workers, {} portfolio workers)",
        jsonl.lines().count(),
        workers.len(),
        portfolio.len()
    );
    ExitCode::SUCCESS
}

const KINDS: &[&str] = &[
    "span_open",
    "span_close",
    "pool_job",
    "pool_batch",
    "solver_progress",
    "budget_exhausted",
    "portfolio_race",
    "search_step",
    "train_epoch",
    "oracle_compile",
    "fraig_pass",
    "cell_done",
    "message",
];

/// Validates the JSONL event log; returns the sets of pool workers and
/// portfolio workers seen.
#[allow(clippy::type_complexity)]
fn check_jsonl(text: &str) -> Result<(BTreeSet<u64>, BTreeSet<u64>), String> {
    let mut last_t: BTreeMap<u64, u64> = BTreeMap::new();
    let mut span_stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut workers = BTreeSet::new();
    let mut portfolio = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v = parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let t = field_u64(&v, "t_us").ok_or(format!("line {n}: missing t_us"))?;
        let thread = field_u64(&v, "thread").ok_or(format!("line {n}: missing thread"))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(format!("line {n}: missing kind"))?;
        if !KINDS.contains(&kind) {
            return Err(format!("line {n}: unknown kind {kind:?}"));
        }
        let prev = last_t.entry(thread).or_insert(0);
        if t < *prev {
            return Err(format!("line {n}: t_us {t} < {prev} on thread {thread}"));
        }
        *prev = t;
        match kind {
            "span_open" => {
                let name = req_str(&v, "name", n)?;
                req_str(&v, "scope", n)?;
                span_stacks
                    .entry(thread)
                    .or_default()
                    .push(name.to_string());
            }
            "span_close" => {
                let name = req_str(&v, "name", n)?;
                req_u64(&v, "dur_us", n)?;
                let stack = span_stacks.entry(thread).or_default();
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "line {n}: span_close {name:?} but innermost open span on thread {thread} is {open:?}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {n}: span_close {name:?} with no open span on thread {thread}"
                        ))
                    }
                }
            }
            "pool_job" => {
                workers.insert(req_u64(&v, "worker", n)?);
                req_u64(&v, "job", n)?;
                req_u64(&v, "start_us", n)?;
                req_u64(&v, "dur_us", n)?;
            }
            "pool_batch" => {
                req_u64(&v, "jobs", n)?;
                req_u64(&v, "workers", n)?;
                v.get("per_worker")
                    .and_then(Value::as_arr)
                    .ok_or(format!("line {n}: missing per_worker"))?;
            }
            "solver_progress" => {
                for f in ["conflicts", "propagations", "d_conflicts", "d_propagations"] {
                    req_u64(&v, f, n)?;
                }
            }
            "budget_exhausted" => {
                req_str(&v, "engine", n)?;
                req_u64(&v, "budget", n)?;
                req_u64(&v, "conflicts", n)?;
                let cause = req_str(&v, "cause", n)?;
                if cause != "budget" && cause != "cancelled" {
                    return Err(format!(
                        "line {n}: unknown budget_exhausted cause {cause:?}"
                    ));
                }
            }
            "portfolio_race" => {
                req_str(&v, "engine", n)?;
                let w = req_u64(&v, "workers", n)?;
                let winner = req_u64(&v, "winner", n)?;
                req_u64(&v, "dur_us", n)?;
                req_u64(&v, "cancel_us", n)?;
                let per = v
                    .get("per_worker")
                    .and_then(Value::as_arr)
                    .ok_or(format!("line {n}: missing per_worker"))?;
                if per.len() as u64 != w {
                    return Err(format!(
                        "line {n}: portfolio_race has {} per_worker entries for {w} workers",
                        per.len()
                    ));
                }
                if winner >= w {
                    return Err(format!(
                        "line {n}: portfolio_race winner {winner} out of range for {w} workers"
                    ));
                }
                for i in 0..per.len() as u64 {
                    portfolio.insert(i);
                }
            }
            "search_step" => {
                for f in ["step", "candidates", "d_hits", "d_misses"] {
                    req_u64(&v, f, n)?;
                }
            }
            "train_epoch" => {
                req_u64(&v, "epoch", n)?;
                req_u64(&v, "wall_us", n)?;
                v.get("loss")
                    .and_then(Value::as_f64)
                    .ok_or(format!("line {n}: missing loss"))?;
            }
            "oracle_compile" => {
                for f in [
                    "ands",
                    "instructions",
                    "registers",
                    "dead_skipped",
                    "wall_us",
                ] {
                    req_u64(&v, f, n)?;
                }
            }
            "fraig_pass" => {
                for f in [
                    "classes",
                    "proved",
                    "refuted",
                    "skipped",
                    "merges",
                    "constants",
                    "escalations",
                    "sat_calls",
                    "sim_words_added",
                    "ands_before",
                    "ands_after",
                    "wall_us",
                ] {
                    req_u64(&v, f, n)?;
                }
            }
            "cell_done" => {
                req_str(&v, "label", n)?;
            }
            "message" => {
                req_str(&v, "text", n)?;
            }
            _ => unreachable!("kind list is closed"),
        }
    }
    // The harness span may legitimately still be open (finish() closes
    // sinks before main returns); allow at most one unbalanced span per
    // thread and require everything nested below it to have closed.
    for (thread, stack) in &span_stacks {
        if stack.len() > 1 {
            return Err(format!(
                "thread {thread} ends with {} unclosed spans: {stack:?}",
                stack.len()
            ));
        }
    }
    Ok((workers, portfolio))
}

/// Validates the Chrome trace against the worker sets from the JSONL.
fn check_chrome(
    text: &str,
    workers: &BTreeSet<u64>,
    portfolio: &BTreeSet<u64>,
) -> Result<(), String> {
    let v = parse(text)?;
    let events = v.as_arr().ok_or("top level is not an array")?;
    let mut named_tracks = BTreeSet::new();
    let mut slice_tracks = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let tid = field_u64(e, "tid").ok_or(format!("event {i}: missing tid"))?;
        match ph {
            "M" => {
                named_tracks.insert(tid);
            }
            "X" => {
                field_u64(e, "ts").ok_or(format!("event {i}: missing ts"))?;
                field_u64(e, "dur").ok_or(format!("event {i}: missing dur"))?;
                slice_tracks.insert(tid);
            }
            "i" | "C" | "B" | "E" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for &w in workers {
        let tid = 1000 + w;
        if !slice_tracks.contains(&tid) {
            return Err(format!("pool worker {w}: no job slices on track {tid}"));
        }
        if !named_tracks.contains(&tid) {
            return Err(format!(
                "pool worker {w}: track {tid} has no thread_name metadata"
            ));
        }
    }
    for &w in portfolio {
        let tid = 2000 + w;
        if !slice_tracks.contains(&tid) {
            return Err(format!(
                "portfolio worker {w}: no race slices on track {tid}"
            ));
        }
        if !named_tracks.contains(&tid) {
            return Err(format!(
                "portfolio worker {w}: track {tid} has no thread_name metadata"
            ));
        }
    }
    Ok(())
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn req_u64(v: &Value, key: &str, line: usize) -> Result<u64, String> {
    field_u64(v, key).ok_or(format!("line {line}: missing {key}"))
}

fn req_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or(format!("line {line}: missing {key}"))
}
