//! Cut-based technology mapping (area-flow DP with NPN cell matching).
//!
//! The mapper covers an AIG with library cells: 4-feasible cuts are
//! enumerated per node, each cut function is NPN-matched against the
//! library, and a dynamic program selects the cover minimising *area flow*
//! (area amortised over estimated fanout), with arrival time as tiebreak.
//! Additional iterations re-run the DP with fanout counts measured on the
//! previous cover — the classical "area recovery" loop, which is what the
//! `+opt` (extreme optimisation) setting of the paper's Table III maps to.

use crate::cell::{CellLibrary, CellMatch};
use crate::netlist::{MappedNetlist, NetId};
use almost_aig::cut::{cut_function, CutConfig, CutSet};
use almost_aig::{Aig, Tt, Var};
use std::collections::HashMap;

/// Mapper configuration.
#[derive(Clone, Copy, Debug)]
pub struct MapConfig {
    /// Number of area-flow DP iterations (1 = plain mapping, the paper's
    /// `-opt`; 3 = with area recovery, the paper's `+opt`).
    pub area_iterations: usize,
    /// Maximum cuts per node during enumeration.
    pub max_cuts: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            area_iterations: 1,
            max_cuts: 8,
        }
    }
}

impl MapConfig {
    /// The paper's "no optimisation" setting.
    pub fn no_opt() -> Self {
        Self::default()
    }

    /// The paper's "extreme optimisation" setting (ultra effort + area
    /// recovery).
    pub fn extreme_opt() -> Self {
        MapConfig {
            area_iterations: 3,
            max_cuts: 12,
        }
    }
}

/// Per-node mapping decision.
#[derive(Clone, Debug)]
enum Choice {
    /// The node is functionally a (possibly complemented) copy of another
    /// node.
    Wire { leaf: Var, flip: bool },
    /// A bound library cell over the given (support-compressed) leaves.
    Bind {
        leaves: Vec<Var>,
        cell_match: CellMatch,
    },
}

/// Maps `aig` onto `library`.
///
/// The returned netlist is topologically ordered and functionally
/// equivalent to the AIG (validated in tests by exhaustive/random
/// cross-evaluation).
///
/// # Panics
///
/// Panics if some cut function has no library match, which cannot happen
/// with a complete library such as [`CellLibrary::nangate45`] (every 2-input
/// function is covered).
pub fn map_aig(aig: &Aig, library: &CellLibrary, config: &MapConfig) -> MappedNetlist {
    let cuts = CutSet::compute(
        aig,
        CutConfig {
            k: 4,
            max_cuts: config.max_cuts,
        },
    );
    let inv_area = library.cell(library.inverter()).area();
    let inv_delay = library.cell(library.inverter()).delay();

    let mut refs: Vec<f64> = aig.fanout_counts().iter().map(|&r| r as f64).collect();
    let mut choices: Vec<Option<Choice>> = vec![None; aig.num_nodes()];

    for _iter in 0..config.area_iterations.max(1) {
        let mut flow = vec![0.0f64; aig.num_nodes()];
        let mut arrival = vec![0.0f64; aig.num_nodes()];
        for v in aig.iter_ands() {
            let mut best: Option<(f64, f64, Choice)> = None;
            for cut in cuts.cuts_of(v) {
                if cut.leaves() == [v] {
                    continue;
                }
                let tt = cut_function(aig, v, cut);
                let support = tt.support();
                if support.is_empty() {
                    continue; // constant nodes cannot exist in a hashed AIG
                }
                let leaves: Vec<Var> = support.iter().map(|&s| cut.leaves()[s]).collect();
                let ctt = compress(&tt, &support);
                if support.len() == 1 {
                    let flip = ctt.get_bit(0); // f(0)=1 means complement
                    let leaf = leaves[0];
                    let cost = flow[leaf as usize] + if flip { inv_area } else { 0.0 };
                    let arr = arrival[leaf as usize] + if flip { inv_delay } else { 0.0 };
                    consider(&mut best, cost, arr, Choice::Wire { leaf, flip });
                    continue;
                }
                for m in library.matches_for(&ctt) {
                    let cell = library.cell(m.cell);
                    let mut cost = cell.area();
                    let mut arr: f64 = 0.0;
                    for (li, &leaf) in leaves.iter().enumerate() {
                        let flip = m.leaf_flips >> li & 1 != 0;
                        cost += flow[leaf as usize] + if flip { inv_area } else { 0.0 };
                        arr = arr.max(arrival[leaf as usize] + if flip { inv_delay } else { 0.0 });
                    }
                    if m.output_flip {
                        // The positive polarity may need one more inverter;
                        // charge half (consumers often want either phase).
                        cost += inv_area * 0.5;
                    }
                    arr += cell.delay();
                    consider(
                        &mut best,
                        cost,
                        arr,
                        Choice::Bind {
                            leaves: leaves.clone(),
                            cell_match: m,
                        },
                    );
                }
            }
            let (cost, arr, choice) = best.expect("complete library always matches some cut");
            flow[v as usize] = cost / refs[v as usize].max(1.0);
            arrival[v as usize] = arr;
            choices[v as usize] = Some(choice);
        }

        // Measure usage on the implied cover for the next iteration.
        refs = measure_usage(aig, &choices);
    }

    emit(aig, library, &choices)
}

fn consider(best: &mut Option<(f64, f64, Choice)>, cost: f64, arr: f64, choice: Choice) {
    let better = match best {
        None => true,
        Some((bc, ba, _)) => cost < *bc - 1e-12 || (cost < *bc + 1e-12 && arr < *ba - 1e-12),
    };
    if better {
        *best = Some((cost, arr, choice));
    }
}

/// Restricts `tt` to its support variables (given as sorted indices).
fn compress(tt: &Tt, support: &[usize]) -> Tt {
    let n = support.len();
    let mut out = Tt::zero(n);
    for idx in 0..out.num_bits() {
        let mut full = 0usize;
        for (i, &s) in support.iter().enumerate() {
            if idx >> i & 1 != 0 {
                full |= 1 << s;
            }
        }
        if tt.get_bit(full) {
            out.set_bit(idx, true);
        }
    }
    out
}

/// Counts how often each node's signal is consumed by the cover implied by
/// `choices` (plus the primary outputs).
fn measure_usage(aig: &Aig, choices: &[Option<Choice>]) -> Vec<f64> {
    let mut usage = vec![0.0f64; aig.num_nodes()];
    let mut stack: Vec<Var> = Vec::new();
    let mut visited = vec![false; aig.num_nodes()];
    for out in aig.outputs() {
        usage[out.var() as usize] += 1.0;
        stack.push(out.var());
    }
    while let Some(v) = stack.pop() {
        if visited[v as usize] || !aig.is_and(v) {
            continue;
        }
        visited[v as usize] = true;
        match choices[v as usize]
            .as_ref()
            .expect("AND nodes have choices")
        {
            Choice::Wire { leaf, .. } => {
                usage[*leaf as usize] += 1.0;
                stack.push(*leaf);
            }
            Choice::Bind { leaves, .. } => {
                for &l in leaves {
                    usage[l as usize] += 1.0;
                    stack.push(l);
                }
            }
        }
    }
    usage
}

/// Emits the mapped netlist for the cover implied by `choices`.
fn emit(aig: &Aig, library: &CellLibrary, choices: &[Option<Choice>]) -> MappedNetlist {
    let mut nl = MappedNetlist::new();
    // Net for each (var, phase); created on demand.
    let mut pos: HashMap<Var, NetId> = HashMap::new();
    let mut neg: HashMap<Var, NetId> = HashMap::new();

    for (i, &v) in aig.inputs().iter().enumerate() {
        let net = nl.add_net(Some((v, false)));
        pos.insert(v, net);
        nl.add_input_net(net);
        let _ = i;
    }

    // Which nodes are needed, in topological order.
    let usage = measure_usage(aig, choices);

    // Tie nets for constant outputs, created lazily.
    let mut tie_nets: [Option<NetId>; 2] = [None, None];

    for v in aig.iter_ands() {
        if usage[v as usize] == 0.0 {
            continue;
        }
        match choices[v as usize].as_ref().expect("covered AND") {
            Choice::Wire { leaf, flip } => {
                // Alias: the node's nets are the leaf's nets (swapped on
                // flip).
                let (lp, ln) = (pos.get(leaf).copied(), neg.get(leaf).copied());
                let (p, n) = if *flip { (ln, lp) } else { (lp, ln) };
                if let Some(p) = p {
                    pos.insert(v, p);
                }
                if let Some(n) = n {
                    neg.insert(v, n);
                }
                // Ensure at least one polarity exists.
                if !pos.contains_key(&v) && !neg.contains_key(&v) {
                    let src = net_for(&mut nl, library, &mut pos, &mut neg, *leaf, *flip);
                    pos.insert(v, src);
                }
            }
            Choice::Bind { leaves, cell_match } => {
                let cell = library.cell(cell_match.cell);
                let mut fanins: Vec<NetId> = Vec::with_capacity(cell.num_inputs());
                for p in 0..cell.num_inputs() {
                    let li = cell_match.pin_to_leaf[p];
                    let leaf = leaves[li];
                    let flip = cell_match.leaf_flips >> li & 1 != 0;
                    fanins.push(net_for(&mut nl, library, &mut pos, &mut neg, leaf, flip));
                }
                let out_net = nl.add_net(Some((v, cell_match.output_flip)));
                nl.add_gate(cell_match.cell, fanins, out_net);
                if cell_match.output_flip {
                    neg.insert(v, out_net);
                } else {
                    pos.insert(v, out_net);
                }
            }
        }
    }

    for out in aig.outputs() {
        let v = out.var();
        let net = if v == 0 {
            // Constant output: tie cell.
            let want_one = out.is_complement();
            let slot = want_one as usize;
            *tie_nets[slot].get_or_insert_with(|| {
                let n = nl.add_net(None);
                let cell = if want_one {
                    library.tie1()
                } else {
                    library.tie0()
                };
                nl.add_gate(cell, vec![], n);
                n
            })
        } else {
            net_for(&mut nl, library, &mut pos, &mut neg, v, out.is_complement())
        };
        nl.add_output_net(net);
    }
    nl
}

/// Returns the net carrying `(var, complemented)`, inserting an inverter if
/// only the opposite polarity exists.
fn net_for(
    nl: &mut MappedNetlist,
    library: &CellLibrary,
    pos: &mut HashMap<Var, NetId>,
    neg: &mut HashMap<Var, NetId>,
    var: Var,
    complemented: bool,
) -> NetId {
    let (have, other) = if complemented {
        (neg.get(&var).copied(), pos.get(&var).copied())
    } else {
        (pos.get(&var).copied(), neg.get(&var).copied())
    };
    if let Some(n) = have {
        return n;
    }
    let src = other.expect("at least one polarity must exist for a covered node");
    let net = nl.add_net(Some((var, complemented)));
    nl.add_gate(library.inverter(), vec![src], net);
    if complemented {
        neg.insert(var, net);
    } else {
        pos.insert(var, net);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aig = Aig::new();
        let mut pool: Vec<almost_aig::Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
        while aig.num_ands() < num_ands {
            let a = pool[rng.random_range(0..pool.len())];
            let b = pool[rng.random_range(0..pool.len())];
            let lit = aig.and(
                a.xor_complement(rng.random()),
                b.xor_complement(rng.random()),
            );
            if !lit.is_const() {
                pool.push(lit);
            }
        }
        for i in 0..3.min(pool.len()) {
            let lit = pool[pool.len() - 1 - i];
            aig.add_output(lit);
        }
        aig
    }

    fn check_mapping_equivalence(aig: &Aig, nl: &MappedNetlist, lib: &CellLibrary, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let ins: Vec<bool> = (0..aig.num_inputs()).map(|_| rng.random()).collect();
            assert_eq!(
                aig.eval(&ins),
                nl.eval(lib, &ins),
                "mapped netlist diverges on {ins:?}"
            );
        }
    }

    #[test]
    fn maps_simple_functions_correctly() {
        let lib = CellLibrary::nangate45();
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f1 = aig.xor(a, b);
        let f2 = aig.mux(c, a, b);
        let f3 = aig.nand(a, c);
        aig.add_output(f1);
        aig.add_output(f2);
        aig.add_output(f3);
        let nl = map_aig(&aig, &lib, &MapConfig::default());
        for bits in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 != 0).collect();
            assert_eq!(aig.eval(&ins), nl.eval(&lib, &ins), "bits={bits}");
        }
    }

    #[test]
    fn maps_random_circuits_correctly() {
        let lib = CellLibrary::nangate45();
        for seed in 0..4 {
            let aig = random_aig(8, 120, seed);
            let nl = map_aig(&aig, &lib, &MapConfig::default());
            check_mapping_equivalence(&aig, &nl, &lib, seed);
        }
    }

    #[test]
    fn extreme_opt_never_larger_area() {
        let lib = CellLibrary::nangate45();
        let aig = random_aig(10, 200, 9);
        let plain = map_aig(&aig, &lib, &MapConfig::no_opt());
        let opt = map_aig(&aig, &lib, &MapConfig::extreme_opt());
        check_mapping_equivalence(&aig, &opt, &lib, 5);
        let area = |nl: &MappedNetlist| -> f64 {
            nl.gates().iter().map(|g| lib.cell(g.cell).area()).sum()
        };
        // Area recovery should not make things meaningfully worse.
        assert!(
            area(&opt) <= area(&plain) * 1.05 + 1.0,
            "extreme opt area {} vs plain {}",
            area(&opt),
            area(&plain)
        );
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let lib = CellLibrary::nangate45();
        let mut aig = Aig::new();
        let a = aig.add_input();
        aig.add_output(almost_aig::Lit::TRUE);
        aig.add_output(almost_aig::Lit::FALSE);
        aig.add_output(a);
        aig.add_output(!a);
        let nl = map_aig(&aig, &lib, &MapConfig::default());
        assert_eq!(nl.eval(&lib, &[true]), vec![true, false, true, false]);
        assert_eq!(nl.eval(&lib, &[false]), vec![true, false, false, true]);
    }
}
