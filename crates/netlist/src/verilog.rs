//! Structural Verilog writer for mapped netlists.
//!
//! Emits a gate-level module instantiating the library cells — the format
//! a physical-design or sign-off flow (the paper uses Synopsys DC) would
//! consume. Cell pin names follow the simple `A`, `B`, `C`, `D` / `Y`
//! convention.

use crate::cell::CellLibrary;
use crate::netlist::MappedNetlist;
use std::fmt::Write as _;

/// Emits `netlist` as a structural Verilog module named `module_name`.
///
/// Net names are synthetic (`n<id>`); primary inputs/outputs become module
/// ports `pi<k>` / `po<k>` wired to their nets.
pub fn write_verilog(netlist: &MappedNetlist, library: &CellLibrary, module_name: &str) -> String {
    let mut out = String::new();
    let ins: Vec<String> = (0..netlist.input_nets().len())
        .map(|i| format!("pi{i}"))
        .collect();
    let outs: Vec<String> = (0..netlist.output_nets().len())
        .map(|i| format!("po{i}"))
        .collect();
    let ports: Vec<&str> = ins
        .iter()
        .map(String::as_str)
        .chain(outs.iter().map(String::as_str))
        .collect();
    writeln!(out, "module {module_name} ({});", ports.join(", ")).expect("write");
    for i in &ins {
        writeln!(out, "  input {i};").expect("write");
    }
    for o in &outs {
        writeln!(out, "  output {o};").expect("write");
    }
    // Wires for every net.
    for n in 0..netlist.num_nets() {
        writeln!(out, "  wire n{n};").expect("write");
    }
    // Port bindings.
    for (i, &net) in netlist.input_nets().iter().enumerate() {
        writeln!(out, "  assign n{net} = pi{i};").expect("write");
    }
    for (i, &net) in netlist.output_nets().iter().enumerate() {
        writeln!(out, "  assign po{i} = n{net};").expect("write");
    }
    // Cell instances.
    const PINS: [&str; 4] = ["A", "B", "C", "D"];
    for (k, gate) in netlist.gates().iter().enumerate() {
        let cell = library.cell(gate.cell);
        let mut conns: Vec<String> = gate
            .fanins
            .iter()
            .enumerate()
            .map(|(p, &net)| format!(".{}(n{})", PINS[p], net))
            .collect();
        conns.push(format!(".Y(n{})", gate.output));
        writeln!(out, "  {} u{k} ({});", cell.name(), conns.join(", ")).expect("write");
    }
    writeln!(out, "endmodule").expect("write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_aig, MapConfig};
    use almost_aig::Aig;

    fn mapped_example() -> (Aig, MappedNetlist, CellLibrary) {
        let lib = CellLibrary::nangate45();
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        let g = aig.nand(a, b);
        aig.add_output(f);
        aig.add_output(g);
        let nl = map_aig(&aig, &lib, &MapConfig::no_opt());
        (aig, nl, lib)
    }

    #[test]
    fn emits_wellformed_module() {
        let (_aig, nl, lib) = mapped_example();
        let v = write_verilog(&nl, &lib, "xor_nand");
        assert!(v.starts_with("module xor_nand ("));
        assert!(v.trim_end().ends_with("endmodule"));
        assert!(v.contains("input pi0;"));
        assert!(v.contains("output po1;"));
        // One instance per gate.
        let instances = v
            .lines()
            .filter(|l| l.trim_start().starts_with('u') || l.contains(" u"))
            .count();
        assert!(instances >= nl.num_gates());
    }

    #[test]
    fn every_gate_has_an_output_pin() {
        let (_aig, nl, lib) = mapped_example();
        let v = write_verilog(&nl, &lib, "m");
        let y_count = v.matches(".Y(").count();
        assert_eq!(y_count, nl.num_gates());
    }

    #[test]
    fn port_count_matches_interface() {
        let (aig, nl, lib) = mapped_example();
        let v = write_verilog(&nl, &lib, "m");
        let header = v.lines().next().expect("header");
        let ports = header.matches("pi").count() + header.matches("po").count();
        assert_eq!(ports, aig.num_inputs() + aig.num_outputs());
    }
}
