//! Mapped gate-level netlists.

use crate::cell::CellLibrary;
use almost_aig::Var;

/// A net identifier in a [`MappedNetlist`].
pub type NetId = usize;

/// One placed cell instance.
#[derive(Clone, Debug)]
pub struct GateInstance {
    /// Index into the [`CellLibrary`].
    pub cell: usize,
    /// Driving nets of each input pin, in pin order.
    pub fanins: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A technology-mapped netlist.
///
/// Produced by [`crate::map::map_aig`]; nets are plain indices, each driven
/// by exactly one gate or primary input. `net_origin` records which AIG
/// node (and phase) a net carries, which lets the PPA analysis reuse AIG
/// simulation for switching activity.
#[derive(Clone, Debug, Default)]
pub struct MappedNetlist {
    gates: Vec<GateInstance>,
    num_nets: usize,
    input_nets: Vec<NetId>,
    output_nets: Vec<NetId>,
    net_origin: Vec<Option<(Var, bool)>>,
}

impl MappedNetlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a net carrying AIG node `origin` (var, complemented).
    pub fn add_net(&mut self, origin: Option<(Var, bool)>) -> NetId {
        let id = self.num_nets;
        self.num_nets += 1;
        self.net_origin.push(origin);
        id
    }

    /// Adds a gate instance and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced net does not exist.
    pub fn add_gate(&mut self, cell: usize, fanins: Vec<NetId>, output: NetId) -> usize {
        assert!(output < self.num_nets);
        for &f in &fanins {
            assert!(f < self.num_nets);
        }
        self.gates.push(GateInstance {
            cell,
            fanins,
            output,
        });
        self.gates.len() - 1
    }

    /// Registers a primary-input net.
    pub fn add_input_net(&mut self, net: NetId) {
        self.input_nets.push(net);
    }

    /// Registers a primary-output net.
    pub fn add_output_net(&mut self, net: NetId) {
        self.output_nets.push(net);
    }

    /// All gate instances.
    pub fn gates(&self) -> &[GateInstance] {
        &self.gates
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Primary-input nets, in input order.
    pub fn input_nets(&self) -> &[NetId] {
        &self.input_nets
    }

    /// Primary-output nets, in output order.
    pub fn output_nets(&self) -> &[NetId] {
        &self.output_nets
    }

    /// The AIG origin of a net, if recorded.
    pub fn net_origin(&self, net: NetId) -> Option<(Var, bool)> {
        self.net_origin[net]
    }

    /// Per-net fanout counts (loads), counting gate inputs and primary
    /// outputs.
    pub fn net_fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.num_nets];
        for g in &self.gates {
            for &f in &g.fanins {
                fo[f] += 1;
            }
        }
        for &o in &self.output_nets {
            fo[o] += 1;
        }
        fo
    }

    /// Counts instances per cell, for report-style summaries.
    pub fn cell_histogram(&self, library: &CellLibrary) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; library.cells().len()];
        for g in &self.gates {
            counts[g.cell] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, c)| (library.cell(i).name().to_string(), c))
            .collect()
    }

    /// Evaluates the netlist on one input assignment (for cross-checking
    /// against the source AIG).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of input nets, or
    /// the netlist is not topologically ordered (gates must be added in
    /// topological order, which [`crate::map::map_aig`] guarantees).
    pub fn eval(&self, library: &CellLibrary, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_nets.len());
        let mut values = vec![None::<bool>; self.num_nets];
        for (i, &net) in self.input_nets.iter().enumerate() {
            values[net] = Some(inputs[i]);
        }
        for gate in &self.gates {
            let cell = library.cell(gate.cell);
            let mut idx = 0usize;
            for (p, &f) in gate.fanins.iter().enumerate() {
                let v = values[f].expect("netlist must be topologically ordered");
                if v {
                    idx |= 1 << p;
                }
            }
            let out = if cell.num_inputs() == 0 {
                cell.function().get_bit(0)
            } else {
                cell.function().get_bit(idx)
            };
            values[gate.output] = Some(out);
        }
        self.output_nets
            .iter()
            .map(|&n| values[n].expect("outputs must be driven"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;

    #[test]
    fn manual_netlist_evaluates() {
        let lib = CellLibrary::nangate45();
        let nand2 = lib
            .cells()
            .iter()
            .position(|c| c.name() == "NAND2")
            .expect("NAND2 exists");
        let mut nl = MappedNetlist::new();
        let a = nl.add_net(None);
        let b = nl.add_net(None);
        let y = nl.add_net(None);
        nl.add_input_net(a);
        nl.add_input_net(b);
        nl.add_gate(nand2, vec![a, b], y);
        nl.add_output_net(y);
        assert_eq!(nl.eval(&lib, &[true, true]), vec![false]);
        assert_eq!(nl.eval(&lib, &[true, false]), vec![true]);
        assert_eq!(nl.num_gates(), 1);
        assert_eq!(nl.net_fanouts(), vec![1, 1, 1]);
    }

    #[test]
    fn tie_cells_evaluate() {
        let lib = CellLibrary::nangate45();
        let mut nl = MappedNetlist::new();
        let n0 = nl.add_net(None);
        let n1 = nl.add_net(None);
        nl.add_gate(lib.tie0(), vec![], n0);
        nl.add_gate(lib.tie1(), vec![], n1);
        nl.add_output_net(n0);
        nl.add_output_net(n1);
        assert_eq!(nl.eval(&lib, &[]), vec![false, true]);
    }

    #[test]
    fn histogram_counts_cells() {
        let lib = CellLibrary::nangate45();
        let inv = lib.inverter();
        let mut nl = MappedNetlist::new();
        let a = nl.add_net(None);
        nl.add_input_net(a);
        let b = nl.add_net(None);
        let c = nl.add_net(None);
        nl.add_gate(inv, vec![a], b);
        nl.add_gate(inv, vec![b], c);
        nl.add_output_net(c);
        let hist = nl.cell_histogram(&lib);
        assert_eq!(hist, vec![("INV".to_string(), 2)]);
    }
}
