//! A NanGate-45-flavoured standard-cell library.
//!
//! Sixteen combinational cells with area (µm²), intrinsic delay (ns),
//! per-fanout load delay, input capacitance (normalised fF) and leakage
//! (nW) in the ballpark of the open NanGate 45 nm PDK. The absolute values
//! matter less than the *relative* costs — the paper's Table III reports
//! percentage overheads against a baseline mapped with the same library.

use almost_aig::npn::canonize;
use almost_aig::Tt;
use std::collections::HashMap;

/// One combinational standard cell.
#[derive(Clone, Debug)]
pub struct Cell {
    name: String,
    function: Tt,
    area: f64,
    delay: f64,
    load_coeff: f64,
    input_cap: f64,
    leakage: f64,
}

impl Cell {
    /// Creates a cell; `function` defines the number of input pins.
    pub fn new(
        name: impl Into<String>,
        function: Tt,
        area: f64,
        delay: f64,
        input_cap: f64,
        leakage: f64,
    ) -> Self {
        Cell {
            name: name.into(),
            function,
            area,
            delay,
            load_coeff: 0.003,
            input_cap,
            leakage,
        }
    }

    /// Cell name (e.g. `NAND2_X1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's Boolean function over its input pins.
    pub fn function(&self) -> &Tt {
        &self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.function.nvars()
    }

    /// Cell area in µm².
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Intrinsic pin-to-pin delay in ns.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Additional delay per fanout (ns).
    pub fn load_coeff(&self) -> f64 {
        self.load_coeff
    }

    /// Input pin capacitance (normalised).
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// Leakage power (nW).
    pub fn leakage(&self) -> f64 {
        self.leakage
    }
}

/// A pre-bound match of a library cell onto a cut function: applying
/// `transform` to the *cut* function yields the library canon; combined
/// with the cell's own canonising transform it pins down the input
/// binding (see [`CellLibrary::matches_for`]).
#[derive(Clone, Debug)]
pub struct CellMatch {
    /// Index of the cell in the library.
    pub cell: usize,
    /// Permutation: cell pin `p` is driven by cut leaf `pin_to_leaf[p]`.
    pub pin_to_leaf: Vec<usize>,
    /// Mask of cut leaves that must be complemented (through an inverter).
    pub leaf_flips: u32,
    /// Whether the cell output must be inverted.
    pub output_flip: bool,
}

/// An immutable cell library with an NPN-class match index.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    /// NPN canon (words, nvars) → cells in that class.
    class_index: HashMap<(usize, Vec<u64>), Vec<usize>>,
    inv_cell: usize,
    buf_cell: usize,
    tie0_cell: usize,
    tie1_cell: usize,
}

impl CellLibrary {
    /// Builds a library from cells plus the four required service cells
    /// (INV, BUF, TIE0, TIE1), which must be present among `cells` with
    /// those exact names.
    ///
    /// # Panics
    ///
    /// Panics if a service cell is missing or a cell has more than 4
    /// inputs.
    pub fn from_cells(cells: Vec<Cell>) -> Self {
        let find = |name: &str| {
            cells
                .iter()
                .position(|c| c.name == name)
                .unwrap_or_else(|| panic!("library must contain a {name} cell"))
        };
        let inv_cell = find("INV");
        let buf_cell = find("BUF");
        let tie0_cell = find("TIE0");
        let tie1_cell = find("TIE1");
        let mut class_index: HashMap<(usize, Vec<u64>), Vec<usize>> = HashMap::new();
        for (i, cell) in cells.iter().enumerate() {
            assert!(cell.num_inputs() <= 4, "cells are limited to 4 inputs");
            if cell.num_inputs() == 0 {
                continue;
            }
            let (canon, _) = canonize(&cell.function);
            class_index
                .entry((cell.num_inputs(), canon.words().to_vec()))
                .or_default()
                .push(i);
        }
        CellLibrary {
            cells,
            class_index,
            inv_cell,
            buf_cell,
            tie0_cell,
            tie1_cell,
        }
    }

    /// The NanGate-45-flavoured default library.
    #[allow(clippy::vec_init_then_push)] // one push per cell reads as a datasheet
    pub fn nangate45() -> Self {
        let v = |i: usize, n: usize| Tt::var(i, n);
        let mut cells = Vec::new();
        // Service cells.
        cells.push(Cell::new("INV", v(0, 1).not(), 0.532, 0.008, 1.0, 1.7));
        cells.push(Cell::new("BUF", v(0, 1), 0.798, 0.012, 1.0, 1.4));
        cells.push(Cell::new("TIE0", Tt::zero(0), 0.266, 0.0, 0.0, 0.4));
        cells.push(Cell::new("TIE1", Tt::one(0), 0.266, 0.0, 0.0, 0.4));
        // Two-input cells.
        let a2 = v(0, 2);
        let b2 = v(1, 2);
        cells.push(Cell::new(
            "NAND2",
            a2.and(&b2).not(),
            0.798,
            0.010,
            1.0,
            2.0,
        ));
        cells.push(Cell::new("NOR2", a2.or(&b2).not(), 0.798, 0.012, 1.2, 2.0));
        cells.push(Cell::new("AND2", a2.and(&b2), 1.064, 0.015, 1.0, 1.9));
        cells.push(Cell::new("OR2", a2.or(&b2), 1.064, 0.016, 1.0, 1.9));
        cells.push(Cell::new("XOR2", a2.xor(&b2), 1.596, 0.024, 2.0, 2.4));
        cells.push(Cell::new(
            "XNOR2",
            a2.xor(&b2).not(),
            1.596,
            0.024,
            2.0,
            2.4,
        ));
        // Three-input cells.
        let a3 = v(0, 3);
        let b3 = v(1, 3);
        let c3 = v(2, 3);
        cells.push(Cell::new(
            "NAND3",
            a3.and(&b3).and(&c3).not(),
            1.064,
            0.014,
            1.0,
            2.2,
        ));
        cells.push(Cell::new(
            "NOR3",
            a3.or(&b3).or(&c3).not(),
            1.064,
            0.018,
            1.2,
            2.2,
        ));
        cells.push(Cell::new(
            "AOI21",
            a3.and(&b3).or(&c3).not(),
            1.064,
            0.014,
            1.1,
            2.1,
        ));
        cells.push(Cell::new(
            "OAI21",
            a3.or(&b3).and(&c3).not(),
            1.064,
            0.014,
            1.1,
            2.1,
        ));
        cells.push(Cell::new(
            "MUX2",
            // s ? b : a with pins (a, b, s).
            {
                let s = c3.clone();
                s.and(&b3).or(&s.not().and(&a3))
            },
            1.862,
            0.020,
            1.3,
            2.6,
        ));
        // Four-input cells.
        let a4 = v(0, 4);
        let b4 = v(1, 4);
        let c4 = v(2, 4);
        let d4 = v(3, 4);
        cells.push(Cell::new(
            "NAND4",
            a4.and(&b4).and(&c4).and(&d4).not(),
            1.330,
            0.018,
            1.0,
            2.5,
        ));
        cells.push(Cell::new(
            "AOI22",
            a4.and(&b4).or(&c4.and(&d4)).not(),
            1.330,
            0.016,
            1.1,
            2.4,
        ));
        cells.push(Cell::new(
            "OAI22",
            a4.or(&b4).and(&c4.or(&d4)).not(),
            1.330,
            0.016,
            1.1,
            2.4,
        ));
        Self::from_cells(cells)
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell at `index`.
    pub fn cell(&self, index: usize) -> &Cell {
        &self.cells[index]
    }

    /// Index of the inverter cell.
    pub fn inverter(&self) -> usize {
        self.inv_cell
    }

    /// Index of the buffer cell.
    pub fn buffer(&self) -> usize {
        self.buf_cell
    }

    /// Index of the constant-0 tie cell.
    pub fn tie0(&self) -> usize {
        self.tie0_cell
    }

    /// Index of the constant-1 tie cell.
    pub fn tie1(&self) -> usize {
        self.tie1_cell
    }

    /// Finds all concrete bindings of library cells realising `function`
    /// (a cut function with full support).
    ///
    /// Each returned [`CellMatch`] satisfies: cell output (optionally
    /// inverted per `output_flip`) equals `function` when cell pin `p` is
    /// driven by leaf `pin_to_leaf[p]`, complemented iff bit
    /// `pin_to_leaf[p]` of `leaf_flips` is set.
    pub fn matches_for(&self, function: &Tt) -> Vec<CellMatch> {
        let n = function.nvars();
        if n == 0 || n > 4 {
            return Vec::new();
        }
        let (canon, _) = canonize(function);
        let Some(candidates) = self.class_index.get(&(n, canon.words().to_vec())) else {
            return Vec::new();
        };
        let mut matches = Vec::new();
        for &ci in candidates {
            let cell_f = &self.cells[ci].function;
            // Brute-force bind: pins permuted, leaves flipped, output
            // phase.
            for perm in permutations(n) {
                for flips in 0..(1u32 << n) {
                    // Build the function computed by the bound cell:
                    // pin p reads leaf perm[p], complemented per flips.
                    let bound = bind(cell_f, &perm, flips);
                    if &bound == function {
                        matches.push(CellMatch {
                            cell: ci,
                            pin_to_leaf: perm.clone(),
                            leaf_flips: flips_as_leaf_mask(&perm, flips),
                            output_flip: false,
                        });
                    } else if bound.not() == *function {
                        matches.push(CellMatch {
                            cell: ci,
                            pin_to_leaf: perm.clone(),
                            leaf_flips: flips_as_leaf_mask(&perm, flips),
                            output_flip: true,
                        });
                    }
                }
            }
        }
        matches
    }
}

/// Computes the function of a cell whose pin `p` is driven by variable
/// `perm[p]`, complemented iff bit `p` of `pin_flips` is set.
fn bind(cell_f: &Tt, perm: &[usize], pin_flips: u32) -> Tt {
    let n = cell_f.nvars();
    let mut out = Tt::zero(n);
    for idx in 0..out.num_bits() {
        // Determine each pin's value from the leaf assignment `idx`.
        let mut pin_idx = 0usize;
        for (p, &leaf) in perm.iter().enumerate() {
            let mut val = (idx >> leaf) & 1 != 0;
            if pin_flips >> p & 1 != 0 {
                val = !val;
            }
            if val {
                pin_idx |= 1 << p;
            }
        }
        if cell_f.get_bit(pin_idx) {
            out.set_bit(idx, true);
        }
    }
    out
}

/// Converts per-pin flips into a per-leaf mask.
fn flips_as_leaf_mask(perm: &[usize], pin_flips: u32) -> u32 {
    let mut mask = 0u32;
    for (p, &leaf) in perm.iter().enumerate() {
        if pin_flips >> p & 1 != 0 {
            mask |= 1 << leaf;
        }
    }
    mask
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rem: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rem.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rem.len() {
            let v = rem.remove(i);
            prefix.push(v);
            rec(prefix, rem, out);
            prefix.pop();
            rem.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_service_cells() {
        let lib = CellLibrary::nangate45();
        assert_eq!(lib.cell(lib.inverter()).name(), "INV");
        assert_eq!(lib.cell(lib.buffer()).name(), "BUF");
        assert_eq!(lib.cell(lib.tie0()).name(), "TIE0");
        assert_eq!(lib.cell(lib.tie1()).name(), "TIE1");
    }

    #[test]
    fn and2_matches_directly() {
        let lib = CellLibrary::nangate45();
        let f = Tt::var(0, 2).and(&Tt::var(1, 2));
        let matches = lib.matches_for(&f);
        assert!(!matches.is_empty());
        // AND2 must be among them without any flips.
        assert!(matches
            .iter()
            .any(|m| { lib.cell(m.cell).name() == "AND2" && m.leaf_flips == 0 && !m.output_flip }));
        // NAND2 with an output flip also matches.
        assert!(matches
            .iter()
            .any(|m| lib.cell(m.cell).name() == "NAND2" && m.output_flip));
    }

    #[test]
    fn bindings_are_functionally_correct() {
        let lib = CellLibrary::nangate45();
        // f(l0,l1,l2) = !(l2 & (l0 | l1)) -- an OAI21 shape with permuted
        // leaves.
        let l0 = Tt::var(0, 3);
        let l1 = Tt::var(1, 3);
        let l2 = Tt::var(2, 3);
        let f = l2.and(&l0.or(&l1)).not();
        let matches = lib.matches_for(&f);
        assert!(!matches.is_empty(), "OAI21 shape must match");
        for m in &matches {
            let cell_f = lib.cell(m.cell).function();
            // Recompute the bound function and compare.
            let n = f.nvars();
            let mut ok = true;
            for idx in 0..f.num_bits() {
                let mut pin_idx = 0usize;
                for (p, &leaf) in m.pin_to_leaf.iter().enumerate() {
                    let mut val = (idx >> leaf) & 1 != 0;
                    if m.leaf_flips >> leaf & 1 != 0 {
                        val = !val;
                    }
                    if val {
                        pin_idx |= 1 << p;
                    }
                }
                let got = cell_f.get_bit(pin_idx) ^ m.output_flip;
                if got != f.get_bit(idx) {
                    ok = false;
                    break;
                }
            }
            assert!(ok, "binding of {} is wrong", lib.cell(m.cell).name());
            let _ = n;
        }
    }

    #[test]
    fn xor_matches_xor_cells_only_in_class() {
        let lib = CellLibrary::nangate45();
        let f = Tt::var(0, 2).xor(&Tt::var(1, 2));
        let matches = lib.matches_for(&f);
        assert!(!matches.is_empty());
        for m in &matches {
            let name = lib.cell(m.cell).name();
            assert!(name == "XOR2" || name == "XNOR2", "unexpected cell {name}");
        }
    }

    #[test]
    fn no_match_for_unsupported_function() {
        let lib = CellLibrary::nangate45();
        // 4-input parity is not in the library.
        let mut f = Tt::zero(4);
        for v in 0..4 {
            f = f.xor(&Tt::var(v, 4));
        }
        assert!(lib.matches_for(&f).is_empty());
    }
}
