//! Standard-cell library, technology mapping and PPA analysis.
//!
//! This crate substitutes for the commercial backend of the ALMOST paper
//! (NanGate 45 nm library + Synopsys DC): a cut-based, NPN-matching
//! technology mapper ([`map`]) covers an AIG with cells from a
//! NanGate-45-flavoured library ([`cell`]), and [`ppa`] reports
//! power/performance/area on the mapped netlist. The `.bench` reader/writer
//! ([`bench_format`]) makes the pipeline file-compatible with the real
//! ISCAS85 benchmark distribution.
//!
//! # Example
//!
//! ```
//! use almost_aig::Aig;
//! use almost_netlist::{cell::CellLibrary, map::{map_aig, MapConfig}, ppa::analyze};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input();
//! let b = aig.add_input();
//! let f = aig.xor(a, b);
//! aig.add_output(f);
//! let lib = CellLibrary::nangate45();
//! let netlist = map_aig(&aig, &lib, &MapConfig::default());
//! let report = analyze(&netlist, &aig, &lib, 8, 1);
//! assert!(report.area > 0.0);
//! assert!(report.delay > 0.0);
//! ```

pub mod bench_format;
pub mod cell;
pub mod map;
pub mod netlist;
pub mod ppa;
pub mod verilog;

pub use cell::{Cell, CellLibrary};
pub use map::{map_aig, MapConfig};
pub use netlist::MappedNetlist;
pub use ppa::{analyze, PpaReport};
