//! ISCAS-85 `.bench` format reader and writer.
//!
//! The `.bench` format is the distribution format of the ISCAS85
//! benchmarks the paper evaluates on:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G17 = NOT(G10)
//! ```
//!
//! Supported gate types: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUF`/`BUFF` (any arity ≥ 2 for the symmetric gates, XOR/XNOR chains
//! left-to-right). Sequential elements (`DFF`) are rejected — this
//! workspace is combinational-only, like the paper's ISCAS85 subset.

use almost_aig::{Aig, Lit};
use std::collections::HashMap;
use std::fmt;

/// Error from [`parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    line: usize,
    message: String,
}

impl ParseBenchError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseBenchError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bench parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseBenchError {}

/// Parses `.bench` text into an AIG.
///
/// # Errors
///
/// Returns [`ParseBenchError`] for syntax errors, undefined signals,
/// unsupported gate types (including `DFF`), or combinational cycles.
pub fn parse_bench(text: &str) -> Result<Aig, ParseBenchError> {
    struct GateDef {
        out: String,
        func: String,
        ins: Vec<String>,
        line: usize,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<GateDef> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT(") {
            let name = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseBenchError::new(lineno, "missing `)`"))?;
            inputs.push(name.trim().to_string());
        } else if let Some(rest) = upper.strip_prefix("OUTPUT(") {
            let name = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseBenchError::new(lineno, "missing `)`"))?;
            outputs.push(name.trim().to_string());
        } else if let Some(eq) = line.find('=') {
            let out = line[..eq].trim().to_ascii_uppercase();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| ParseBenchError::new(lineno, "expected `gate(...)`"))?;
            let func = rhs[..open].trim().to_ascii_uppercase();
            let args = rhs[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| ParseBenchError::new(lineno, "missing `)`"))?;
            let ins: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_ascii_uppercase())
                .filter(|s| !s.is_empty())
                .collect();
            if ins.is_empty() {
                return Err(ParseBenchError::new(lineno, "gate with no inputs"));
            }
            gates.push(GateDef {
                out,
                func,
                ins,
                line: lineno,
            });
        } else {
            return Err(ParseBenchError::new(
                lineno,
                format!("unrecognised line `{line}`"),
            ));
        }
    }

    let mut aig = Aig::new();
    let mut signals: HashMap<String, Lit> = HashMap::new();
    for name in &inputs {
        let lit = aig.add_named_input(name.clone());
        signals.insert(name.clone(), lit);
    }

    // Resolve gates in dependency order (simple worklist; detects cycles).
    let mut pending: Vec<GateDef> = gates;
    while !pending.is_empty() {
        let mut progressed = false;
        let mut still_pending = Vec::new();
        for g in pending {
            if g.ins.iter().all(|i| signals.contains_key(i)) {
                let ins: Vec<Lit> = g.ins.iter().map(|i| signals[i]).collect();
                let lit = match g.func.as_str() {
                    "AND" => aig.and_many(&ins),
                    "NAND" => !aig.and_many(&ins),
                    "OR" => aig.or_many(&ins),
                    "NOR" => !aig.or_many(&ins),
                    "XOR" => aig.xor_many(&ins),
                    "XNOR" => !aig.xor_many(&ins),
                    "NOT" | "INV" => {
                        if ins.len() != 1 {
                            return Err(ParseBenchError::new(g.line, "NOT takes one input"));
                        }
                        !ins[0]
                    }
                    "BUF" | "BUFF" => {
                        if ins.len() != 1 {
                            return Err(ParseBenchError::new(g.line, "BUFF takes one input"));
                        }
                        ins[0]
                    }
                    "DFF" => {
                        return Err(ParseBenchError::new(
                            g.line,
                            "sequential element DFF is not supported (combinational only)",
                        ))
                    }
                    other => {
                        return Err(ParseBenchError::new(
                            g.line,
                            format!("unsupported gate type `{other}`"),
                        ))
                    }
                };
                signals.insert(g.out.clone(), lit);
                progressed = true;
            } else {
                still_pending.push(g);
            }
        }
        if !progressed {
            let line = still_pending.first().map_or(0, |g| g.line);
            return Err(ParseBenchError::new(
                line,
                "unresolvable signals (cycle or undefined input)",
            ));
        }
        pending = still_pending;
    }

    for name in &outputs {
        let lit = *signals
            .get(name)
            .ok_or_else(|| ParseBenchError::new(0, format!("undefined output `{name}`")))?;
        aig.add_named_output(lit, name.clone());
    }
    Ok(aig)
}

/// Writes an AIG as `.bench` text (AND/NOT structure).
///
/// Internal nodes get synthetic names `N<var>`; complemented edges become
/// explicit `NOT` gates so the output is accepted by standard ISCAS
/// toolchains.
pub fn write_bench(aig: &Aig) -> String {
    let mut out = String::new();
    out.push_str("# generated by almost-netlist\n");
    for i in 0..aig.num_inputs() {
        out.push_str(&format!("INPUT({})\n", aig.input_name(i)));
    }
    for i in 0..aig.num_outputs() {
        out.push_str(&format!("OUTPUT({})\n", aig.output_name(i)));
    }

    let name_of = |lit: Lit, aig: &Aig| -> String {
        let v = lit.var();
        let base = if let Some(pos) = aig.inputs().iter().position(|&x| x == v) {
            aig.input_name(pos).to_string()
        } else {
            format!("N{v}")
        };
        if lit.is_complement() {
            format!("{base}_BAR")
        } else {
            base
        }
    };

    // Emit NOT gates on demand.
    let mut emitted_not: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut body = String::new();
    let require =
        |lit: Lit, aig: &Aig, body: &mut String, emitted: &mut std::collections::HashSet<u32>| {
            if lit.is_complement() && lit.var() != 0 && emitted.insert(lit.var()) {
                let pos = name_of(!lit, aig);
                body.push_str(&format!("{} = NOT({})\n", name_of(lit, aig), pos));
            }
        };

    for v in aig.iter_ands() {
        let (a, b) = aig.and_fanins(v).expect("iterating ANDs");
        require(a, aig, &mut body, &mut emitted_not);
        require(b, aig, &mut body, &mut emitted_not);
        body.push_str(&format!(
            "N{v} = AND({}, {})\n",
            name_of(a, aig),
            name_of(b, aig)
        ));
    }
    // Outputs may be complemented or constants.
    for (i, o) in aig.outputs().iter().enumerate() {
        let oname = aig.output_name(i).to_string();
        if o.var() == 0 {
            // Constant output: express as x AND NOT x (0) or NAND-style 1.
            // The format has no constants; synthesise from the first input
            // if one exists, else emit a self-contradictory comment.
            if aig.num_inputs() > 0 {
                let in0 = aig.input_name(0).to_string();
                if o.is_complement() {
                    body.push_str(&format!("{oname}_Z = AND({in0}, {in0})\n"));
                    body.push_str(&format!("{oname}_ZB = NOT({in0})\n"));
                    body.push_str(&format!("{oname}_T = NAND({oname}_Z, {oname}_ZB)\n"));
                    // (x AND x) NAND (NOT x) == NOT(x AND NOT x) == 1
                    body.push_str(&format!("{oname} = BUFF({oname}_T)\n"));
                } else {
                    body.push_str(&format!("{oname}_B = NOT({in0})\n"));
                    body.push_str(&format!("{oname} = AND({in0}, {oname}_B)\n"));
                }
            }
            continue;
        }
        require(*o, aig, &mut body, &mut emitted_not);
        let src = name_of(*o, aig);
        if src != oname {
            body.push_str(&format!("{oname} = BUFF({src})\n"));
        }
    }
    out.push_str(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny circuit
INPUT(A)
INPUT(B)
INPUT(C)
OUTPUT(Y)
T1 = NAND(A, B)
T2 = XOR(T1, C)
Y = NOT(T2)
";

    #[test]
    fn parse_and_evaluate() {
        let aig = parse_bench(SAMPLE).expect("parses");
        assert_eq!(aig.num_inputs(), 3);
        assert_eq!(aig.num_outputs(), 1);
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let t1 = !(a && b);
            let t2 = t1 ^ c;
            assert_eq!(aig.eval(&[a, b, c]), vec![!t2], "bits={bits}");
        }
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let text = "\
INPUT(A)
INPUT(B)
OUTPUT(Y)
Y = AND(T, B)
T = OR(A, B)
";
        let aig = parse_bench(text).expect("parses");
        assert_eq!(aig.eval(&[true, false]), vec![false]);
        assert_eq!(aig.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn dff_is_rejected() {
        let text = "INPUT(A)\nOUTPUT(Q)\nQ = DFF(A)\n";
        let err = parse_bench(text).expect_err("DFF must be rejected");
        assert!(err.to_string().contains("DFF"));
    }

    #[test]
    fn cycle_is_rejected() {
        let text = "INPUT(A)\nOUTPUT(X)\nX = AND(Y, A)\nY = AND(X, A)\n";
        assert!(parse_bench(text).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let aig = parse_bench(SAMPLE).expect("parses");
        let text = write_bench(&aig);
        let back = parse_bench(&text).expect("round-trips");
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        for bits in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 != 0).collect();
            assert_eq!(aig.eval(&ins), back.eval(&ins), "bits={bits}");
        }
    }

    #[test]
    fn multi_input_gates() {
        let text = "\
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(D)
OUTPUT(Y)
Y = NOR(A, B, C, D)
";
        let aig = parse_bench(text).expect("parses");
        assert_eq!(aig.eval(&[false, false, false, false]), vec![true]);
        assert_eq!(aig.eval(&[false, true, false, false]), vec![false]);
    }
}
