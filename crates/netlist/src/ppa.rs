//! Power/performance/area analysis of mapped netlists.
//!
//! - **Area**: sum of cell areas.
//! - **Delay**: static timing over the gate DAG; each gate contributes its
//!   intrinsic delay plus a load term proportional to its fanout count.
//! - **Power**: dynamic power from simulation-derived switching activity
//!   (activity × load capacitance per net) plus cell leakage.
//!
//! The absolute units are arbitrary-but-consistent; the paper's Table III
//! reports *relative* overheads, which is what these numbers feed.

use crate::cell::CellLibrary;
use crate::netlist::MappedNetlist;
use almost_aig::sim::SimVectors;
use almost_aig::Aig;

/// A PPA report for one mapped netlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PpaReport {
    /// Total cell area (µm²).
    pub area: f64,
    /// Critical-path delay (ns).
    pub delay: f64,
    /// Total power (arbitrary units: dynamic + leakage).
    pub power: f64,
}

impl PpaReport {
    /// Percentage overheads of `self` relative to `baseline`
    /// (`(self − base) / base × 100`), in (area, delay, power) order.
    pub fn overhead_vs(&self, baseline: &PpaReport) -> (f64, f64, f64) {
        let pct = |new: f64, base: f64| {
            if base.abs() < 1e-12 {
                0.0
            } else {
                (new - base) / base * 100.0
            }
        };
        (
            pct(self.area, baseline.area),
            pct(self.delay, baseline.delay),
            pct(self.power, baseline.power),
        )
    }
}

/// Analyses a mapped netlist.
///
/// `aig` must be the netlist's source AIG (used to derive per-net switching
/// activity via `sim_words * 64` random patterns with the given seed).
pub fn analyze(
    netlist: &MappedNetlist,
    aig: &Aig,
    library: &CellLibrary,
    sim_words: usize,
    seed: u64,
) -> PpaReport {
    let area: f64 = netlist
        .gates()
        .iter()
        .map(|g| library.cell(g.cell).area())
        .sum();

    // Static timing.
    let fanouts = netlist.net_fanouts();
    let mut arrival = vec![0.0f64; netlist.num_nets()];
    let mut delay = 0.0f64;
    for gate in netlist.gates() {
        let cell = library.cell(gate.cell);
        let input_arr = gate
            .fanins
            .iter()
            .map(|&f| arrival[f])
            .fold(0.0f64, f64::max);
        let t = input_arr + cell.delay() + cell.load_coeff() * fanouts[gate.output] as f64;
        arrival[gate.output] = t;
        delay = delay.max(t);
    }

    // Switching activity from AIG simulation; nets without an AIG origin
    // (tie cells) never toggle.
    let sim = SimVectors::random(aig, sim_words.max(1), seed);
    let mut dynamic = 0.0f64;
    let mut leakage = 0.0f64;
    for gate in netlist.gates() {
        let cell = library.cell(gate.cell);
        leakage += cell.leakage();
        let activity = netlist
            .net_origin(gate.output)
            .map(|(var, _)| sim.switching_activity(var))
            .unwrap_or(0.0);
        // Load on the output net: the input capacitance of all fanout pins
        // (approximated with the average input cap of driven cells).
        let load = fanouts[gate.output] as f64 * cell.input_cap();
        dynamic += activity * load;
    }
    // Primary-input nets also switch and drive loads.
    for &net in netlist.input_nets() {
        if let Some((var, _)) = netlist.net_origin(net) {
            dynamic += sim.switching_activity(var) * fanouts[net] as f64;
        }
    }

    PpaReport {
        area,
        delay,
        power: dynamic + 0.01 * leakage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::map::{map_aig, MapConfig};
    use almost_aig::Aig;

    fn adder_aig(bits: usize) -> Aig {
        let mut aig = Aig::new();
        let xs: Vec<_> = (0..bits).map(|_| aig.add_input()).collect();
        let ys: Vec<_> = (0..bits).map(|_| aig.add_input()).collect();
        let mut carry = almost_aig::Lit::FALSE;
        for i in 0..bits {
            let s1 = aig.xor(xs[i], ys[i]);
            let sum = aig.xor(s1, carry);
            let c1 = aig.and(xs[i], ys[i]);
            let c2 = aig.and(s1, carry);
            carry = aig.or(c1, c2);
            aig.add_output(sum);
        }
        aig.add_output(carry);
        aig
    }

    #[test]
    fn report_is_positive_and_scales() {
        let lib = CellLibrary::nangate45();
        let small = adder_aig(4);
        let large = adder_aig(16);
        let nl_s = map_aig(&small, &lib, &MapConfig::default());
        let nl_l = map_aig(&large, &lib, &MapConfig::default());
        let r_s = analyze(&nl_s, &small, &lib, 4, 1);
        let r_l = analyze(&nl_l, &large, &lib, 4, 1);
        assert!(r_s.area > 0.0 && r_s.delay > 0.0 && r_s.power > 0.0);
        assert!(r_l.area > r_s.area, "a 16-bit adder is bigger than 4-bit");
        assert!(
            r_l.delay > r_s.delay,
            "ripple carry grows the critical path"
        );
        assert!(r_l.power > r_s.power);
    }

    #[test]
    fn overhead_computation() {
        let base = PpaReport {
            area: 100.0,
            delay: 2.0,
            power: 50.0,
        };
        let new = PpaReport {
            area: 103.0,
            delay: 1.8,
            power: 55.0,
        };
        let (a, d, p) = new.overhead_vs(&base);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((d + 10.0).abs() < 1e-9);
        assert!((p - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_mapping_has_larger_delay() {
        let lib = CellLibrary::nangate45();
        // A chain of XORs (deep) vs a balanced tree of the same function
        // size.
        let mut chain = Aig::new();
        let ins: Vec<_> = (0..16).map(|_| chain.add_input()).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = chain.xor(acc, l);
        }
        chain.add_output(acc);
        let mut tree = Aig::new();
        let tins: Vec<_> = (0..16).map(|_| tree.add_input()).collect();
        let t = tree.xor_many(&tins);
        tree.add_output(t);
        let nl_chain = map_aig(&chain, &lib, &MapConfig::default());
        let nl_tree = map_aig(&tree, &lib, &MapConfig::default());
        let r_chain = analyze(&nl_chain, &chain, &lib, 2, 3);
        let r_tree = analyze(&nl_tree, &tree, &lib, 2, 3);
        assert!(
            r_chain.delay > r_tree.delay,
            "chain {} vs tree {}",
            r_chain.delay,
            r_tree.delay
        );
    }
}
