//! Logic locking schemes and key management.
//!
//! The ALMOST paper deliberately uses the *weakest* scheme — random logic
//! locking ([`Rll`], XOR/XNOR key gates with bubble pushing [EPIC, DATE'08])
//! — and shows that security-aware synthesis alone makes it ML-resilient.
//! This crate implements:
//!
//! - [`Rll`]: random XOR/XNOR key-gate insertion. Key bit 0 binds to an XOR
//!   key gate, key bit 1 to an XNOR, and bubble pushing (complement
//!   absorption in the AIG) obfuscates the binding exactly as in the paper.
//! - [`MuxLock`]: MUX-based locking (extension; the paper notes ALMOST
//!   "applies to other locking techniques").
//! - [`AntiSat`] / [`SarLock`]: SAT-attack-resilient point-function
//!   countermeasures (comparator trees keyed on the correct key) whose
//!   defence metric is *DIPs required*, not attack accuracy.
//! - [`Stacked`]: compound locks — a point function over RLL/MuxLock, the
//!   SARLock+SSL shape the Double-DIP attack was built to break.
//! - [`relock`]: the re-locking step of self-referencing attacks (insert
//!   additional key gates with *known* bits to manufacture training data).
//! - [`apply_key`]: specialise a locked circuit under a key (the oracle
//!   check used to validate locking correctness).
//! - [`Oracle`] / [`BatchOracle`] / [`CircuitOracle`]: the activated-IC
//!   black box of the oracle-guided threat model (SAT attacks query it for
//!   correct outputs), served by a compiled instruction-buffer backend
//!   ([`CompiledOracle`]) differential-tested against the node-walk
//!   reference ([`InterpretedOracle`]).
//!
//! # Example
//!
//! ```
//! use almost_circuits::IscasBenchmark;
//! use almost_locking::{LockingScheme, Rll, apply_key};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let aig = IscasBenchmark::C1355.build();
//! let locked = Rll::new(32).lock(&aig, &mut rng).expect("enough gates");
//! let unlocked = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
//! assert!(almost_aig::sim::probably_equivalent(&aig, &unlocked, 16, 7));
//! ```

pub mod anti_sat;
pub mod key;
pub mod mux_lock;
pub mod oracle;
mod point;
pub mod rll;
pub mod sar_lock;
pub mod scheme;
pub mod specialize;
pub mod stacked;

pub use anti_sat::AntiSat;
pub use key::Key;
pub use mux_lock::MuxLock;
pub use oracle::{BatchOracle, CircuitOracle, CompiledOracle, InterpretedOracle, Oracle};
pub use rll::Rll;
pub use sar_lock::SarLock;
pub use scheme::{relock, LockError, LockedCircuit, LockingScheme};
pub use specialize::apply_key;
pub use stacked::Stacked;
