//! Key specialisation: substitute constants for key inputs.

use almost_aig::{Aig, Lit, NodeKind};

/// Returns a copy of `locked` with the key inputs (input positions
/// `key_input_start ..` onward, `key.len()` of them) replaced by the given
/// constants. The key inputs are removed from the interface; constant
/// propagation happens for free through AIG construction rules.
///
/// This is the "oracle with the correct key" used to validate locking, and
/// the constant-propagation step of the SCOPE attack.
///
/// # Panics
///
/// Panics if the key range exceeds the circuit's inputs.
pub fn apply_key(locked: &Aig, key_input_start: usize, key: &[bool]) -> Aig {
    assert!(
        key_input_start + key.len() <= locked.num_inputs(),
        "key range out of bounds"
    );
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; locked.num_nodes()];
    for i in 0..locked.num_inputs() {
        let var = locked.inputs()[i];
        if i >= key_input_start && i < key_input_start + key.len() {
            map[var as usize] = if key[i - key_input_start] {
                Lit::TRUE
            } else {
                Lit::FALSE
            };
        } else {
            map[var as usize] = new.add_named_input(locked.input_name(i).to_string());
        }
    }
    for v in locked.iter_vars() {
        if let NodeKind::And(a, b) = locked.node(v) {
            let fa = map[a.var() as usize].xor_complement(a.is_complement());
            let fb = map[b.var() as usize].xor_complement(b.is_complement());
            map[v as usize] = new.and(fa, fb);
        }
    }
    for (i, out) in locked.outputs().iter().enumerate() {
        let lit = map[out.var() as usize].xor_complement(out.is_complement());
        new.add_named_output(lit, locked.output_name(i).to_string());
    }
    new.compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitutes_constants() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let k = aig.add_named_input("keyinput0");
        let f = aig.xor(a, k);
        aig.add_output(f);
        // k = 0: f == a.
        let zero = apply_key(&aig, 1, &[false]);
        assert_eq!(zero.num_inputs(), 1);
        assert_eq!(zero.eval(&[true]), vec![true]);
        assert_eq!(zero.eval(&[false]), vec![false]);
        // k = 1: f == !a.
        let one = apply_key(&aig, 1, &[true]);
        assert_eq!(one.eval(&[true]), vec![false]);
        assert_eq!(one.eval(&[false]), vec![true]);
    }

    #[test]
    fn partial_key_application() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let k0 = aig.add_named_input("keyinput0");
        let k1 = aig.add_named_input("keyinput1");
        let t = aig.xor(a, k0);
        let f = aig.xor(t, k1);
        aig.add_output(f);
        // Apply only k0 (position 1, length 1): k1 remains an input.
        let part = apply_key(&aig, 1, &[false]);
        assert_eq!(part.num_inputs(), 2);
        assert_eq!(part.eval(&[true, false]), vec![true]);
        assert_eq!(part.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn constant_propagation_shrinks_circuit() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let k = aig.add_named_input("keyinput0");
        // Redundant logic killed by k=0: f = a & k.
        let f = aig.and(a, k);
        aig.add_output(f);
        let zero = apply_key(&aig, 1, &[false]);
        assert_eq!(zero.num_ands(), 0, "a & 0 folds to constant 0");
        assert_eq!(zero.eval(&[true]), vec![false]);
    }
}
