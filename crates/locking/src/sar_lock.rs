//! SARLock: SAT-attack-resilient locking via a one-point flip function.
//!
//! SARLock [Yasin et al., HOST'16] compares `n` tapped inputs against the
//! `n` key inputs and flips one primary output when they match — masked by
//! a second comparator keyed on the *correct* key so the correct key never
//! flips anything:
//!
//! ```text
//! flip = (X_taps == K) ∧ (K != K*)
//! out  = out ⊕ flip
//! ```
//!
//! Every wrong key `K` corrupts exactly the tap pattern `X_taps = K`, so a
//! DIP of the oracle-guided SAT attack eliminates exactly *one* wrong key
//! and the attack needs `2^n − 1` DIPs — the exponential floor the
//! DIP-count regression tests assert. The flip column is one-hot per key,
//! which is also SARLock's weakness: the Double-DIP attack refuses to
//! spend queries on inputs where only a single key class errs, strips the
//! flip, and recovers whatever base scheme SARLock was stacked on (see
//! [`Stacked`](crate::Stacked) and `almost_attacks::DoubleDip`).

use crate::key::Key;
use crate::point::{tap_lits, xnor_compare, xnor_compare_signals};
use crate::scheme::{LockError, LockedCircuit, LockingScheme};
use almost_aig::Aig;
use rand::rngs::StdRng;
use rand::RngExt;

/// SARLock with an `n`-bit key compared against `n` tapped inputs.
#[derive(Clone, Copy, Debug)]
pub struct SarLock {
    key_size: usize,
}

impl SarLock {
    /// A SARLock locker with `key_size` key bits (DIP floor `2^k − 1`).
    pub fn new(key_size: usize) -> Self {
        SarLock { key_size }
    }

    /// The configured key size.
    pub fn key_size(&self) -> usize {
        self.key_size
    }
}

impl LockingScheme for SarLock {
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError> {
        let n = self.key_size;
        // The lockable sites of a point-function scheme are the tappable
        // inputs; the comparator needs n of them.
        if n == 0 || aig.num_inputs() < n || aig.num_outputs() == 0 {
            return Err(LockError::NotEnoughGates {
                available: aig.num_inputs(),
                requested: n,
            });
        }

        let mut new = aig.clone();
        let key = Key::random(n, rng);
        let key_lits: Vec<_> = (0..n)
            .map(|k| new.add_named_input(format!("keyinput{k}")))
            .collect();
        let taps = tap_lits(&new, n);

        // flip = (taps == K) ∧ (K != K*): the mask comparator hard-codes
        // the correct key, exactly like the shipped SARLock mask logic.
        let eq = xnor_compare_signals(&mut new, &taps, &key_lits);
        let k_is_correct = xnor_compare(&mut new, &key_lits, key.bits());
        let flip = new.and(eq, !k_is_correct);

        let out_idx = rng.random_range(0..new.num_outputs());
        let out_lit = new.outputs()[out_idx];
        let flipped = new.xor(out_lit, flip);
        new.set_output(out_idx, flipped);

        Ok(LockedCircuit {
            aig: new,
            key_input_start: aig.num_inputs(),
            key,
            locked_nodes: vec![aig.outputs()[out_idx].var()],
        })
    }

    fn name(&self) -> &'static str {
        "SARLock"
    }

    fn tap_width(&self) -> Option<usize> {
        Some(self.key_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::apply_key;
    use almost_circuits::IscasBenchmark;
    use rand::SeedableRng;

    #[test]
    fn correct_key_restores_function_proved_by_sat() {
        let mut rng = StdRng::seed_from_u64(41);
        let base = IscasBenchmark::C432.build();
        let locked = SarLock::new(8).lock(&base, &mut rng).expect("lockable");
        assert_eq!(locked.aig.num_inputs(), base.num_inputs() + 8);
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        assert_eq!(
            almost_sat::check_equivalence(&base, &restored),
            almost_sat::Equivalence::Equivalent
        );
    }

    #[test]
    fn wrong_key_errs_on_exactly_its_own_tap_pattern() {
        let mut rng = StdRng::seed_from_u64(42);
        let base = IscasBenchmark::C432.build();
        let locked = SarLock::new(4).lock(&base, &mut rng).expect("lockable");
        let mut wrong = locked.key.bits().to_vec();
        wrong[2] = !wrong[2];
        let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
        let m = base.num_inputs();
        for pat in 0..16u32 {
            let mut x = vec![false; m];
            for (i, bit) in x.iter_mut().enumerate().take(4) {
                *bit = pat >> i & 1 != 0;
            }
            let hits_wrong_key = (0..4).all(|i| (pat >> i & 1 != 0) == wrong[i]);
            assert_eq!(
                broken.eval(&x) != base.eval(&x),
                hits_wrong_key,
                "flip must fire exactly on taps == K (pat {pat})"
            );
        }
    }

    #[test]
    fn too_few_inputs_is_rejected() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.or(a, b);
        tiny.add_output(f);
        assert!(matches!(
            SarLock::new(3).lock(&tiny, &mut rng),
            Err(LockError::NotEnoughGates {
                available: 2,
                requested: 3
            })
        ));
    }
}
