//! Locking keys.

use rand::RngExt;
use std::fmt;

/// A locking key: an ordered vector of key bits.
///
/// # Example
///
/// ```
/// use almost_locking::Key;
/// let k = Key::from_bits(vec![true, false, true, true]);
/// assert_eq!(k.len(), 4);
/// assert_eq!(k.to_hex(), "d");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// Builds a key from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Key { bits }
    }

    /// Samples a uniformly random key of `len` bits.
    pub fn random(len: usize, rng: &mut (impl RngExt + ?Sized)) -> Self {
        Key {
            bits: (0..len).map(|_| rng.random_bool(0.5)).collect(),
        }
    }

    /// The key bits (bit `i` belongs to key input `i`).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Key size in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for a zero-length key.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Fraction of positions where `other` agrees with this key — the
    /// "attack accuracy" metric of the paper when `other` is a guess.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn agreement(&self, other: &Key) -> f64 {
        assert_eq!(self.len(), other.len(), "key sizes differ");
        if self.is_empty() {
            return 1.0;
        }
        let same = self
            .bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.len() as f64
    }

    /// Hex encoding, LSB-first nibbles (bit 0 is the LSB of the first
    /// nibble).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for chunk in self.bits.chunks(4) {
            let mut v = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                v |= (b as u8) << i;
            }
            s.push(char::from_digit(v as u32, 16).expect("nibble"));
        }
        s
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({} bits, 0x{})", self.len(), self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agreement_is_symmetric_and_bounded() {
        let a = Key::from_bits(vec![true, true, false, false]);
        let b = Key::from_bits(vec![true, false, false, true]);
        assert_eq!(a.agreement(&b), 0.5);
        assert_eq!(b.agreement(&a), 0.5);
        assert_eq!(a.agreement(&a), 1.0);
    }

    #[test]
    fn random_keys_are_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(Key::random(64, &mut r1), Key::random(64, &mut r2));
    }

    #[test]
    fn random_keys_are_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let k = Key::random(1024, &mut rng);
        let ones = k.bits().iter().filter(|&&b| b).count();
        assert!(ones > 400 && ones < 624, "ones = {ones}");
    }

    #[test]
    fn hex_roundtrip_examples() {
        let k = Key::from_bits(vec![false, true, false, true, true]);
        // First nibble: 1010 (LSB first) = 0xa; second: 1.
        assert_eq!(k.to_hex(), "a1");
    }
}
