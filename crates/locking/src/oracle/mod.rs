//! The activated-IC oracle of the oracle-guided threat model.
//!
//! Oracle-guided attacks (the SAT attack family) assume the attacker holds
//! a working, *activated* chip: a black box that maps functional inputs to
//! correct outputs, with the key baked in and invisible. [`Oracle`] models
//! that box; [`CircuitOracle`] is the standard instantiation — the locked
//! design specialised under the correct key via [`apply_key`], i.e. the
//! original function. Query counting is built in because oracle access is
//! the scarce resource the attack literature reports.
//!
//! ## Backends
//!
//! Two implementations answer queries:
//!
//! - [`InterpretedOracle`] walks the [`Aig`] node vector per pattern via
//!   [`Aig::eval`] — slow, obviously correct, the differential reference.
//! - [`CompiledOracle`] lowers the design once through
//!   [`almost_aig::compile::CompiledAig`] into a flat instruction buffer
//!   and serves 64 patterns per `u64` word.
//!
//! [`CircuitOracle`] is the production face: it compiles on construction
//! and falls back to the interpreter if compilation fails (oversized
//! netlists), so callers never see a compile error. [`BatchOracle`]
//! extends [`Oracle`] with the batch and word-level entry points; both
//! backends implement it with identical query-counter semantics, so
//! reported query budgets stay comparable across backends.

mod compiled;
mod interpreted;

pub use compiled::CompiledOracle;
pub use interpreted::InterpretedOracle;

use crate::scheme::LockedCircuit;
use crate::specialize::apply_key;
use almost_aig::compile::{pack_patterns, unpack_output_words, CompiledAig};
use almost_aig::{Aig, CompileError, CompileStats};
use std::cell::{Cell, RefCell};

/// A black-box activated chip: functional inputs in, correct outputs out.
pub trait Oracle {
    /// Number of functional inputs (key inputs do not exist here).
    fn num_inputs(&self) -> usize;

    /// Number of outputs.
    fn num_outputs(&self) -> usize;

    /// Evaluates the chip on one input pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != self.num_inputs()`.
    fn query(&self, pattern: &[bool]) -> Vec<bool>;

    /// Total number of input patterns served (a batch of `n` patterns
    /// counts `n`, so budgets are backend-independent).
    fn queries_served(&self) -> usize;
}

/// An [`Oracle`] that can answer many patterns per call.
///
/// The default methods route through [`Oracle::query`] pattern by
/// pattern — the reference semantics every backend must preserve: the
/// query counter advances by exactly the number of patterns answered
/// (64 per word on the word-level path), and outputs come back in
/// pattern order.
pub trait BatchOracle: Oracle {
    /// Evaluates a batch of patterns; returns one output vector per
    /// pattern, in order. An empty batch returns an empty vector and
    /// counts zero queries.
    ///
    /// # Panics
    ///
    /// Panics if any pattern's length differs from
    /// [`Oracle::num_inputs`].
    fn query_batch(&self, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
        patterns.iter().map(|p| self.query(p)).collect()
    }

    /// Word-level fast path: `input_words[i][w]` carries 64 patterns in
    /// the bits of word `w` of input `i`; the result is indexed
    /// `[output][word]` the same way. Counts `num_words * 64` queries.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is not `num_inputs() x num_words`.
    fn query_words(&self, input_words: &[Vec<u64>], num_words: usize) -> Vec<Vec<u64>> {
        assert_eq!(input_words.len(), self.num_inputs(), "input word shape");
        let patterns = unpack_output_words(num_words * 64, input_words);
        let outputs = self.query_batch(&patterns);
        pack_patterns(self.num_outputs(), &outputs)
    }
}

/// Compiles `design` for an oracle backend, reporting the compile to the
/// telemetry layer (when tracing) so harness traces show the one-shot
/// setup cost next to the queries it amortises over.
fn compile_for_oracle(design: &Aig) -> Result<CompiledAig, CompileError> {
    let t0 = std::time::Instant::now();
    let result = CompiledAig::compile(design);
    if let Ok(code) = &result {
        let stats = code.stats();
        let wall_us = t0.elapsed().as_micros() as u64;
        almost_telemetry::trace(|| almost_telemetry::EventKind::OracleCompile {
            ands: design.num_ands() as u64,
            instructions: stats.instructions as u64,
            registers: stats.registers as u64,
            dead_skipped: stats.dead_skipped as u64,
            wall_us,
        });
    }
    result
}

/// An [`Oracle`] backed by a combinational circuit.
///
/// Compiles the design to the batch backend on construction; if the
/// netlist cannot be compiled (it would overflow the packed operand
/// encoding) the oracle silently serves queries through the interpreter
/// instead — same answers, same counters, lower throughput.
///
/// # Example
///
/// ```
/// use almost_circuits::IscasBenchmark;
/// use almost_locking::{CircuitOracle, LockingScheme, Oracle, Rll};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let design = IscasBenchmark::C432.build();
/// let mut rng = StdRng::seed_from_u64(3);
/// let locked = Rll::new(8).lock(&design, &mut rng).expect("lockable");
/// let oracle = CircuitOracle::from_locked(&locked);
/// let pattern = vec![false; oracle.num_inputs()];
/// assert_eq!(oracle.query(&pattern), design.eval(&pattern));
/// assert_eq!(oracle.queries_served(), 1);
/// ```
pub struct CircuitOracle {
    design: Aig,
    backend: Backend,
    queries: Cell<usize>,
}

enum Backend {
    Compiled {
        code: CompiledAig,
        scratch: RefCell<Vec<u64>>,
    },
    Interpreted,
}

impl CircuitOracle {
    /// Wraps an already-unlocked design.
    pub fn new(design: Aig) -> Self {
        let backend = match compile_for_oracle(&design) {
            Ok(code) => {
                let scratch = RefCell::new(code.make_scratch());
                Backend::Compiled { code, scratch }
            }
            Err(_) => Backend::Interpreted,
        };
        CircuitOracle {
            design,
            backend,
            queries: Cell::new(0),
        }
    }

    /// Builds the oracle an attacker faces: the locked circuit specialised
    /// under its correct key (the activated chip's function).
    pub fn from_locked(locked: &LockedCircuit) -> Self {
        Self::new(apply_key(
            &locked.aig,
            locked.key_input_start,
            locked.key.bits(),
        ))
    }

    /// The underlying design (ground truth; attack *scoring* only — an
    /// attacker never sees this netlist, only query responses).
    pub fn design(&self) -> &Aig {
        &self.design
    }

    /// Whether queries are served by the compiled backend (false only
    /// for netlists too large to compile).
    pub fn is_compiled(&self) -> bool {
        matches!(self.backend, Backend::Compiled { .. })
    }

    /// Compile statistics, when the compiled backend is active.
    pub fn compile_stats(&self) -> Option<CompileStats> {
        match &self.backend {
            Backend::Compiled { code, .. } => Some(code.stats()),
            Backend::Interpreted => None,
        }
    }

    fn count(&self, n: usize) {
        self.queries.set(self.queries.get() + n);
    }
}

impl Oracle for CircuitOracle {
    fn num_inputs(&self) -> usize {
        self.design.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.design.num_outputs()
    }

    fn query(&self, pattern: &[bool]) -> Vec<bool> {
        self.count(1);
        match &self.backend {
            Backend::Compiled { code, scratch } => {
                code.eval_into(pattern, &mut scratch.borrow_mut())
            }
            Backend::Interpreted => self.design.eval(pattern),
        }
    }

    fn queries_served(&self) -> usize {
        self.queries.get()
    }
}

impl BatchOracle for CircuitOracle {
    fn query_batch(&self, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
        match &self.backend {
            Backend::Compiled { code, .. } => {
                self.count(patterns.len());
                code.eval_batch(patterns)
            }
            Backend::Interpreted => {
                // The counter advances inside the per-pattern queries.
                patterns.iter().map(|p| self.query(p)).collect()
            }
        }
    }

    fn query_words(&self, input_words: &[Vec<u64>], num_words: usize) -> Vec<Vec<u64>> {
        match &self.backend {
            Backend::Compiled { code, .. } => {
                self.count(num_words * 64);
                code.eval_words(input_words, num_words)
            }
            Backend::Interpreted => {
                assert_eq!(input_words.len(), self.num_inputs(), "input word shape");
                let patterns = unpack_output_words(num_words * 64, input_words);
                let outputs = self.query_batch(&patterns);
                pack_patterns(self.num_outputs(), &outputs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rll::Rll;
    use crate::scheme::LockingScheme;
    use almost_circuits::IscasBenchmark;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn oracle_answers_match_the_original_design() {
        let design = IscasBenchmark::C432.build();
        let mut rng = StdRng::seed_from_u64(17);
        let locked = Rll::new(16).lock(&design, &mut rng).expect("lockable");
        let oracle = CircuitOracle::from_locked(&locked);
        assert!(oracle.is_compiled());
        assert_eq!(oracle.num_inputs(), design.num_inputs());
        assert_eq!(oracle.num_outputs(), design.num_outputs());
        for i in 0..8u64 {
            let pattern: Vec<bool> = (0..design.num_inputs())
                .map(|b| (i.wrapping_mul(0x9E37_79B9) >> (b % 32)) & 1 != 0)
                .collect();
            assert_eq!(oracle.query(&pattern), design.eval(&pattern));
        }
        assert_eq!(oracle.queries_served(), 8);
    }

    #[test]
    fn query_counter_starts_at_zero() {
        let mut design = Aig::new();
        let a = design.add_input();
        design.add_output(a);
        let oracle = CircuitOracle::new(design);
        assert_eq!(oracle.queries_served(), 0);
        oracle.query(&[true]);
        oracle.query(&[false]);
        assert_eq!(oracle.queries_served(), 2);
    }

    #[test]
    fn all_three_backends_agree_with_identical_counters() {
        let design = IscasBenchmark::C432.build();
        let mut rng = StdRng::seed_from_u64(5);
        let locked = Rll::new(12).lock(&design, &mut rng).expect("lockable");
        let circuit = CircuitOracle::from_locked(&locked);
        let interpreted = InterpretedOracle::from_locked(&locked);
        let compiled = CompiledOracle::from_locked(&locked).expect("compiles");
        let n = design.num_inputs();
        let patterns: Vec<Vec<bool>> = (0..70)
            .map(|_| (0..n).map(|_| rng.random()).collect())
            .collect();
        let want = interpreted.query_batch(&patterns);
        assert_eq!(circuit.query_batch(&patterns), want);
        assert_eq!(compiled.query_batch(&patterns), want);
        for o in [
            &circuit as &dyn BatchOracle,
            &interpreted as &dyn BatchOracle,
            &compiled as &dyn BatchOracle,
        ] {
            assert_eq!(o.queries_served(), 70, "batch counts per pattern");
            assert!(o.query_batch(&[]).is_empty());
            assert_eq!(o.queries_served(), 70, "empty batch counts nothing");
        }
    }

    #[test]
    fn word_level_path_counts_sixty_four_per_word() {
        let design = IscasBenchmark::C432.build();
        let circuit = CircuitOracle::new(design.clone());
        let interpreted = InterpretedOracle::new(design.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let num_words = 3;
        let words: Vec<Vec<u64>> = (0..design.num_inputs())
            .map(|_| (0..num_words).map(|_| rng.random()).collect())
            .collect();
        assert_eq!(
            circuit.query_words(&words, num_words),
            interpreted.query_words(&words, num_words)
        );
        assert_eq!(circuit.queries_served(), 64 * num_words);
        assert_eq!(interpreted.queries_served(), 64 * num_words);
    }
}
