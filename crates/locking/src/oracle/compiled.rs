//! The compiled batch backend.

use super::{compile_for_oracle, BatchOracle, Oracle};
use crate::scheme::LockedCircuit;
use crate::specialize::apply_key;
use almost_aig::compile::CompiledAig;
use almost_aig::{Aig, CompileError, CompileStats};
use std::cell::{Cell, RefCell};

/// An [`Oracle`] serving queries from a
/// [`CompiledAig`] instruction buffer: the
/// netlist is lowered once at construction, then batches run 64 patterns
/// per `u64` word with no per-query allocation or node-graph traversal.
///
/// Most callers want [`super::CircuitOracle`], which wraps this backend
/// and degrades to the interpreter on compile failure; use
/// `CompiledOracle` directly when a silent fallback would mask the error
/// (differential tests, throughput harnesses).
pub struct CompiledOracle {
    design: Aig,
    code: CompiledAig,
    scratch: RefCell<Vec<u64>>,
    queries: Cell<usize>,
}

impl CompiledOracle {
    /// Compiles `design` into a batch oracle.
    pub fn new(design: Aig) -> Result<Self, CompileError> {
        let code = compile_for_oracle(&design)?;
        let scratch = RefCell::new(code.make_scratch());
        Ok(CompiledOracle {
            design,
            code,
            scratch,
            queries: Cell::new(0),
        })
    }

    /// Compiles the activated function of a locked circuit.
    pub fn from_locked(locked: &LockedCircuit) -> Result<Self, CompileError> {
        Self::new(apply_key(
            &locked.aig,
            locked.key_input_start,
            locked.key.bits(),
        ))
    }

    /// The underlying design.
    pub fn design(&self) -> &Aig {
        &self.design
    }

    /// What the compiler did (instruction count, dead nodes skipped…).
    pub fn compile_stats(&self) -> CompileStats {
        self.code.stats()
    }

    fn count(&self, n: usize) {
        self.queries.set(self.queries.get() + n);
    }
}

impl Oracle for CompiledOracle {
    fn num_inputs(&self) -> usize {
        self.design.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.design.num_outputs()
    }

    fn query(&self, pattern: &[bool]) -> Vec<bool> {
        self.count(1);
        self.code.eval_into(pattern, &mut self.scratch.borrow_mut())
    }

    fn queries_served(&self) -> usize {
        self.queries.get()
    }
}

impl BatchOracle for CompiledOracle {
    fn query_batch(&self, patterns: &[Vec<bool>]) -> Vec<Vec<bool>> {
        self.count(patterns.len());
        self.code.eval_batch(patterns)
    }

    fn query_words(&self, input_words: &[Vec<u64>], num_words: usize) -> Vec<Vec<u64>> {
        self.count(num_words * 64);
        self.code.eval_words(input_words, num_words)
    }
}
