//! The node-walk reference backend.

use super::{BatchOracle, Oracle};
use crate::scheme::LockedCircuit;
use crate::specialize::apply_key;
use almost_aig::Aig;
use std::cell::Cell;

/// An [`Oracle`] that interprets the [`Aig`] per pattern via
/// [`Aig::eval`] — the differential reference the compiled backend is
/// pinned against (`tests/oracle_parity.rs`), and the fallback
/// [`super::CircuitOracle`] uses for netlists too large to compile.
///
/// Its [`BatchOracle`] methods are the trait defaults: a batch is served
/// one scalar query at a time, defining the counter and ordering
/// semantics every other backend must reproduce.
pub struct InterpretedOracle {
    design: Aig,
    queries: Cell<usize>,
}

impl InterpretedOracle {
    /// Wraps an already-unlocked design.
    pub fn new(design: Aig) -> Self {
        InterpretedOracle {
            design,
            queries: Cell::new(0),
        }
    }

    /// Builds the reference oracle for a locked circuit under its
    /// correct key.
    pub fn from_locked(locked: &LockedCircuit) -> Self {
        Self::new(apply_key(
            &locked.aig,
            locked.key_input_start,
            locked.key.bits(),
        ))
    }

    /// The underlying design.
    pub fn design(&self) -> &Aig {
        &self.design
    }
}

impl Oracle for InterpretedOracle {
    fn num_inputs(&self) -> usize {
        self.design.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.design.num_outputs()
    }

    fn query(&self, pattern: &[bool]) -> Vec<bool> {
        self.queries.set(self.queries.get() + 1);
        self.design.eval(pattern)
    }

    fn queries_served(&self) -> usize {
        self.queries.get()
    }
}

impl BatchOracle for InterpretedOracle {}
