//! Anti-SAT: a SAT-attack-resilient point-function countermeasure.
//!
//! Anti-SAT [Xie & Srivastava, CHES'16] appends two complementary
//! comparator blocks over the same `n` tapped inputs, each keyed with its
//! own `n`-bit half: `Y = g(X ⊕ Kl1) ∧ ¬g(X ⊕ Kl2)` with `g = AND`. When
//! the two key halves are equal the blocks cancel and `Y ≡ 0`; any key
//! with `Kl1 ≠ Kl2` raises `Y` on *exactly one* tap pattern
//! (`X = ¬Kl1`), which is XORed into a primary output.
//!
//! Because each wrong key corrupts a single tap pattern, one
//! distinguishing input pattern (DIP) of the oracle-guided SAT attack
//! eliminates only the keys flipping at that pattern — the `2^n` groups
//! `{Kl1 = c}` must *all* be ruled out before the miter goes UNSAT, so the
//! attack needs at least `2^n` DIPs regardless of solver strength. The
//! trade-off the literature reports (and this workspace's DIP-floor
//! regression tests pin down) is that the protection is output-corruption
//! starved: an approximate attacker who tolerates one wrong tap pattern is
//! already done, which is what the Double-DIP attack exploits.
//!
//! The scheme composes with structural schemes via
//! [`Stacked`](crate::Stacked) (e.g. Anti-SAT over RLL), so PPA and
//! oracle-less attack rows still apply to the compound lock.

use crate::key::Key;
use crate::point::tap_lits;
use crate::scheme::{LockError, LockedCircuit, LockingScheme};
use almost_aig::Aig;
use rand::rngs::StdRng;
use rand::RngExt;

/// Anti-SAT locking with an `n`-input point-function block.
///
/// The inserted key is `2n` bits wide: halves `Kl1 = keyinput0..n` and
/// `Kl2 = keyinputn..2n`. The correct key has `Kl1 = Kl2` (a uniformly
/// random value), and the security parameter — the DIP-count floor `2^n`
/// — is set by the *block width* `n`, not the total key length.
#[derive(Clone, Copy, Debug)]
pub struct AntiSat {
    block_width: usize,
}

impl AntiSat {
    /// An Anti-SAT locker with an `n`-input block (`2n` key bits).
    pub fn new(block_width: usize) -> Self {
        AntiSat { block_width }
    }

    /// The point-function width `n` (DIP floor is `2^n`).
    pub fn block_width(&self) -> usize {
        self.block_width
    }

    /// Total key bits inserted (`2n`).
    pub fn key_size(&self) -> usize {
        2 * self.block_width
    }
}

impl LockingScheme for AntiSat {
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError> {
        let n = self.block_width;
        // The lockable sites of a point-function scheme are the tappable
        // inputs; the block needs n of them (and a circuit to protect).
        if n == 0 || aig.num_inputs() < n || aig.num_outputs() == 0 {
            return Err(LockError::NotEnoughGates {
                available: aig.num_inputs(),
                requested: n,
            });
        }

        let mut new = aig.clone();
        let secret = Key::random(n, rng);
        let kl1: Vec<_> = (0..n)
            .map(|k| new.add_named_input(format!("keyinput{k}")))
            .collect();
        let kl2: Vec<_> = (0..n)
            .map(|k| new.add_named_input(format!("keyinput{}", n + k)))
            .collect();
        let taps = tap_lits(&new, n);

        // g(X ⊕ Kl1) with g = AND: one only on the single pattern X = ¬Kl1.
        let v: Vec<_> = taps
            .iter()
            .zip(&kl1)
            .map(|(&x, &k)| new.xor(x, k))
            .collect();
        let w: Vec<_> = taps
            .iter()
            .zip(&kl2)
            .map(|(&x, &k)| new.xor(x, k))
            .collect();
        let g1 = new.and_many(&v);
        let g2 = new.and_many(&w);
        let y = new.and(g1, !g2);

        // Inject into a primary output so every raised Y is observable —
        // the DIP floor below depends on it.
        let out_idx = rng.random_range(0..new.num_outputs());
        let out_lit = new.outputs()[out_idx];
        let flipped = new.xor(out_lit, y);
        new.set_output(out_idx, flipped);
        let locked_nodes = vec![aig.outputs()[out_idx].var()];

        // Correct key: Kl1 = Kl2 = secret (both halves equal).
        let mut bits = secret.bits().to_vec();
        bits.extend_from_slice(secret.bits());
        Ok(LockedCircuit {
            aig: new,
            key_input_start: aig.num_inputs(),
            key: Key::from_bits(bits),
            locked_nodes,
        })
    }

    fn name(&self) -> &'static str {
        "Anti-SAT"
    }

    fn tap_width(&self) -> Option<usize> {
        Some(self.block_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::xnor_compare;
    use crate::specialize::apply_key;
    use almost_circuits::IscasBenchmark;
    use rand::SeedableRng;

    #[test]
    fn correct_key_restores_function_proved_by_sat() {
        let mut rng = StdRng::seed_from_u64(31);
        let base = IscasBenchmark::C432.build();
        let locked = AntiSat::new(6).lock(&base, &mut rng).expect("lockable");
        assert_eq!(locked.key_size(), 12);
        assert_eq!(locked.aig.num_inputs(), base.num_inputs() + 12);
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        assert_eq!(
            almost_sat::check_equivalence(&base, &restored),
            almost_sat::Equivalence::Equivalent
        );
    }

    #[test]
    fn key_halves_are_equal_and_secret_is_random() {
        let mut rng = StdRng::seed_from_u64(32);
        let base = IscasBenchmark::C432.build();
        let locked = AntiSat::new(8).lock(&base, &mut rng).expect("lockable");
        let bits = locked.key.bits();
        assert_eq!(&bits[..8], &bits[8..], "correct key has Kl1 = Kl2");
        let again = AntiSat::new(8)
            .lock(&base, &mut StdRng::seed_from_u64(33))
            .expect("lockable");
        assert_ne!(locked.key, again.key, "secret varies with the seed");
    }

    #[test]
    fn mismatched_halves_flip_exactly_the_point_pattern() {
        let mut rng = StdRng::seed_from_u64(34);
        let base = IscasBenchmark::C432.build();
        let locked = AntiSat::new(4).lock(&base, &mut rng).expect("lockable");
        // Flip one bit of Kl2: Y rises exactly on taps == ¬Kl1.
        let mut wrong = locked.key.bits().to_vec();
        wrong[5] = !wrong[5];
        let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
        let m = base.num_inputs();
        let mut flips = 0usize;
        for pat in 0..16u32 {
            let mut x = vec![false; m];
            for (i, bit) in x.iter_mut().enumerate().take(4) {
                *bit = pat >> i & 1 != 0;
            }
            if broken.eval(&x) != base.eval(&x) {
                flips += 1;
            }
        }
        assert_eq!(flips, 1, "Anti-SAT corrupts a single tap pattern");
    }

    #[test]
    fn too_few_inputs_is_rejected() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.and(a, b);
        tiny.add_output(f);
        let err = AntiSat::new(8)
            .lock(&tiny, &mut rng)
            .expect_err("too small");
        assert!(matches!(
            err,
            LockError::NotEnoughGates {
                available: 2,
                requested: 8
            }
        ));
    }

    #[test]
    fn xnor_compare_helper_is_exercised() {
        // Keep the shared point-function helper covered from this module
        // too (SARLock is its main consumer).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let eq = xnor_compare(&mut aig, &[a, b], &[true, false]);
        aig.add_output(eq);
        assert_eq!(aig.eval(&[true, false]), vec![true]);
        assert_eq!(aig.eval(&[true, true]), vec![false]);
    }
}
