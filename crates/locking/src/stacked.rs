//! Stacking a SAT-resilient point function on top of a structural scheme.
//!
//! The literature's compound locks (SARLock+SSL, Anti-SAT over RLL) pair a
//! high-corruption base scheme with a low-corruption SAT-resilient overlay:
//! the base hides functionality from approximate attackers, the overlay
//! forces the exact SAT attack into exponentially many DIPs. [`Stacked`]
//! builds exactly that: `base.lock` first, then the overlay on the result,
//! with the two key vectors merged into one contiguous key-input block so
//! every existing attack, oracle and PPA harness sees an ordinary
//! [`LockedCircuit`].

use crate::scheme::{LockError, LockedCircuit, LockingScheme};
use almost_aig::Aig;
use rand::rngs::StdRng;

/// A compound scheme: `overlay` locked on top of `base`'s output netlist.
///
/// The combined key is `base.key ++ overlay.key`; key inputs stay
/// contiguous (base keys first, overlay keys renamed to follow) and
/// `locked_nodes` concatenates both generations (base entries in the
/// original numbering, overlay entries in the base-locked numbering).
///
/// # Example
///
/// ```
/// use almost_circuits::IscasBenchmark;
/// use almost_locking::{apply_key, LockingScheme, Rll, SarLock, Stacked};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let aig = IscasBenchmark::C432.build();
/// let scheme = Stacked::new(Rll::new(8), SarLock::new(6));
/// let locked = scheme.lock(&aig, &mut rng).expect("lockable");
/// assert_eq!(locked.key_size(), 14);
/// let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
/// assert!(almost_aig::sim::probably_equivalent(&aig, &restored, 16, 1));
/// ```
#[derive(Clone, Debug)]
pub struct Stacked<B, O> {
    base: B,
    overlay: O,
    name: &'static str,
}

/// Returns a `'static` copy of `name`, leaking each *distinct* name at
/// most once (the [`LockingScheme::name`] contract wants `&'static str`,
/// and harnesses construct compound schemes in loops).
fn interned_name(name: String) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static NAMES: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = NAMES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("name interner poisoned");
    if let Some(&interned) = map.get(&name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

impl<B: LockingScheme, O: LockingScheme> Stacked<B, O> {
    /// Stacks `overlay` on top of `base`.
    pub fn new(base: B, overlay: O) -> Self {
        let name = interned_name(format!("{}+{}", overlay.name(), base.name()));
        Stacked {
            base,
            overlay,
            name,
        }
    }
}

impl<B: LockingScheme, O: LockingScheme> LockingScheme for Stacked<B, O> {
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError> {
        // A point-function overlay taps the circuit's leading inputs; in a
        // stack those must all be *functional* inputs of the original
        // circuit, never the base scheme's key inputs (tapping a key input
        // would make the flip condition key-vs-key and void the
        // one-point-corruption guarantee behind the DIP floor).
        if let Some(taps) = self.overlay.tap_width() {
            if taps > aig.num_inputs() {
                return Err(LockError::NotEnoughGates {
                    available: aig.num_inputs(),
                    requested: taps,
                });
            }
        }
        let first = self.base.lock(aig, rng)?;
        let second = self.overlay.lock(&first.aig, rng)?;
        let base_keys = first.key_size();

        // The overlay appended its key inputs after the base's, so the
        // combined key block is contiguous from the base's start; only the
        // overlay's key-input names need shifting.
        debug_assert_eq!(second.key_input_start, first.aig.num_inputs());
        let overlay_keys = second.key_size();
        let overlay_start = second.key_input_start;
        let mut merged = second.aig;
        for i in 0..overlay_keys {
            merged.set_input_name(overlay_start + i, format!("keyinput{}", base_keys + i));
        }

        let mut bits = first.key.bits().to_vec();
        bits.extend_from_slice(second.key.bits());
        let mut locked_nodes = first.locked_nodes;
        locked_nodes.extend_from_slice(&second.locked_nodes);
        Ok(LockedCircuit {
            aig: merged,
            key_input_start: first.key_input_start,
            key: crate::Key::from_bits(bits),
            locked_nodes,
        })
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn tap_width(&self) -> Option<usize> {
        // Both layers tap leading inputs of circuits whose functional
        // inputs come first, so the stack's requirement is the wider one.
        match (self.base.tap_width(), self.overlay.tap_width()) {
            (a, None) => a,
            (None, b) => b,
            (Some(a), Some(b)) => Some(a.max(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::apply_key;
    use crate::{AntiSat, MuxLock, Rll, SarLock};
    use almost_circuits::IscasBenchmark;
    use rand::SeedableRng;

    #[test]
    fn sarlock_over_rll_has_contiguous_named_keys() {
        let mut rng = StdRng::seed_from_u64(51);
        let base = IscasBenchmark::C432.build();
        let scheme = Stacked::new(Rll::new(8), SarLock::new(6));
        assert_eq!(scheme.name(), "SARLock+RLL");
        let locked = scheme.lock(&base, &mut rng).expect("lockable");
        assert_eq!(locked.key_size(), 14);
        assert_eq!(locked.key_input_start, base.num_inputs());
        for (k, pos) in locked.key_input_positions().enumerate() {
            assert_eq!(locked.aig.input_name(pos), format!("keyinput{k}"));
        }
        assert_eq!(locked.locked_nodes.len(), 8 + 1);
    }

    #[test]
    fn compound_correct_key_restores_function_proved_by_sat() {
        let mut rng = StdRng::seed_from_u64(52);
        let base = IscasBenchmark::C880.build();
        for locked in [
            Stacked::new(Rll::new(12), SarLock::new(5))
                .lock(&base, &mut rng)
                .expect("lockable"),
            Stacked::new(MuxLock::new(8), AntiSat::new(4))
                .lock(&base, &mut rng)
                .expect("lockable"),
        ] {
            let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
            assert_eq!(
                almost_sat::check_equivalence(&base, &restored),
                almost_sat::Equivalence::Equivalent
            );
        }
    }

    #[test]
    fn overlay_may_not_tap_base_key_inputs() {
        // c17-shaped circuit: 5 functional inputs. After RLL adds 2 key
        // inputs the base-locked circuit has 7, so SarLock::new(6) *would*
        // pass its own input check while tapping key inputs 5-6 — the
        // stack must refuse instead.
        let mut rng = StdRng::seed_from_u64(54);
        let mut small = Aig::new();
        let ins: Vec<_> = (0..5).map(|_| small.add_input()).collect();
        let mut acc = small.and(ins[0], ins[1]);
        for &i in &ins[2..] {
            acc = small.and(acc, i);
            let o = small.or(acc, i);
            small.add_output(o);
        }
        let err = Stacked::new(Rll::new(2), SarLock::new(6))
            .lock(&small, &mut rng)
            .expect_err("6 taps cannot fit 5 functional inputs");
        assert_eq!(
            err,
            LockError::NotEnoughGates {
                available: 5,
                requested: 6
            }
        );
        // The same widths fit when the point function is narrow enough.
        assert!(Stacked::new(Rll::new(2), SarLock::new(5))
            .lock(&small, &mut rng)
            .is_ok());
        // tap_width propagates through nested stacks.
        let nested = Stacked::new(Stacked::new(Rll::new(2), SarLock::new(3)), AntiSat::new(4));
        assert_eq!(nested.tap_width(), Some(4));
    }

    #[test]
    fn names_are_interned_not_reaccumulated() {
        let a = Stacked::new(Rll::new(2), SarLock::new(2));
        let b = Stacked::new(Rll::new(4), SarLock::new(8));
        assert!(
            std::ptr::eq(a.name(), b.name()),
            "one allocation per distinct name"
        );
    }

    #[test]
    fn base_failure_propagates() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.and(a, b);
        tiny.add_output(f);
        let err = Stacked::new(Rll::new(64), SarLock::new(2))
            .lock(&tiny, &mut rng)
            .expect_err("base cannot absorb 64 gates");
        assert!(matches!(
            err,
            LockError::NotEnoughGates { requested: 64, .. }
        ));
    }
}
