//! MUX-based logic locking (extension).
//!
//! Each key bit drives a 2:1 multiplexer selecting between the true signal
//! and a decoy signal picked elsewhere in the circuit. With the correct key
//! the MUX forwards the true signal. The paper's conclusion notes ALMOST
//! "applies to other locking techniques"; this scheme is provided to
//! exercise that claim in the test suite and examples.

use crate::key::Key;
use crate::scheme::{LockError, LockedCircuit, LockingScheme};
use almost_aig::{Aig, Lit, NodeKind, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// MUX-based locking.
#[derive(Clone, Copy, Debug)]
pub struct MuxLock {
    key_size: usize,
}

impl MuxLock {
    /// A MUX locker inserting `key_size` key-controlled multiplexers.
    pub fn new(key_size: usize) -> Self {
        MuxLock { key_size }
    }

    /// The configured key size.
    pub fn key_size(&self) -> usize {
        self.key_size
    }
}

impl LockingScheme for MuxLock {
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError> {
        let candidates: Vec<Var> = aig.iter_ands().collect();
        // Need a site and a distinct decoy for each key gate.
        if candidates.len() < self.key_size + 1 {
            return Err(LockError::NotEnoughGates {
                available: candidates.len().saturating_sub(1),
                requested: self.key_size,
            });
        }
        let mut sites = candidates.clone();
        sites.shuffle(rng);
        sites.truncate(self.key_size);
        sites.sort_unstable();
        let key = Key::random(self.key_size, rng);

        let mut new = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
        for i in 0..aig.num_inputs() {
            map[aig.inputs()[i] as usize] = new.add_named_input(aig.input_name(i).to_string());
        }
        let key_input_start = new.num_inputs();
        let key_lits: Vec<Lit> = (0..self.key_size)
            .map(|k| new.add_named_input(format!("keyinput{k}")))
            .collect();

        let mut site_pos = 0usize;
        for v in aig.iter_vars() {
            if let NodeKind::And(a, b) = aig.node(v) {
                let fa = map[a.var() as usize].xor_complement(a.is_complement());
                let fb = map[b.var() as usize].xor_complement(b.is_complement());
                let mut lit = new.and(fa, fb);
                if site_pos < sites.len() && sites[site_pos] == v {
                    // Decoy: any earlier node (strictly before v keeps the
                    // graph acyclic); fall back to the complement if v is
                    // the first AND node.
                    let eligible: Vec<Var> =
                        candidates.iter().copied().filter(|&d| d < v).collect();
                    let decoy_src = if eligible.is_empty() {
                        !lit
                    } else {
                        map[eligible[rng.random_range(0..eligible.len())] as usize]
                    };
                    let k = key_lits[site_pos];
                    // Correct bit selects the true signal.
                    lit = if key.bits()[site_pos] {
                        new.mux(k, lit, decoy_src)
                    } else {
                        new.mux(k, decoy_src, lit)
                    };
                    site_pos += 1;
                }
                map[v as usize] = lit;
            }
        }
        for (i, out) in aig.outputs().iter().enumerate() {
            let lit = map[out.var() as usize].xor_complement(out.is_complement());
            new.add_named_output(lit, aig.output_name(i).to_string());
        }

        Ok(LockedCircuit {
            aig: new,
            key_input_start,
            key,
            locked_nodes: sites,
        })
    }

    fn name(&self) -> &'static str {
        "MUX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::apply_key;
    use almost_aig::sim::probably_equivalent;
    use almost_circuits::IscasBenchmark;
    use rand::SeedableRng;

    #[test]
    fn correct_key_restores_function() {
        let mut rng = StdRng::seed_from_u64(21);
        let base = IscasBenchmark::C880.build();
        let locked = MuxLock::new(24).lock(&base, &mut rng).expect("lockable");
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        assert!(probably_equivalent(&base, &restored, 16, 3));
    }

    #[test]
    fn flipped_key_usually_breaks_function() {
        let mut rng = StdRng::seed_from_u64(22);
        let base = IscasBenchmark::C880.build();
        let locked = MuxLock::new(24).lock(&base, &mut rng).expect("lockable");
        let wrong: Vec<bool> = locked.key.bits().iter().map(|b| !b).collect();
        let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
        assert!(!probably_equivalent(&base, &broken, 16, 3));
    }

    #[test]
    fn rejects_tiny_circuits() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.and(a, b);
        tiny.add_output(f);
        assert!(MuxLock::new(4).lock(&tiny, &mut rng).is_err());
    }
}
