//! The activated-IC oracle of the oracle-guided threat model.
//!
//! Oracle-guided attacks (the SAT attack family) assume the attacker holds
//! a working, *activated* chip: a black box that maps functional inputs to
//! correct outputs, with the key baked in and invisible. [`Oracle`] models
//! that box; [`CircuitOracle`] is the standard instantiation — the locked
//! design specialised under the correct key via [`apply_key`], i.e. the
//! original function. Query counting is built in because oracle access is
//! the scarce resource the attack literature reports.

use crate::scheme::LockedCircuit;
use crate::specialize::apply_key;
use almost_aig::Aig;
use std::cell::Cell;

/// A black-box activated chip: functional inputs in, correct outputs out.
pub trait Oracle {
    /// Number of functional inputs (key inputs do not exist here).
    fn num_inputs(&self) -> usize;

    /// Number of outputs.
    fn num_outputs(&self) -> usize;

    /// Evaluates the chip on one input pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != self.num_inputs()`.
    fn query(&self, pattern: &[bool]) -> Vec<bool>;

    /// Total number of [`Oracle::query`] calls served.
    fn queries_served(&self) -> usize;
}

/// An [`Oracle`] backed by a combinational circuit.
///
/// # Example
///
/// ```
/// use almost_circuits::IscasBenchmark;
/// use almost_locking::{CircuitOracle, LockingScheme, Oracle, Rll};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let design = IscasBenchmark::C432.build();
/// let mut rng = StdRng::seed_from_u64(3);
/// let locked = Rll::new(8).lock(&design, &mut rng).expect("lockable");
/// let oracle = CircuitOracle::from_locked(&locked);
/// let pattern = vec![false; oracle.num_inputs()];
/// assert_eq!(oracle.query(&pattern), design.eval(&pattern));
/// assert_eq!(oracle.queries_served(), 1);
/// ```
pub struct CircuitOracle {
    design: Aig,
    queries: Cell<usize>,
}

impl CircuitOracle {
    /// Wraps an already-unlocked design.
    pub fn new(design: Aig) -> Self {
        CircuitOracle {
            design,
            queries: Cell::new(0),
        }
    }

    /// Builds the oracle an attacker faces: the locked circuit specialised
    /// under its correct key (the activated chip's function).
    pub fn from_locked(locked: &LockedCircuit) -> Self {
        Self::new(apply_key(
            &locked.aig,
            locked.key_input_start,
            locked.key.bits(),
        ))
    }

    /// The underlying design (ground truth; attack *scoring* only — an
    /// attacker never sees this netlist, only query responses).
    pub fn design(&self) -> &Aig {
        &self.design
    }
}

impl Oracle for CircuitOracle {
    fn num_inputs(&self) -> usize {
        self.design.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.design.num_outputs()
    }

    fn query(&self, pattern: &[bool]) -> Vec<bool> {
        self.queries.set(self.queries.get() + 1);
        self.design.eval(pattern)
    }

    fn queries_served(&self) -> usize {
        self.queries.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rll::Rll;
    use crate::scheme::LockingScheme;
    use almost_circuits::IscasBenchmark;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_answers_match_the_original_design() {
        let design = IscasBenchmark::C432.build();
        let mut rng = StdRng::seed_from_u64(17);
        let locked = Rll::new(16).lock(&design, &mut rng).expect("lockable");
        let oracle = CircuitOracle::from_locked(&locked);
        assert_eq!(oracle.num_inputs(), design.num_inputs());
        assert_eq!(oracle.num_outputs(), design.num_outputs());
        for i in 0..8u64 {
            let pattern: Vec<bool> = (0..design.num_inputs())
                .map(|b| (i.wrapping_mul(0x9E37_79B9) >> (b % 32)) & 1 != 0)
                .collect();
            assert_eq!(oracle.query(&pattern), design.eval(&pattern));
        }
        assert_eq!(oracle.queries_served(), 8);
    }

    #[test]
    fn query_counter_starts_at_zero() {
        let mut design = Aig::new();
        let a = design.add_input();
        design.add_output(a);
        let oracle = CircuitOracle::new(design);
        assert_eq!(oracle.queries_served(), 0);
        oracle.query(&[true]);
        oracle.query(&[false]);
        assert_eq!(oracle.queries_served(), 2);
    }
}
