//! The locking-scheme abstraction, locked-circuit metadata and re-locking.

use crate::key::Key;
use almost_aig::{Aig, Var};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// Error returned when a circuit cannot be locked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The circuit has fewer lockable sites than the requested key size.
    NotEnoughGates {
        /// Lockable sites available.
        available: usize,
        /// Key bits requested.
        requested: usize,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotEnoughGates {
                available,
                requested,
            } => write!(
                f,
                "circuit has only {available} lockable gates for a {requested}-bit key"
            ),
        }
    }
}

impl std::error::Error for LockError {}

/// A locked circuit plus its ground truth.
#[derive(Clone, Debug)]
pub struct LockedCircuit {
    /// The locked AIG. Key inputs are appended after the functional inputs
    /// and named `keyinput<k>`.
    pub aig: Aig,
    /// Index (into the AIG's input list) of the first key input.
    pub key_input_start: usize,
    /// The correct key.
    pub key: Key,
    /// For each key bit, the AIG node that was locked (in the *original*
    /// circuit's node numbering at lock time; synthesis invalidates these,
    /// key-input positions do not).
    pub locked_nodes: Vec<Var>,
}

impl LockedCircuit {
    /// Number of key bits.
    pub fn key_size(&self) -> usize {
        self.key.len()
    }

    /// Input positions of the key inputs.
    pub fn key_input_positions(&self) -> std::ops::Range<usize> {
        self.key_input_start..self.key_input_start + self.key.len()
    }

    /// The AIG node indices of the key-input nodes themselves (stable
    /// through synthesis in input order, though node ids change).
    pub fn key_input_vars(&self) -> Vec<Var> {
        self.key_input_positions()
            .map(|i| self.aig.inputs()[i])
            .collect()
    }

    /// Re-derives key-input vars after the AIG field has been replaced by a
    /// synthesised version (input order is preserved by all passes).
    pub fn with_aig(mut self, aig: Aig) -> Self {
        assert_eq!(
            aig.num_inputs(),
            self.aig.num_inputs(),
            "synthesis must preserve the input interface"
        );
        self.aig = aig;
        self
    }
}

/// A logic-locking scheme.
pub trait LockingScheme {
    /// Locks `aig`, inserting this scheme's key gates.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::NotEnoughGates`] if the circuit is too small
    /// for the configured key size.
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError>;

    /// The scheme's display name.
    fn name(&self) -> &'static str;

    /// How many of the circuit's *leading* inputs the scheme taps
    /// (point-function schemes compare them against the key), or `None`
    /// for schemes that lock internal gates only.
    ///
    /// Composition uses this to refuse stacks whose point function would
    /// silently tap another scheme's key inputs — which would void the
    /// one-point-corruption guarantee and the DIP floor.
    fn tap_width(&self) -> Option<usize> {
        None
    }
}

/// Re-locks an already locked circuit with `additional` fresh key gates —
/// the data-generation step of self-referencing attacks (SAIL, SnapShot,
/// OMLA): the attacker knows the *new* bits and trains on their localities.
///
/// The previous key inputs are treated as ordinary inputs; the returned
/// [`LockedCircuit`] describes only the newly inserted key gates.
///
/// # Errors
///
/// Propagates [`LockError`] from the underlying scheme.
pub fn relock(
    scheme: &dyn LockingScheme,
    locked: &Aig,
    rng: &mut StdRng,
) -> Result<LockedCircuit, LockError> {
    let _ = rng.random::<u64>(); // decouple the stream from the caller's
    scheme.lock(locked, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rll::Rll;
    use rand::SeedableRng;

    #[test]
    fn lock_error_displays() {
        let e = LockError::NotEnoughGates {
            available: 3,
            requested: 64,
        };
        assert!(e.to_string().contains("64-bit"));
    }

    #[test]
    fn relock_adds_fresh_key_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = almost_circuits::IscasBenchmark::C1355.build();
        let first = Rll::new(16).lock(&base, &mut rng).expect("lockable");
        let second = relock(&Rll::new(8), &first.aig, &mut rng).expect("relockable");
        assert_eq!(
            second.aig.num_inputs(),
            base.num_inputs() + 16 + 8,
            "both key generations present"
        );
        assert_eq!(second.key_input_start, base.num_inputs() + 16);
        assert_eq!(second.key_size(), 8);
    }
}
