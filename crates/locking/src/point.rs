//! Shared comparator-tree plumbing for point-function schemes
//! ([`AntiSat`](crate::AntiSat), [`SarLock`](crate::SarLock)).

use almost_aig::{Aig, Lit};

/// Literals of the first `n` primary inputs — the tap set of the
/// point-function schemes.
///
/// Functional inputs occupy the low positions in every locked circuit this
/// workspace produces (schemes append their key inputs), so tapping from
/// the front keeps stacked point functions keyed on *functional* inputs.
pub(crate) fn tap_lits(aig: &Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|i| Lit::positive(aig.inputs()[i])).collect()
}

/// Comparator tree `AND_i (sig_i XNOR const_i)` — one exactly on the single
/// pattern where the signals spell `constants`.
pub(crate) fn xnor_compare(aig: &mut Aig, signals: &[Lit], constants: &[bool]) -> Lit {
    let bits: Vec<Lit> = signals
        .iter()
        .zip(constants)
        .map(|(&s, &c)| if c { s } else { !s })
        .collect();
    aig.and_many(&bits)
}

/// Comparator tree `AND_i (a_i XNOR b_i)` over two signal vectors.
pub(crate) fn xnor_compare_signals(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| !aig.xor(x, y)).collect();
    aig.and_many(&bits)
}
