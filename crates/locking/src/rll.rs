//! Random logic locking (RLL) with XOR/XNOR key gates and bubble pushing.
//!
//! RLL [EPIC, DATE'08] inserts a key gate on a randomly chosen internal
//! signal: key bit 0 → XOR (pass-through when `k = 0`), key bit 1 → XNOR
//! (pass-through when `k = 1`). In an AIG the XNOR's output bubble is
//! immediately absorbed into the fanout edges — the structural "bubble
//! pushing" that locking schemes rely on to hide the gate-type/bit binding,
//! and that the ML attacks of the paper learn to see through.

use crate::key::Key;
use crate::scheme::{LockError, LockedCircuit, LockingScheme};
use almost_aig::{Aig, Lit, NodeKind, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// Random logic locking.
#[derive(Clone, Copy, Debug)]
pub struct Rll {
    key_size: usize,
}

impl Rll {
    /// An RLL locker inserting `key_size` key gates.
    pub fn new(key_size: usize) -> Self {
        Rll { key_size }
    }

    /// The configured key size.
    pub fn key_size(&self) -> usize {
        self.key_size
    }
}

impl LockingScheme for Rll {
    fn lock(&self, aig: &Aig, rng: &mut StdRng) -> Result<LockedCircuit, LockError> {
        // Lockable sites: AND nodes (internal signals).
        let candidates: Vec<Var> = aig.iter_ands().collect();
        if candidates.len() < self.key_size {
            return Err(LockError::NotEnoughGates {
                available: candidates.len(),
                requested: self.key_size,
            });
        }
        let mut sites = candidates;
        sites.shuffle(rng);
        sites.truncate(self.key_size);
        sites.sort_unstable(); // process in topological order
        let key = Key::random(self.key_size, rng);

        // Rebuild with key gates spliced in after each chosen node.
        let mut new = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
        for i in 0..aig.num_inputs() {
            map[aig.inputs()[i] as usize] = new.add_named_input(aig.input_name(i).to_string());
        }
        let key_input_start = new.num_inputs();
        let key_lits: Vec<Lit> = (0..self.key_size)
            .map(|k| new.add_named_input(format!("keyinput{k}")))
            .collect();

        let mut site_iter = sites.iter().peekable();
        for v in aig.iter_vars() {
            if let NodeKind::And(a, b) = aig.node(v) {
                let fa = map[a.var() as usize].xor_complement(a.is_complement());
                let fb = map[b.var() as usize].xor_complement(b.is_complement());
                let mut lit = new.and(fa, fb);
                if site_iter.peek() == Some(&&v) {
                    let idx = sites.iter().position(|&s| s == v).expect("site");
                    let k = key_lits[idx];
                    // Bit 0 -> XOR, bit 1 -> XNOR; bubble pushing happens
                    // automatically through complemented-edge absorption.
                    lit = if key.bits()[idx] {
                        new.xnor(lit, k)
                    } else {
                        new.xor(lit, k)
                    };
                    site_iter.next();
                }
                map[v as usize] = lit;
            }
        }
        for (i, out) in aig.outputs().iter().enumerate() {
            let lit = map[out.var() as usize].xor_complement(out.is_complement());
            new.add_named_output(lit, aig.output_name(i).to_string());
        }

        let _ = rng.random::<u64>();
        Ok(LockedCircuit {
            aig: new,
            key_input_start,
            key,
            locked_nodes: sites,
        })
    }

    fn name(&self) -> &'static str {
        "RLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialize::apply_key;
    use almost_aig::sim::probably_equivalent;
    use almost_circuits::IscasBenchmark;
    use rand::SeedableRng;

    #[test]
    fn correct_key_restores_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = IscasBenchmark::C1355.build();
        let locked = Rll::new(64).lock(&base, &mut rng).expect("lockable");
        assert_eq!(locked.aig.num_inputs(), base.num_inputs() + 64);
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        assert!(probably_equivalent(&base, &restored, 32, 5));
    }

    #[test]
    fn correct_key_restores_function_proved_by_sat() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(16).lock(&base, &mut rng).expect("lockable");
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        assert_eq!(
            almost_sat::check_equivalence(&base, &restored),
            almost_sat::Equivalence::Equivalent
        );
    }

    #[test]
    fn wrong_key_breaks_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = IscasBenchmark::C1355.build();
        let locked = Rll::new(64).lock(&base, &mut rng).expect("lockable");
        let mut wrong = locked.key.bits().to_vec();
        for b in wrong.iter_mut().take(16) {
            *b = !*b;
        }
        let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
        assert!(
            !probably_equivalent(&base, &broken, 32, 5),
            "flipping 16 key bits must corrupt the function"
        );
    }

    #[test]
    fn too_small_circuit_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.and(a, b);
        tiny.add_output(f);
        let err = Rll::new(8).lock(&tiny, &mut rng).expect_err("too small");
        assert!(matches!(
            err,
            LockError::NotEnoughGates { available: 1, .. }
        ));
    }

    #[test]
    fn locking_survives_synthesis() {
        // Synthesise the locked circuit with resyn2, then apply the key:
        // function must still be restored (the core soundness property the
        // whole paper relies on).
        let mut rng = StdRng::seed_from_u64(5);
        let base = IscasBenchmark::C1908.build();
        let locked = Rll::new(32).lock(&base, &mut rng).expect("lockable");
        let synthesized = almost_aig::Script::resyn2().apply(&locked.aig);
        let restored = apply_key(&synthesized, locked.key_input_start, locked.key.bits());
        assert!(probably_equivalent(&base, &restored, 32, 9));
    }

    #[test]
    fn key_gate_count_matches_key_size() {
        let mut rng = StdRng::seed_from_u64(6);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(24).lock(&base, &mut rng).expect("lockable");
        assert_eq!(locked.key_size(), 24);
        assert_eq!(locked.locked_nodes.len(), 24);
        // Each XOR/XNOR costs up to 3 AND nodes.
        assert!(locked.aig.num_ands() > base.num_ands());
        assert!(locked.aig.num_ands() <= base.num_ands() + 3 * 24);
        // Key input names follow the convention.
        let pos = locked.key_input_start;
        assert_eq!(locked.aig.input_name(pos), "keyinput0");
    }
}
