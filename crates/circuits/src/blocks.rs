//! Reusable combinational building blocks (adders, comparators, parity
//! trees, multipliers, encoders, shifters) used to assemble the
//! ISCAS85-profile benchmarks.

use almost_aig::{Aig, Lit};

/// A full adder; returns `(sum, carry_out)`.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let c1 = aig.and(a, b);
    let c2 = aig.and(axb, cin);
    let cout = aig.or(c1, c2);
    (sum, cout)
}

/// Ripple-carry adder; returns the per-bit sums and the final carry.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn ripple_adder(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, x, y, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Two's-complement subtractor `a - b`; returns per-bit differences and the
/// final borrow-free carry.
pub fn subtractor(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    ripple_adder(aig, a, &nb, Lit::TRUE)
}

/// Magnitude comparator; returns `(a_less, a_equal, a_greater)`.
pub fn comparator(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Lit, Lit, Lit) {
    assert_eq!(a.len(), b.len());
    let mut less = Lit::FALSE;
    let mut greater = Lit::FALSE;
    let mut equal_so_far = Lit::TRUE;
    // From MSB to LSB.
    for (&x, &y) in a.iter().zip(b).rev() {
        let x_gt = aig.and(x, !y);
        let x_lt = aig.and(!x, y);
        let g_here = aig.and(equal_so_far, x_gt);
        let l_here = aig.and(equal_so_far, x_lt);
        greater = aig.or(greater, g_here);
        less = aig.or(less, l_here);
        let eq_bit = aig.xnor(x, y);
        equal_so_far = aig.and(equal_so_far, eq_bit);
    }
    (less, equal_so_far, greater)
}

/// Balanced XOR parity tree.
pub fn parity_tree(aig: &mut Aig, bits: &[Lit]) -> Lit {
    aig.xor_many(bits)
}

/// `width`-bit 2:1 multiplexer bank.
pub fn mux_bank(aig: &mut Aig, sel: Lit, then_bits: &[Lit], else_bits: &[Lit]) -> Vec<Lit> {
    assert_eq!(then_bits.len(), else_bits.len());
    then_bits
        .iter()
        .zip(else_bits)
        .map(|(&t, &e)| aig.mux(sel, t, e))
        .collect()
}

/// Priority encoder over `requests` (LSB has highest priority); returns the
/// one-hot grant vector and a "any request" flag.
pub fn priority_encoder(aig: &mut Aig, requests: &[Lit]) -> (Vec<Lit>, Lit) {
    let mut blocked = Lit::FALSE; // some higher-priority request fired
    let mut grants = Vec::with_capacity(requests.len());
    for &r in requests {
        let g = aig.and(r, !blocked);
        grants.push(g);
        blocked = aig.or(blocked, r);
    }
    (grants, blocked)
}

/// `n`-to-`2^n` decoder.
pub fn decoder(aig: &mut Aig, sel: &[Lit]) -> Vec<Lit> {
    let mut outs = vec![Lit::TRUE];
    for &s in sel {
        let mut next = Vec::with_capacity(outs.len() * 2);
        for &o in &outs {
            next.push(aig.and(o, !s));
        }
        for &o in &outs {
            next.push(aig.and(o, s));
        }
        outs = next;
    }
    outs
}

/// Array multiplier (the c6288 structure): `a.len() × b.len()` partial
/// products reduced by ripple-carry rows. Returns `a.len() + b.len()`
/// product bits.
pub fn array_multiplier(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Row 0: partial products of b[0]; entry `n` is the row's carry-out.
    let mut row: Vec<Lit> = a.iter().map(|&x| aig.and(x, b[0])).collect();
    row.push(Lit::FALSE);
    let mut product = vec![row[0]];
    for &bj in b.iter().skip(1) {
        let pp: Vec<Lit> = a.iter().map(|&x| aig.and(x, bj)).collect();
        // next = (row >> 1) + pp, rippling the carry across the row.
        let mut next = Vec::with_capacity(n + 1);
        let mut carry = Lit::FALSE;
        for i in 0..n {
            let (s, c) = full_adder(aig, row[i + 1], pp[i], carry);
            next.push(s);
            carry = c;
        }
        next.push(carry);
        product.push(next[0]);
        row = next;
    }
    product.extend_from_slice(&row[1..]);
    debug_assert_eq!(product.len(), n + m);
    product
}

/// Logical barrel shifter (left) of `value` by `shift` (binary), filling
/// with zeros.
pub fn barrel_shifter(aig: &mut Aig, value: &[Lit], shift: &[Lit]) -> Vec<Lit> {
    let mut current: Vec<Lit> = value.to_vec();
    for (k, &s) in shift.iter().enumerate() {
        let amount = 1usize << k;
        let shifted: Vec<Lit> = (0..current.len())
            .map(|i| {
                if i >= amount {
                    current[i - amount]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        current = mux_bank(aig, s, &shifted, &current);
    }
    current
}

/// A one-digit BCD adder stage (used by the c3540-style ALU): adds two
/// 4-bit BCD digits plus carry, returns (4-bit digit, carry).
pub fn bcd_adder_digit(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), 4);
    assert_eq!(b.len(), 4);
    let (raw, c4) = ripple_adder(aig, a, b, cin);
    // Correction needed if raw > 9: c4 | (raw3 & (raw2 | raw1)).
    let r21 = aig.or(raw[2], raw[1]);
    let gt9 = aig.and(raw[3], r21);
    let adjust = aig.or(c4, gt9);
    // Add 6 (0110) when adjusting.
    let six = [Lit::FALSE, adjust, adjust, Lit::FALSE];
    let (corrected, _) = ripple_adder(aig, &raw, &six, Lit::FALSE);
    (corrected, adjust)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(aig: &mut Aig, n: usize) -> Vec<Lit> {
        (0..n).map(|_| aig.add_input()).collect()
    }

    fn num(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn adder_computes_sums() {
        let mut aig = Aig::new();
        let a = to_bits(&mut aig, 4);
        let b = to_bits(&mut aig, 4);
        let (sums, carry) = ripple_adder(&mut aig, &a, &b, Lit::FALSE);
        for s in sums {
            aig.add_output(s);
        }
        aig.add_output(carry);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut ins = Vec::new();
                for i in 0..4 {
                    ins.push(x >> i & 1 != 0);
                }
                for i in 0..4 {
                    ins.push(y >> i & 1 != 0);
                }
                let out = aig.eval(&ins);
                let got = num(&out);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtractor_computes_differences() {
        let mut aig = Aig::new();
        let a = to_bits(&mut aig, 4);
        let b = to_bits(&mut aig, 4);
        let (diff, _) = subtractor(&mut aig, &a, &b);
        for d in diff {
            aig.add_output(d);
        }
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut ins = Vec::new();
                for i in 0..4 {
                    ins.push(x >> i & 1 != 0);
                }
                for i in 0..4 {
                    ins.push(y >> i & 1 != 0);
                }
                let out = aig.eval(&ins);
                assert_eq!(num(&out), (x.wrapping_sub(y)) & 0xF, "{x}-{y}");
            }
        }
    }

    #[test]
    fn comparator_is_correct() {
        let mut aig = Aig::new();
        let a = to_bits(&mut aig, 3);
        let b = to_bits(&mut aig, 3);
        let (l, e, g) = comparator(&mut aig, &a, &b);
        aig.add_output(l);
        aig.add_output(e);
        aig.add_output(g);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut ins = Vec::new();
                for i in 0..3 {
                    ins.push(x >> i & 1 != 0);
                }
                for i in 0..3 {
                    ins.push(y >> i & 1 != 0);
                }
                let out = aig.eval(&ins);
                assert_eq!(out, vec![x < y, x == y, x > y], "{x} vs {y}");
            }
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let mut aig = Aig::new();
        let a = to_bits(&mut aig, 4);
        let b = to_bits(&mut aig, 4);
        let product = array_multiplier(&mut aig, &a, &b);
        assert_eq!(product.len(), 8);
        for p in product {
            aig.add_output(p);
        }
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut ins = Vec::new();
                for i in 0..4 {
                    ins.push(x >> i & 1 != 0);
                }
                for i in 0..4 {
                    ins.push(y >> i & 1 != 0);
                }
                let out = aig.eval(&ins);
                assert_eq!(num(&out), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn priority_encoder_grants_one() {
        let mut aig = Aig::new();
        let reqs = to_bits(&mut aig, 4);
        let (grants, any) = priority_encoder(&mut aig, &reqs);
        for g in grants {
            aig.add_output(g);
        }
        aig.add_output(any);
        for r in 0..16u64 {
            let ins: Vec<bool> = (0..4).map(|i| r >> i & 1 != 0).collect();
            let out = aig.eval(&ins);
            let first = (0..4).find(|&i| ins[i]);
            for (i, &bit) in out.iter().enumerate().take(4) {
                assert_eq!(bit, Some(i) == first, "r={r} i={i}");
            }
            assert_eq!(out[4], r != 0);
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut aig = Aig::new();
        let sel = to_bits(&mut aig, 3);
        let outs = decoder(&mut aig, &sel);
        assert_eq!(outs.len(), 8);
        for o in outs {
            aig.add_output(o);
        }
        for s in 0..8usize {
            let ins: Vec<bool> = (0..3).map(|i| s >> i & 1 != 0).collect();
            let out = aig.eval(&ins);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == s);
            }
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let mut aig = Aig::new();
        let value = to_bits(&mut aig, 8);
        let shift = to_bits(&mut aig, 3);
        let out = barrel_shifter(&mut aig, &value, &shift);
        for o in out {
            aig.add_output(o);
        }
        for v in [0x01u64, 0x81, 0x5A] {
            for s in 0..8u64 {
                let mut ins = Vec::new();
                for i in 0..8 {
                    ins.push(v >> i & 1 != 0);
                }
                for i in 0..3 {
                    ins.push(s >> i & 1 != 0);
                }
                let got = num(&aig.eval(&ins));
                assert_eq!(got, (v << s) & 0xFF, "v={v:02x} s={s}");
            }
        }
    }

    #[test]
    fn bcd_digit_adder() {
        let mut aig = Aig::new();
        let a = to_bits(&mut aig, 4);
        let b = to_bits(&mut aig, 4);
        let (digit, carry) = bcd_adder_digit(&mut aig, &a, &b, Lit::FALSE);
        for d in digit {
            aig.add_output(d);
        }
        aig.add_output(carry);
        for x in 0..10u64 {
            for y in 0..10u64 {
                let mut ins = Vec::new();
                for i in 0..4 {
                    ins.push(x >> i & 1 != 0);
                }
                for i in 0..4 {
                    ins.push(y >> i & 1 != 0);
                }
                let out = aig.eval(&ins);
                let digit_val = num(&out[..4]);
                let carry_val = out[4] as u64;
                assert_eq!(carry_val * 10 + digit_val, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn parity_tree_matches_xor() {
        let mut aig = Aig::new();
        let bits = to_bits(&mut aig, 9);
        let p = parity_tree(&mut aig, &bits);
        aig.add_output(p);
        for trial in [0u64, 1, 0b101, 0x1FF, 0b110110110] {
            let ins: Vec<bool> = (0..9).map(|i| trial >> i & 1 != 0).collect();
            assert_eq!(
                aig.eval(&ins)[0],
                ins.iter().filter(|&&b| b).count() % 2 == 1
            );
        }
    }
}
