//! ISCAS85-profile benchmark circuits.
//!
//! The real ISCAS85 netlists are distributed as `.bench` files that this
//! workspace can read (`almost_netlist::bench_format`), but cannot ship.
//! Each [`IscasBenchmark`] therefore *generates* a deterministic circuit
//! with the same primary-input/primary-output counts and the same
//! functional flavour as its namesake (see the table below), sized to the
//! same order of magnitude. The ALMOST evaluation needs a spread of circuit
//! sizes and structural styles — which these provide — rather than the
//! bit-exact 1985 gate lists.
//!
//! | Name  | PI/PO (real) | Flavour |
//! |-------|--------------|---------|
//! | c432  | 36/7    | 27-channel interrupt controller (priority logic) |
//! | c499  | 41/32   | 32-bit SEC error corrector (XOR-dominated) |
//! | c880  | 60/26   | 8-bit ALU |
//! | c1355 | 41/32   | same function as c499, expanded structure |
//! | c1908 | 33/25   | 16-bit error detector/translator |
//! | c2670 | 233/140 | 12-bit ALU + comparator + parity control |
//! | c3540 | 50/22   | 8-bit ALU with BCD arithmetic and shifting |
//! | c5315 | 178/123 | 9-bit ALU with parallel datapaths |
//! | c6288 | 32/32   | 16×16 array multiplier |
//! | c7552 | 207/108 | 34-bit adder/comparator + parity |

use crate::blocks::*;
use almost_aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The named benchmark circuits.
///
/// # Example
///
/// ```
/// use almost_circuits::IscasBenchmark;
/// let aig = IscasBenchmark::C6288.build();
/// assert_eq!(aig.num_inputs(), 32);
/// assert_eq!(aig.num_outputs(), 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IscasBenchmark {
    /// 27-channel interrupt controller.
    C432,
    /// 32-bit single-error-correction circuit.
    C499,
    /// 8-bit ALU.
    C880,
    /// c499 re-expressed with expanded XOR structure.
    C1355,
    /// 16-bit error detector / translator.
    C1908,
    /// ALU and control with wide I/O.
    C2670,
    /// 8-bit BCD-capable ALU.
    C3540,
    /// 9-bit parallel ALU.
    C5315,
    /// 16×16 array multiplier.
    C6288,
    /// 34-bit adder/comparator.
    C7552,
}

impl IscasBenchmark {
    /// All ten generated benchmarks.
    pub const ALL: [IscasBenchmark; 10] = [
        IscasBenchmark::C432,
        IscasBenchmark::C499,
        IscasBenchmark::C880,
        IscasBenchmark::C1355,
        IscasBenchmark::C1908,
        IscasBenchmark::C2670,
        IscasBenchmark::C3540,
        IscasBenchmark::C5315,
        IscasBenchmark::C6288,
        IscasBenchmark::C7552,
    ];

    /// The seven largest benchmarks used in the paper's tables.
    pub const PAPER_SEVEN: [IscasBenchmark; 7] = [
        IscasBenchmark::C1355,
        IscasBenchmark::C1908,
        IscasBenchmark::C2670,
        IscasBenchmark::C3540,
        IscasBenchmark::C5315,
        IscasBenchmark::C6288,
        IscasBenchmark::C7552,
    ];

    /// The lowercase benchmark name (`c1355`, ...).
    pub fn name(self) -> &'static str {
        match self {
            IscasBenchmark::C432 => "c432",
            IscasBenchmark::C499 => "c499",
            IscasBenchmark::C880 => "c880",
            IscasBenchmark::C1355 => "c1355",
            IscasBenchmark::C1908 => "c1908",
            IscasBenchmark::C2670 => "c2670",
            IscasBenchmark::C3540 => "c3540",
            IscasBenchmark::C5315 => "c5315",
            IscasBenchmark::C6288 => "c6288",
            IscasBenchmark::C7552 => "c7552",
        }
    }

    /// Gate count of the real ISCAS85 netlist (for context in reports).
    pub fn paper_gate_count(self) -> usize {
        match self {
            IscasBenchmark::C432 => 160,
            IscasBenchmark::C499 => 202,
            IscasBenchmark::C880 => 383,
            IscasBenchmark::C1355 => 546,
            IscasBenchmark::C1908 => 880,
            IscasBenchmark::C2670 => 1193,
            IscasBenchmark::C3540 => 1669,
            IscasBenchmark::C5315 => 2307,
            IscasBenchmark::C6288 => 2406,
            IscasBenchmark::C7552 => 3512,
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Generates the benchmark circuit.
    pub fn build(self) -> Aig {
        match self {
            IscasBenchmark::C432 => build_c432(),
            IscasBenchmark::C499 => build_sec_corrector(0x499),
            IscasBenchmark::C880 => build_c880(),
            IscasBenchmark::C1355 => build_sec_corrector(0x1355),
            IscasBenchmark::C1908 => build_c1908(),
            IscasBenchmark::C2670 => build_c2670(),
            IscasBenchmark::C3540 => build_c3540(),
            IscasBenchmark::C5315 => build_c5315(),
            IscasBenchmark::C6288 => build_c6288(),
            IscasBenchmark::C7552 => build_c7552(),
        }
    }
}

impl std::fmt::Display for IscasBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn inputs(aig: &mut Aig, prefix: &str, n: usize) -> Vec<Lit> {
    (0..n)
        .map(|i| aig.add_named_input(format!("{prefix}{i}")))
        .collect()
}

/// A deterministic "control logic" mixing stage: combines a signal pool
/// through rounds of XOR/MUX/MAJ gates, growing structural depth and
/// reconvergence. Returns the final signal pool.
fn mixing_rounds(aig: &mut Aig, pool: &[Lit], rounds: usize, seed: u64) -> Vec<Lit> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current: Vec<Lit> = pool.to_vec();
    for _ in 0..rounds {
        let n = current.len();
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let a = current[i];
            let b = current[(i + 1) % n];
            let c = current[rng.random_range(0..n)];
            let lit = match rng.random_range(0..4u32) {
                0 => aig.xor(a, b),
                1 => aig.mux(c, a, b),
                2 => aig.maj(a, b, c),
                _ => {
                    let t = aig.and(a, !b);
                    aig.or(t, c)
                }
            };
            next.push(lit);
        }
        current = next;
    }
    current
}

/// c432 flavour: 27 interrupt requests in 3 banks of 9, plus 9 enables.
fn build_c432() -> Aig {
    let mut aig = Aig::new();
    let reqs = inputs(&mut aig, "req", 27);
    let ens = inputs(&mut aig, "en", 9);
    // Mask requests by their bank enables.
    let masked: Vec<Lit> = reqs
        .iter()
        .enumerate()
        .map(|(i, &r)| aig.and(r, ens[i % 9]))
        .collect();
    let (grants, any) = priority_encoder(&mut aig, &masked);
    // Encode the 27 grants into a 5-bit channel id plus parity.
    let mut id = [Lit::FALSE; 5];
    for (i, &g) in grants.iter().enumerate() {
        for (b, slot) in id.iter_mut().enumerate() {
            if i >> b & 1 != 0 {
                *slot = aig.or(*slot, g);
            }
        }
    }
    let par = parity_tree(&mut aig, &masked);
    for (i, &b) in id.iter().enumerate() {
        aig.add_named_output(b, format!("id{i}"));
    }
    aig.add_named_output(any, "any");
    aig.add_named_output(par, "par");
    aig
}

/// c499/c1355 flavour: 32-bit data + 9 check/control inputs, single-error
/// syndrome computation and correction.
fn build_sec_corrector(seed: u64) -> Aig {
    let mut aig = Aig::new();
    let data = inputs(&mut aig, "d", 32);
    let check = inputs(&mut aig, "c", 9);
    let mut rng = StdRng::seed_from_u64(seed);
    // Six syndrome bits, each a parity over a random half of the data plus
    // one check bit.
    let mut syndromes = Vec::new();
    for (s, &chk) in check.iter().enumerate().take(6) {
        let members: Vec<Lit> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> s) & 1 == 1 || rng.random_bool(0.15))
            .map(|(_, &l)| l)
            .collect();
        let mut p = parity_tree(&mut aig, &members);
        p = aig.xor(p, chk);
        syndromes.push(p);
    }
    // Correction: decode the syndrome and flip the indicated bit when the
    // enable (check[8]) is set.
    let flips = decoder(&mut aig, &syndromes); // 64 one-hot lines
    let overall = aig.xor(check[6], check[7]);
    for (i, &d) in data.iter().enumerate() {
        let sel = flips[i];
        let gated = aig.and(sel, check[8]);
        let gated = aig.and(gated, !overall);
        let corrected = aig.xor(d, gated);
        aig.add_named_output(corrected, format!("q{i}"));
    }
    aig
}

/// c880 flavour: 8-bit ALU with 60 inputs / 26 outputs.
fn build_c880() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 8);
    let b = inputs(&mut aig, "b", 8);
    let c = inputs(&mut aig, "c", 8);
    let mode = inputs(&mut aig, "m", 4);
    let misc = inputs(&mut aig, "x", 32);
    let (sum, carry) = ripple_adder(&mut aig, &a, &b, mode[0]);
    let (diff, borrow) = subtractor(&mut aig, &a, &c);
    let anded: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.and(x, y)).collect();
    let sel = aig.and(mode[1], !mode[2]);
    let r1 = mux_bank(&mut aig, sel, &sum, &diff);
    let r2 = mux_bank(&mut aig, mode[3], &r1, &anded);
    let mixed = mixing_rounds(&mut aig, &misc, 2, 0x880);
    for (i, &o) in r2.iter().enumerate() {
        aig.add_named_output(o, format!("r{i}"));
    }
    aig.add_named_output(carry, "cout");
    aig.add_named_output(borrow, "bout");
    for (i, &m) in mixed.iter().enumerate().take(16) {
        aig.add_named_output(m, format!("y{i}"));
    }
    aig
}

/// c1908 flavour: 16-bit error detector/translator, 33 in / 25 out.
fn build_c1908() -> Aig {
    let mut aig = Aig::new();
    let data = inputs(&mut aig, "d", 16);
    let tag = inputs(&mut aig, "t", 16);
    let en = inputs(&mut aig, "en", 1);
    // CRC-like folding: several rounds of shifted XOR/AND mixing.
    let mut state: Vec<Lit> = data
        .iter()
        .zip(&tag)
        .map(|(&d, &t)| aig.xor(d, t))
        .collect();
    state = mixing_rounds(&mut aig, &state, 3, 0x1908);
    let (sum, carry) = ripple_adder(&mut aig, &state, &tag, en[0]);
    let (less, equal, greater) = comparator(&mut aig, &data, &tag);
    let par = parity_tree(&mut aig, &state);
    for (i, &s) in sum.iter().enumerate() {
        aig.add_named_output(s, format!("s{i}"));
    }
    for (i, &st) in state.iter().enumerate().take(4) {
        aig.add_named_output(st, format!("st{i}"));
    }
    aig.add_named_output(carry, "cout");
    aig.add_named_output(less, "lt");
    aig.add_named_output(equal, "eq");
    aig.add_named_output(greater, "gt");
    aig.add_named_output(par, "par");
    aig
}

/// c2670 flavour: ALU + control with 233 in / 140 out.
fn build_c2670() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 32);
    let b = inputs(&mut aig, "b", 32);
    let c = inputs(&mut aig, "c", 32);
    let reqs = inputs(&mut aig, "req", 27);
    let ctrl = inputs(&mut aig, "k", 14);
    let pass = inputs(&mut aig, "p", 96);

    let (sum, carry) = ripple_adder(&mut aig, &a, &b, ctrl[0]);
    let (less, equal, greater) = comparator(&mut aig, &b, &c);
    let par_a = parity_tree(&mut aig, &a);
    let (grants, any) = priority_encoder(&mut aig, &reqs);
    let sel = decoder(&mut aig, &ctrl[1..4]);
    let muxed = mux_bank(&mut aig, sel[1], &sum, &c);
    let gated: Vec<Lit> = pass
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let s = sel[i % 8];
            aig.and(p, s)
        })
        .collect();

    for (i, &m) in muxed.iter().enumerate() {
        aig.add_named_output(m, format!("alu{i}"));
    }
    for (i, &g) in grants.iter().enumerate() {
        aig.add_named_output(g, format!("gr{i}"));
    }
    for (i, &g) in gated.iter().enumerate().take(75) {
        aig.add_named_output(g, format!("pg{i}"));
    }
    aig.add_named_output(carry, "cout");
    aig.add_named_output(less, "lt");
    aig.add_named_output(equal, "eq");
    aig.add_named_output(greater, "gt");
    aig.add_named_output(par_a, "par");
    aig.add_named_output(any, "irq");
    aig
}

/// c3540 flavour: 8-bit BCD-capable ALU, 50 in / 22 out.
fn build_c3540() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 16);
    let b = inputs(&mut aig, "b", 16);
    let sh = inputs(&mut aig, "sh", 4);
    let mode = inputs(&mut aig, "m", 6);
    let misc = inputs(&mut aig, "x", 8);

    let (sum, carry) = ripple_adder(&mut aig, &a, &b, mode[0]);
    let (diff, _borrow) = subtractor(&mut aig, &a, &b);
    // Two BCD digits on the low byte.
    let (bcd_lo, c_lo) = bcd_adder_digit(&mut aig, &a[0..4], &b[0..4], mode[1]);
    let (bcd_hi, c_hi) = bcd_adder_digit(&mut aig, &a[4..8], &b[4..8], c_lo);
    let shifted = barrel_shifter(&mut aig, &a, &sh);
    let logic: Vec<Lit> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| {
            let t = aig.xor(x, y);
            let u = aig.and(x, y);
            aig.mux(mode[2], t, u)
        })
        .collect();
    let r1 = mux_bank(&mut aig, mode[3], &sum, &diff);
    let r2 = mux_bank(&mut aig, mode[4], &r1, &shifted);
    let r3 = mux_bank(&mut aig, mode[5], &r2, &logic);
    let mixed = mixing_rounds(&mut aig, &misc, 3, 0x3540);

    for (i, &r) in r3.iter().enumerate().take(16) {
        aig.add_named_output(r, format!("r{i}"));
    }
    for (i, &d) in bcd_lo.iter().chain(bcd_hi.iter()).enumerate().take(2) {
        aig.add_named_output(d, format!("bcd{i}"));
    }
    aig.add_named_output(carry, "cout");
    aig.add_named_output(c_hi, "bcdc");
    aig.add_named_output(mixed[0], "y0");
    aig.add_named_output(mixed[1], "y1");
    aig
}

/// c5315 flavour: 9-bit parallel ALU, 178 in / 123 out.
fn build_c5315() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 36);
    let b = inputs(&mut aig, "b", 36);
    let c = inputs(&mut aig, "c", 36);
    let d = inputs(&mut aig, "d", 36);
    let sh = inputs(&mut aig, "sh", 5);
    let mode = inputs(&mut aig, "m", 9);
    let misc = inputs(&mut aig, "x", 20);

    let (sum1, carry1) = ripple_adder(&mut aig, &a, &b, mode[0]);
    let (sum2, carry2) = ripple_adder(&mut aig, &c, &d, mode[1]);
    let (less, equal, greater) = comparator(&mut aig, &a, &c);
    let shifted = barrel_shifter(&mut aig, &b[0..32], &sh);
    let r1 = mux_bank(&mut aig, mode[2], &sum1, &sum2);
    let r2 = mux_bank(&mut aig, mode[3], &r1[0..32], &shifted);
    let par1 = parity_tree(&mut aig, &a);
    let par2 = parity_tree(&mut aig, &d);
    let mixed = mixing_rounds(&mut aig, &misc, 3, 0x5315);
    let mixed2 = mixing_rounds(&mut aig, &c[0..28], 2, 0x5316);

    for (i, &r) in r2.iter().enumerate() {
        aig.add_named_output(r, format!("r{i}"));
    }
    for (i, &s) in sum2.iter().enumerate().take(36) {
        aig.add_named_output(s, format!("s{i}"));
    }
    for (i, &m) in mixed.iter().chain(mixed2.iter()).enumerate() {
        aig.add_named_output(m, format!("y{i}"));
    }
    aig.add_named_output(carry1, "c1");
    aig.add_named_output(carry2, "c2");
    aig.add_named_output(less, "lt");
    aig.add_named_output(equal, "eq");
    aig.add_named_output(greater, "gt");
    aig.add_named_output(par1, "p1");
    aig.add_named_output(par2, "p2");
    aig
}

/// c6288: a 16×16 array multiplier, the classic structure of the real
/// benchmark.
fn build_c6288() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 16);
    let b = inputs(&mut aig, "b", 16);
    let product = array_multiplier(&mut aig, &a, &b);
    for (i, &p) in product.iter().enumerate() {
        aig.add_named_output(p, format!("p{i}"));
    }
    aig
}

/// c7552 flavour: 34-bit adder + comparator + parity, 207 in / 108 out.
fn build_c7552() -> Aig {
    let mut aig = Aig::new();
    let a = inputs(&mut aig, "a", 34);
    let b = inputs(&mut aig, "b", 34);
    let c = inputs(&mut aig, "c", 34);
    let d = inputs(&mut aig, "d", 34);
    let e = inputs(&mut aig, "e", 34);
    let ctrl = inputs(&mut aig, "k", 17);
    let misc = inputs(&mut aig, "x", 20);

    let (sum1, carry1) = ripple_adder(&mut aig, &a, &b, ctrl[0]);
    let (sum2, carry2) = ripple_adder(&mut aig, &c, &d, ctrl[1]);
    let (sum3, carry3) = ripple_adder(&mut aig, &sum1, &e, ctrl[2]);
    let (less, equal, greater) = comparator(&mut aig, &sum1, &sum2);
    let (less2, _eq2, _gt2) = comparator(&mut aig, &c, &e);
    let par1 = parity_tree(&mut aig, &a);
    let par2 = parity_tree(&mut aig, &d);
    let muxed = mux_bank(&mut aig, less, &sum2, &sum3);
    let sel = decoder(&mut aig, &ctrl[3..7]);
    let gated: Vec<Lit> = misc
        .iter()
        .enumerate()
        .map(|(i, &p)| aig.and(p, sel[i % 16]))
        .collect();
    let mixed = mixing_rounds(&mut aig, &gated, 4, 0x7552);

    for (i, &m) in muxed.iter().enumerate() {
        aig.add_named_output(m, format!("r{i}"));
    }
    for (i, &s) in sum3.iter().enumerate().take(34) {
        aig.add_named_output(s, format!("s{i}"));
    }
    for (i, &y) in mixed.iter().enumerate().take(32) {
        aig.add_named_output(y, format!("y{i}"));
    }
    for (i, &s) in sum2.iter().enumerate().take(12) {
        aig.add_named_output(s, format!("t{i}"));
    }
    aig.add_named_output(carry1, "c1");
    aig.add_named_output(carry2, "c2");
    aig.add_named_output(carry3, "c3");
    aig.add_named_output(less2, "lt2");
    aig.add_named_output(par1, "p1");
    aig.add_named_output(par2, "p2");
    aig.add_named_output(equal, "eq");
    aig.add_named_output(greater, "gt");
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_are_stable() {
        // (benchmark, inputs, outputs) — the generated interface contract.
        let expect = [
            (IscasBenchmark::C432, 36, 7),
            (IscasBenchmark::C499, 41, 32),
            (IscasBenchmark::C1355, 41, 32),
            (IscasBenchmark::C6288, 32, 32),
        ];
        for (b, pi, po) in expect {
            let aig = b.build();
            assert_eq!(aig.num_inputs(), pi, "{b} inputs");
            assert_eq!(aig.num_outputs(), po, "{b} outputs");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for b in IscasBenchmark::ALL {
            let x = b.build();
            let y = b.build();
            assert_eq!(x.num_ands(), y.num_ands(), "{b}");
            assert_eq!(x.num_inputs(), y.num_inputs());
            assert!(almost_aig::sim::probably_equivalent(&x, &y, 4, 1));
        }
    }

    #[test]
    fn sizes_are_in_the_right_ballpark() {
        for b in IscasBenchmark::PAPER_SEVEN {
            let aig = b.build();
            let target = b.paper_gate_count() as f64;
            let got = aig.num_ands() as f64;
            assert!(
                got > target * 0.3 && got < target * 3.0,
                "{b}: {got} ANDs vs paper {target} gates"
            );
        }
    }

    #[test]
    fn multiplier_benchmark_multiplies() {
        let aig = IscasBenchmark::C6288.build();
        let mut ins = vec![false; 32];
        // 7 * 11 = 77.
        for i in 0..16 {
            ins[i] = (7u64 >> i) & 1 != 0;
            ins[16 + i] = (11u64 >> i) & 1 != 0;
        }
        let out = aig.eval(&ins);
        let got: u64 = out
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i);
        assert_eq!(got, 77);
    }

    #[test]
    fn name_roundtrip() {
        for b in IscasBenchmark::ALL {
            assert_eq!(IscasBenchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(IscasBenchmark::from_name("c17"), None);
    }

    #[test]
    fn outputs_are_not_constant() {
        // Sanity: every benchmark must have live logic on most outputs.
        for b in IscasBenchmark::PAPER_SEVEN {
            let aig = b.build();
            let sim = almost_aig::sim::SimVectors::random(&aig, 4, 7);
            let live = aig
                .outputs()
                .iter()
                .filter(|l| {
                    let p = sim.lit_pattern(**l);
                    p.iter().any(|&w| w != 0) && p.iter().any(|&w| w != u64::MAX)
                })
                .count();
            assert!(
                live * 10 >= aig.num_outputs() * 7,
                "{b}: only {live}/{} outputs toggle",
                aig.num_outputs()
            );
        }
    }
}
