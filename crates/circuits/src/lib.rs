//! ISCAS85-profile combinational benchmark circuit generators.
//!
//! The ALMOST paper evaluates on the largest ISCAS85 benchmarks
//! (c1355…c7552). Those netlists cannot be redistributed here, so this
//! crate generates deterministic circuits with the same interface widths
//! and functional flavour — adders, comparators, parity/ECC logic, priority
//! controllers and the classic c6288 16×16 array multiplier — at the same
//! size scale. Real `.bench` files can be substituted at any time through
//! `almost_netlist::bench_format::parse_bench`.
//!
//! # Example
//!
//! ```
//! use almost_circuits::IscasBenchmark;
//!
//! for b in IscasBenchmark::PAPER_SEVEN {
//!     let aig = b.build();
//!     assert!(aig.num_ands() > 100, "{b} is a real circuit");
//! }
//! ```

pub mod blocks;
pub mod iscas;

pub use iscas::IscasBenchmark;
