//! Simulated annealing over the recipe space.
//!
//! The paper's black-box optimiser (§III-C): 100 iterations, initial
//! temperature 120, acceptance scaling 1.8, one-position mutation moves,
//! pick-best-seen fallback when the budget runs out before the objective
//! reaches its target.

use crate::recipe::Recipe;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Annealer parameters (defaults follow §IV-C).
#[derive(Clone, Copy, Debug)]
pub struct SaConfig {
    /// Number of iterations (temperature steps).
    pub iterations: usize,
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Acceptance scaling factor applied to the objective delta.
    pub acceptance: f64,
    /// Final temperature of the geometric schedule.
    pub final_temperature: f64,
    /// Mutations proposed (and scored as one batch) per temperature
    /// step. Consumed by [`crate::engine::SearchEngine::anneal`]; the
    /// serial reference [`anneal`] in this module always evaluates one
    /// proposal per step, and the engine at `proposals = 1` reproduces
    /// its trace bit-for-bit.
    pub proposals: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 100,
            initial_temperature: 120.0,
            acceptance: 1.8,
            final_temperature: 1.0,
            proposals: 1,
            seed: 0x5A,
        }
    }
}

/// One annealing step's record.
#[derive(Clone, Debug)]
pub struct SaIteration {
    /// The candidate recipe proposed this step.
    pub recipe: Recipe,
    /// Its objective value (lower is better).
    pub objective: f64,
    /// Whether the move was accepted.
    pub accepted: bool,
    /// Best objective seen so far (after this step).
    pub best_objective: f64,
}

/// The annealing trajectory (drives the paper's Fig. 4/5 plots).
#[derive(Clone, Debug)]
pub struct SaTrace {
    /// Per-iteration records, in order.
    pub iterations: Vec<SaIteration>,
}

impl SaTrace {
    /// The per-iteration objective series.
    pub fn objectives(&self) -> Vec<f64> {
        self.iterations.iter().map(|i| i.objective).collect()
    }

    /// The per-iteration best-so-far series.
    pub fn best_series(&self) -> Vec<f64> {
        self.iterations.iter().map(|i| i.best_objective).collect()
    }
}

/// Minimises `objective` over recipes by simulated annealing, starting
/// from `initial`.
///
/// Returns the best recipe seen and the full trace. The objective is
/// treated as a black box (the paper's Eq. 1 uses `|acc − 0.5|`; Fig. 5
/// uses mapped delay or area).
///
/// This is the *serial reference*: one proposal per temperature step
/// ([`SaConfig::proposals`] is ignored), evaluated through whatever the
/// closure does. The production searches run on
/// [`crate::engine::SearchEngine::anneal`], which batches proposals and
/// shares synthesis through the recipe trie but is pinned bit-identical
/// to this loop at `proposals = 1`.
pub fn anneal(
    initial: Recipe,
    mut objective: impl FnMut(&Recipe) -> f64,
    config: &SaConfig,
) -> (Recipe, SaTrace) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current = initial;
    let mut current_obj = objective(&current);
    let mut best = current.clone();
    let mut best_obj = current_obj;
    let mut iterations = Vec::with_capacity(config.iterations);

    let alpha = if config.iterations > 1 {
        (config.final_temperature / config.initial_temperature)
            .powf(1.0 / (config.iterations as f64 - 1.0))
    } else {
        1.0
    };
    let mut temperature = config.initial_temperature;

    for _ in 0..config.iterations {
        let candidate = current.mutate(&mut rng);
        let cand_obj = objective(&candidate);
        let delta = cand_obj - current_obj;
        let accepted = if delta <= 0.0 {
            true
        } else {
            let p = (-config.acceptance * delta / temperature.max(1e-9)).exp();
            rng.random::<f64>() < p
        };
        if accepted {
            current = candidate.clone();
            current_obj = cand_obj;
        }
        if cand_obj < best_obj {
            best = candidate.clone();
            best_obj = cand_obj;
        }
        iterations.push(SaIteration {
            recipe: candidate,
            objective: cand_obj,
            accepted,
            best_objective: best_obj,
        });
        temperature *= alpha;
    }

    (best, SaTrace { iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_aig::Pass;

    #[test]
    fn finds_a_known_optimum() {
        // Objective: Hamming distance to a fixed target recipe.
        let target = Recipe::resyn2();
        let objective = |r: &Recipe| {
            r.passes()
                .iter()
                .zip(target.passes())
                .filter(|(a, b)| a != b)
                .count() as f64
        };
        let initial = Recipe::new(vec![Pass::Resub; 10]);
        // A cold schedule turns the late phase into hill climbing, which
        // must solve this separable objective exactly.
        let config = SaConfig {
            iterations: 600,
            initial_temperature: 2.0,
            final_temperature: 0.01,
            acceptance: 1.8,
            proposals: 1,
            seed: 3,
        };
        let (best, trace) = anneal(initial, objective, &config);
        let final_dist = best
            .passes()
            .iter()
            .zip(target.passes())
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            final_dist <= 1,
            "SA should approach the target, distance {final_dist}"
        );
        assert_eq!(trace.iterations.len(), 600);
    }

    #[test]
    fn best_series_is_monotone() {
        let objective =
            |r: &Recipe| r.passes().iter().filter(|p| **p == Pass::Balance).count() as f64;
        let (_, trace) = anneal(
            Recipe::new(vec![Pass::Balance; 10]),
            objective,
            &SaConfig {
                iterations: 50,
                seed: 4,
                ..SaConfig::default()
            },
        );
        let best = trace.best_series();
        for w in best.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn trace_marks_accepted_moves() {
        let (_, trace) = anneal(
            Recipe::resyn2(),
            |_| 1.0,
            &SaConfig {
                iterations: 30,
                seed: 5,
                ..SaConfig::default()
            },
        );
        // Constant objective: delta = 0, always accepted.
        assert!(trace.iterations.iter().all(|i| i.accepted));
    }
}
