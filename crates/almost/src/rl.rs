//! Reinforcement-learning recipe generation (the paper's stated future
//! work: "developing a generalized reinforcement learning-based synthesis
//! engine to generate resilient designs").
//!
//! A positional softmax policy — one categorical distribution over the
//! seven passes per recipe slot — trained with REINFORCE and a moving
//! baseline. The reward is the negative Eq.-1 objective, so the policy
//! learns to emit recipes whose predicted attack accuracy is ~50%.
//! Compared to SA this is a *distribution* over good recipes rather than a
//! single point, which the ablation bench uses to compare searchers.

use crate::recipe::{Recipe, RECIPE_LENGTH};
use almost_aig::Pass;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// REINFORCE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct ReinforceConfig {
    /// Recipe length (number of policy positions).
    pub recipe_length: usize,
    /// Training episodes (one sampled recipe per episode).
    pub episodes: usize,
    /// Policy learning rate.
    pub learning_rate: f64,
    /// Baseline smoothing factor (exponential moving average).
    pub baseline_momentum: f64,
    /// Entropy bonus weight (keeps the policy exploratory).
    pub entropy_weight: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        ReinforceConfig {
            recipe_length: RECIPE_LENGTH,
            episodes: 60,
            learning_rate: 0.30,
            baseline_momentum: 0.9,
            entropy_weight: 0.01,
            seed: 0x2E1F,
        }
    }
}

/// A positional categorical policy over the pass alphabet.
#[derive(Clone, Debug)]
pub struct RecipePolicy {
    /// Logits, one row per recipe position.
    logits: Vec<[f64; 7]>,
}

impl RecipePolicy {
    /// The uniform policy over `len` positions.
    pub fn uniform(len: usize) -> Self {
        RecipePolicy {
            logits: vec![[0.0; 7]; len],
        }
    }

    /// Per-position probabilities.
    pub fn probabilities(&self) -> Vec<[f64; 7]> {
        self.logits.iter().map(softmax).collect()
    }

    /// Samples a recipe.
    pub fn sample(&self, rng: &mut StdRng) -> Recipe {
        let passes = self
            .logits
            .iter()
            .map(|row| {
                let p = softmax(row);
                let mut u: f64 = rng.random();
                let mut idx = 6;
                for (i, &pi) in p.iter().enumerate() {
                    if u < pi {
                        idx = i;
                        break;
                    }
                    u -= pi;
                }
                Pass::ALL[idx]
            })
            .collect();
        Recipe::new(passes)
    }

    /// The most likely recipe under the current policy.
    pub fn mode(&self) -> Recipe {
        let passes = self
            .logits
            .iter()
            .map(|row| {
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("seven entries");
                Pass::ALL[best]
            })
            .collect();
        Recipe::new(passes)
    }

    /// Mean per-position entropy in nats (ln 7 ≈ 1.946 for uniform).
    pub fn mean_entropy(&self) -> f64 {
        let rows = self.probabilities();
        let h: f64 = rows
            .iter()
            .map(|p| {
                -p.iter()
                    .filter(|&&x| x > 0.0)
                    .map(|&x| x * x.ln())
                    .sum::<f64>()
            })
            .sum();
        h / self.logits.len().max(1) as f64
    }
}

fn softmax(row: &[f64; 7]) -> [f64; 7] {
    let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut e = [0.0; 7];
    let mut z = 0.0;
    for i in 0..7 {
        e[i] = (row[i] - m).exp();
        z += e[i];
    }
    for x in &mut e {
        *x /= z;
    }
    e
}

/// One training episode's record.
#[derive(Clone, Debug)]
pub struct Episode {
    /// The sampled recipe.
    pub recipe: Recipe,
    /// Its reward (higher is better).
    pub reward: f64,
}

/// Result of a REINFORCE run.
#[derive(Clone, Debug)]
pub struct ReinforceResult {
    /// The trained policy.
    pub policy: RecipePolicy,
    /// The best recipe encountered during training.
    pub best_recipe: Recipe,
    /// Reward of the best recipe.
    pub best_reward: f64,
    /// Episode log.
    pub episodes: Vec<Episode>,
}

/// Trains a recipe policy by REINFORCE to maximise `reward`.
///
/// The reward convention is "higher is better"; for the Eq.-1 objective
/// pass `-|acc − 0.5|`.
pub fn reinforce(
    mut reward: impl FnMut(&Recipe) -> f64,
    config: &ReinforceConfig,
) -> ReinforceResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut policy = RecipePolicy::uniform(config.recipe_length);
    let mut baseline = 0.0f64;
    let mut have_baseline = false;
    let mut best_recipe: Option<Recipe> = None;
    let mut best_reward = f64::NEG_INFINITY;
    let mut episodes = Vec::with_capacity(config.episodes);

    for _ in 0..config.episodes {
        let recipe = policy.sample(&mut rng);
        let r = reward(&recipe);
        if r > best_reward {
            best_reward = r;
            best_recipe = Some(recipe.clone());
        }
        if !have_baseline {
            baseline = r;
            have_baseline = true;
        } else {
            baseline = config.baseline_momentum * baseline + (1.0 - config.baseline_momentum) * r;
        }
        let advantage = r - baseline;

        // Policy-gradient update: ∇ log π(a|pos) = onehot(a) − softmax.
        for (pos, pass) in recipe.passes().iter().enumerate() {
            let probs = softmax(&policy.logits[pos]);
            let action = Pass::ALL
                .iter()
                .position(|p| p == pass)
                .expect("pass from alphabet");
            for (i, &prob) in probs.iter().enumerate() {
                let indicator = (i == action) as u8 as f64;
                let grad_logp = indicator - prob;
                // Entropy gradient: −∂Σp·ln p/∂logit = −p (ln p + 1) +
                // p Σ p (ln p + 1); use the simple surrogate of pulling
                // logits toward uniform.
                let entropy_grad = -policy.logits[pos][i];
                policy.logits[pos][i] += config.learning_rate
                    * (advantage * grad_logp + config.entropy_weight * entropy_grad);
            }
        }
        episodes.push(Episode { recipe, reward: r });
    }

    ReinforceResult {
        best_recipe: best_recipe.expect("at least one episode"),
        best_reward,
        policy,
        episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_policy_has_max_entropy() {
        let p = RecipePolicy::uniform(10);
        assert!((p.mean_entropy() - 7.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn policy_learns_a_preference() {
        // Reward: number of Balance passes.
        let cfg = ReinforceConfig {
            episodes: 300,
            learning_rate: 0.4,
            entropy_weight: 0.0,
            seed: 7,
            ..ReinforceConfig::default()
        };
        let result = reinforce(
            |r| r.passes().iter().filter(|p| **p == Pass::Balance).count() as f64,
            &cfg,
        );
        let mode = result.policy.mode();
        let balances = mode
            .passes()
            .iter()
            .filter(|p| **p == Pass::Balance)
            .count();
        assert!(
            balances >= 8,
            "policy should concentrate on Balance, got {balances}/10 in {mode}"
        );
        assert!(result.best_reward >= 6.0);
    }

    #[test]
    fn entropy_decreases_with_training() {
        let cfg = ReinforceConfig {
            episodes: 150,
            seed: 9,
            ..ReinforceConfig::default()
        };
        let result = reinforce(
            |r| r.passes().iter().filter(|p| **p == Pass::Rewrite).count() as f64,
            &cfg,
        );
        assert!(result.policy.mean_entropy() < 7.0f64.ln());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = RecipePolicy::uniform(10);
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        assert_eq!(p.sample(&mut r1), p.sample(&mut r2));
    }

    #[test]
    fn episode_log_has_expected_length() {
        let cfg = ReinforceConfig {
            episodes: 25,
            seed: 3,
            ..ReinforceConfig::default()
        };
        let result = reinforce(|_| 0.0, &cfg);
        assert_eq!(result.episodes.len(), 25);
        assert_eq!(result.best_recipe.len(), RECIPE_LENGTH);
    }
}
