//! Experiment scaling: `quick` (laptop-friendly defaults used by `cargo
//! bench`) vs `paper` (the §IV-A hyperparameters).
//!
//! Selected via the `ALMOST_SCALE` environment variable (`quick` is the
//! default; set `ALMOST_SCALE=paper` to reproduce at full scale).

use crate::proxy::ProxyConfig;
use crate::sa::SaConfig;
use almost_attacks::subgraph::SubgraphConfig;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sample counts / epochs / SA budgets so every bench target
    /// finishes in minutes.
    Quick,
    /// The paper's §IV-A settings (1000 samples, 350 epochs, R = 50,
    /// 200-sample augments, 100 SA iterations, 1000-recipe random set).
    Paper,
}

impl Scale {
    /// Reads `ALMOST_SCALE` (default [`Scale::Quick`]).
    pub fn from_env() -> Scale {
        match std::env::var("ALMOST_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Proxy-model training configuration at this scale.
    pub fn proxy_config(self, seed: u64) -> ProxyConfig {
        match self {
            Scale::Quick => ProxyConfig {
                initial_samples: 120,
                augment_samples: 40,
                epochs: 36,
                period: 12,
                relock_key_size: 40,
                hidden: 20,
                layers: 2,
                batch_size: 32,
                learning_rate: 5e-3,
                subgraph: SubgraphConfig {
                    hops: 3,
                    max_nodes: 32,
                },
                adversarial_sa: SaConfig {
                    iterations: 6,
                    seed: seed ^ 0xAD,
                    ..SaConfig::default()
                },
                seed,
            },
            Scale::Paper => ProxyConfig {
                initial_samples: 1000,
                augment_samples: 200,
                epochs: 350,
                period: 50,
                relock_key_size: 32,
                hidden: 32,
                layers: 3,
                batch_size: 64,
                learning_rate: 3e-3,
                subgraph: SubgraphConfig {
                    hops: 3,
                    max_nodes: 48,
                },
                adversarial_sa: SaConfig {
                    iterations: 20,
                    seed: seed ^ 0xAD,
                    ..SaConfig::default()
                },
                seed,
            },
        }
    }

    /// Recipe-search SA configuration (Fig. 4: 100 iterations, T0 = 120,
    /// acceptance = 1.8).
    ///
    /// `ALMOST_PROPOSALS` (default 1) sets how many mutations the search
    /// engine proposes and batch-scores per temperature step; at 1 the
    /// trajectory is bit-identical to the serial annealer. Only the
    /// *outer* recipe searches read it — the adversarial inner SA of
    /// Algorithm 1 keeps `proposals = 1` so proxy training is unaffected.
    pub fn sa_config(self, seed: u64) -> SaConfig {
        let proposals = std::env::var("ALMOST_PROPOSALS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or(1);
        match self {
            Scale::Quick => SaConfig {
                iterations: 7,
                proposals,
                seed,
                ..SaConfig::default()
            },
            Scale::Paper => SaConfig {
                iterations: 100,
                proposals,
                seed,
                ..SaConfig::default()
            },
        }
    }

    /// Size of the "random set" used in Table I.
    pub fn random_set_size(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Paper => 1000,
        }
    }

    /// Key bits actually evaluated by the per-bit attacks (SCOPE and the
    /// redundancy attack specialise + synthesise per bit, so quick mode
    /// samples a subset).
    pub fn attack_bit_sample(self) -> Option<usize> {
        match self {
            Scale::Quick => Some(8),
            Scale::Paper => None,
        }
    }

    /// Key sizes evaluated (the paper uses 64 and 128).
    pub fn key_sizes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[64],
            Scale::Paper => &[64, 128],
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // (Does not consult the env var, to stay hermetic.)
        let s = Scale::Quick;
        assert_eq!(s.label(), "quick");
        assert!(s.proxy_config(1).initial_samples < 500);
    }

    #[test]
    fn paper_scale_matches_section_iv_a() {
        let cfg = Scale::Paper.proxy_config(0);
        assert_eq!(cfg.initial_samples, 1000);
        assert_eq!(cfg.augment_samples, 200);
        assert_eq!(cfg.epochs, 350);
        assert_eq!(cfg.period, 50);
        let sa = Scale::Paper.sa_config(0);
        assert_eq!(sa.iterations, 100);
        assert_eq!(sa.initial_temperature, 120.0);
        assert_eq!(sa.acceptance, 1.8);
        assert_eq!(Scale::Paper.random_set_size(), 1000);
        assert_eq!(Scale::Paper.key_sizes(), &[64, 128]);
    }
}
