//! The end-to-end ALMOST flow (Fig. 3): lock → adversarially train M\* →
//! security-aware SA recipe search → deploy.

use crate::proxy::{train_proxy, ProxyConfig, ProxyKind, ProxyModel};
use crate::recipe::Recipe;
use crate::sa::SaConfig;
use crate::security::{generate_secure_recipe, SecurityResult};
use almost_aig::Aig;
use almost_locking::{LockError, LockedCircuit, LockingScheme, Rll};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// End-to-end pipeline configuration.
#[derive(Clone, Debug)]
pub struct AlmostConfig {
    /// Key size for the initial RLL locking.
    pub key_size: usize,
    /// Proxy-model kind used as the SA evaluator (the paper recommends
    /// [`ProxyKind::Adversarial`]).
    pub proxy_kind: ProxyKind,
    /// Proxy training configuration.
    pub proxy: ProxyConfig,
    /// Recipe-search annealer configuration.
    pub sa: SaConfig,
    /// Locking seed.
    pub seed: u64,
}

impl Default for AlmostConfig {
    fn default() -> Self {
        AlmostConfig {
            key_size: 64,
            proxy_kind: ProxyKind::Adversarial,
            proxy: ProxyConfig::default(),
            sa: SaConfig::default(),
            seed: 0xA1,
        }
    }
}

/// Everything the pipeline produces.
#[derive(Clone, Debug)]
pub struct AlmostOutcome {
    /// The locked circuit (with ground-truth key).
    pub locked: LockedCircuit,
    /// The trained proxy model.
    pub proxy: ProxyModel,
    /// The security-aware recipe (S_ALMOST).
    pub recipe: Recipe,
    /// The deployed netlist: `recipe` applied to the locked circuit.
    pub deployed: Aig,
    /// The recipe-search result (accuracy series etc.).
    pub search: SecurityResult,
}

/// Runs the full ALMOST flow on `design`.
///
/// # Errors
///
/// Returns [`LockError`] if the design is too small for the configured
/// key size.
pub fn run_almost(design: &Aig, config: &AlmostConfig) -> Result<AlmostOutcome, LockError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let locked = Rll::new(config.key_size).lock(design, &mut rng)?;
    let proxy = train_proxy(&locked, config.proxy_kind, &config.proxy);
    let search = generate_secure_recipe(&locked, &proxy, &config.sa);
    let deployed = search.recipe.apply(&locked.aig);
    Ok(AlmostOutcome {
        locked,
        proxy,
        recipe: search.recipe.clone(),
        deployed,
        search,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_attacks::subgraph::SubgraphConfig;
    use almost_circuits::IscasBenchmark;
    use almost_locking::apply_key;

    fn quick() -> AlmostConfig {
        AlmostConfig {
            key_size: 16,
            proxy_kind: ProxyKind::Adversarial,
            proxy: ProxyConfig {
                initial_samples: 48,
                augment_samples: 16,
                epochs: 10,
                period: 5,
                hidden: 8,
                subgraph: SubgraphConfig {
                    hops: 2,
                    max_nodes: 24,
                },
                adversarial_sa: SaConfig {
                    iterations: 3,
                    seed: 2,
                    ..SaConfig::default()
                },
                ..ProxyConfig::default()
            },
            sa: SaConfig {
                iterations: 5,
                seed: 3,
                ..SaConfig::default()
            },
            seed: 4,
        }
    }

    #[test]
    fn pipeline_end_to_end_preserves_function() {
        let design = IscasBenchmark::C432.build();
        let outcome = run_almost(&design, &quick()).expect("runs");
        // The deployed netlist under the correct key equals the design.
        let restored = apply_key(
            &outcome.deployed,
            outcome.locked.key_input_start,
            outcome.locked.key.bits(),
        );
        assert!(almost_aig::sim::probably_equivalent(
            &design, &restored, 16, 8
        ));
        assert_eq!(outcome.recipe.len(), 10);
    }

    #[test]
    fn pipeline_rejects_tiny_designs() {
        let mut tiny = Aig::new();
        let a = tiny.add_input();
        let b = tiny.add_input();
        let f = tiny.and(a, b);
        tiny.add_output(f);
        assert!(run_almost(&tiny, &quick()).is_err());
    }
}
