//! Attacker re-synthesis with PPA objectives (the paper's §IV-E, Fig. 5).
//!
//! After ALMOST deploys a security-aware netlist, an attacker may
//! re-synthesise it for area or delay — the "typical" synthesis goals —
//! hoping accuracy correlates with the optimisation and leads back to a
//! learnable structure. This module runs that experiment: SA minimising
//! mapped area or delay, recording the proxy-model attack accuracy and the
//! PPA ratio (vs. a baseline) at every iteration.

use crate::engine::{EngineStats, MappedPpaObjective, SearchEngine};
use crate::proxy::ProxyModel;
use crate::recipe::Recipe;
use crate::sa::SaConfig;
use almost_locking::LockedCircuit;
use almost_netlist::{CellLibrary, PpaReport};

/// Which PPA metric the attacker minimises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PpaObjective {
    /// Minimise critical-path delay.
    Delay,
    /// Minimise cell area.
    Area,
}

impl PpaObjective {
    /// Extracts the objective value from a report.
    pub fn of(self, report: &PpaReport) -> f64 {
        match self {
            PpaObjective::Delay => report.delay,
            PpaObjective::Area => report.area,
        }
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            PpaObjective::Delay => "delay",
            PpaObjective::Area => "area",
        }
    }
}

/// One Fig. 5 trace point.
#[derive(Clone, Copy, Debug)]
pub struct PpaTracePoint {
    /// Proxy-predicted attack accuracy of the re-synthesised netlist.
    pub accuracy: f64,
    /// PPA metric of this candidate divided by the baseline metric.
    pub ratio: f64,
}

/// Result of the re-synthesis experiment.
#[derive(Clone, Debug)]
pub struct ResynthesisResult {
    /// Best recipe found by the attacker's PPA search.
    pub recipe: Recipe,
    /// Per-iteration (accuracy, ratio) series — the Fig. 5 curves.
    pub series: Vec<PpaTracePoint>,
    /// Pearson correlation between accuracy and ratio over the series
    /// (the paper's point: there is *no* usable correlation).
    pub correlation: f64,
    /// Engine counters: synthesis-cache behaviour and candidate
    /// throughput.
    pub engine: EngineStats,
}

/// Runs the attacker's PPA-driven re-synthesis search.
///
/// * `deployed` — the ALMOST-synthesised netlist (inside `locked.aig`'s
///   interface, carried by the caller as a [`LockedCircuit`] whose `aig`
///   *is* the deployed netlist).
/// * `baseline` — the PPA report the ratios are normalised against
///   (the paper uses resyn2's numbers).
pub fn resynthesis_search(
    deployed: &LockedCircuit,
    proxy: &ProxyModel,
    objective: PpaObjective,
    baseline: &PpaReport,
    library: &CellLibrary,
    sa: &SaConfig,
) -> ResynthesisResult {
    let search_objective = MappedPpaObjective {
        accuracy_with: Some((deployed, proxy)),
        metric: objective,
        baseline,
        library,
        analysis_seed: 11,
    };
    let mut engine = SearchEngine::new(deployed.aig.clone(), &search_objective);
    let run = engine.anneal(Recipe::resyn2(), sa);
    let series: Vec<PpaTracePoint> = run
        .scores
        .iter()
        .map(|s| PpaTracePoint {
            accuracy: s.accuracy.expect("ppa objective records accuracy"),
            ratio: match objective {
                PpaObjective::Delay => s.delay_ratio,
                PpaObjective::Area => s.area_ratio,
            }
            .expect("ppa objective records ratios"),
        })
        .collect();
    let correlation = pearson(
        &series.iter().map(|p| p.accuracy).collect::<Vec<_>>(),
        &series.iter().map(|p| p.ratio).collect::<Vec<_>>(),
    );
    ResynthesisResult {
        recipe: run.best,
        series,
        correlation,
        engine: engine.stats(),
    }
}

/// Pearson correlation coefficient (0 when degenerate).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 1e-12 || vy <= 1e-12 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{train_proxy, ProxyConfig, ProxyKind};
    use almost_attacks::subgraph::SubgraphConfig;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};
    use almost_netlist::{analyze, map_aig, MapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn resynthesis_search_produces_series() {
        let mut rng = StdRng::seed_from_u64(5);
        let locked = Rll::new(12)
            .lock(&IscasBenchmark::C432.build(), &mut rng)
            .expect("lockable");
        let proxy_cfg = ProxyConfig {
            initial_samples: 48,
            epochs: 8,
            period: 8,
            hidden: 8,
            subgraph: SubgraphConfig {
                hops: 2,
                max_nodes: 24,
            },
            ..ProxyConfig::default()
        };
        let proxy = train_proxy(&locked, ProxyKind::Resyn2, &proxy_cfg);
        let lib = CellLibrary::nangate45();
        let baseline_aig = Recipe::resyn2().apply(&locked.aig);
        let baseline_nl = map_aig(&baseline_aig, &lib, &MapConfig::no_opt());
        let baseline = analyze(&baseline_nl, &baseline_aig, &lib, 4, 1);
        let sa = SaConfig {
            iterations: 4,
            seed: 6,
            ..SaConfig::default()
        };
        for objective in [PpaObjective::Delay, PpaObjective::Area] {
            let result = resynthesis_search(&locked, &proxy, objective, &baseline, &lib, &sa);
            assert_eq!(result.series.len(), 4);
            for p in &result.series {
                assert!(p.ratio > 0.0);
                assert!((0.0..=1.0).contains(&p.accuracy));
            }
            assert!(result.correlation.abs() <= 1.0);
            assert_eq!(result.engine.candidates, 5, "initial + one per step");
        }
    }
}
