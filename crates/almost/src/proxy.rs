//! Attacker proxy models: M_resyn2, M_random and the adversarially trained
//! M\* of Algorithm 1.
//!
//! ALMOST's recipe search (Eq. 1) needs to evaluate the attack accuracy of
//! *arbitrary* recipes without retraining an attack model per candidate
//! (Fig. 2). The paper compares three evaluators:
//!
//! - **M_resyn2** — trained on re-locked circuits re-synthesised with the
//!   defender's baseline recipe only; accurate there, poor elsewhere.
//! - **M_random** — trained on random recipes; broader but noisy.
//! - **M\*** — adversarially re-trained (Algorithm 1): every `R` epochs an
//!   SA search finds the recipe that *maximises* the current model's loss
//!   (Eq. 3–5), and localities synthesised with that recipe are added to
//!   the training set (the min–max objective of Eq. 6).

use crate::engine::{Score, SearchEngine, SearchObjective};
use crate::recipe::{Recipe, RECIPE_LENGTH};
use crate::sa::SaConfig;
use almost_aig::Aig;
use almost_attacks::subgraph::{extract_all_localities, SubgraphConfig, NUM_FEATURES};
use almost_locking::{relock, LockedCircuit, Rll};
use almost_ml::gin::{GinClassifier, Graph};
use almost_ml::tape::softplus;
use almost_ml::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which training distribution a proxy model was built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProxyKind {
    /// Trained on the defender's baseline recipe only.
    Resyn2,
    /// Trained on uniformly random recipes.
    Random,
    /// Adversarially re-trained (Algorithm 1).
    Adversarial,
}

impl ProxyKind {
    /// Display name matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            ProxyKind::Resyn2 => "M_resyn2",
            ProxyKind::Random => "M_random",
            ProxyKind::Adversarial => "M*",
        }
    }
}

/// Proxy-model training configuration (§IV-A defaults, scaled via
/// [`crate::config::Scale`]).
#[derive(Clone, Copy, Debug)]
pub struct ProxyConfig {
    /// Initial training-set size (paper: 1000).
    pub initial_samples: usize,
    /// Adversarial samples added per augmentation (paper: 200).
    pub augment_samples: usize,
    /// Total training epochs (paper: 350).
    pub epochs: usize,
    /// Augmentation periodicity R (paper: 50).
    pub period: usize,
    /// Key gates inserted per re-lock round.
    pub relock_key_size: usize,
    /// GIN hidden width.
    pub hidden: usize,
    /// GIN rounds.
    pub layers: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Locality shape.
    pub subgraph: SubgraphConfig,
    /// SA budget for the inner adversarial-recipe search.
    pub adversarial_sa: SaConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            initial_samples: 240,
            augment_samples: 48,
            epochs: 90,
            period: 30,
            relock_key_size: 24,
            hidden: 24,
            layers: 2,
            batch_size: 32,
            learning_rate: 5e-3,
            subgraph: SubgraphConfig::default(),
            adversarial_sa: SaConfig {
                iterations: 10,
                seed: 0xADF,
                ..SaConfig::default()
            },
            seed: 0xA1507,
        }
    }
}

/// A trained proxy model: predicts attack accuracy for any synthesised
/// deployment of the locked circuit.
#[derive(Clone, Debug)]
pub struct ProxyModel {
    kind: ProxyKind,
    classifier: GinClassifier,
    subgraph: SubgraphConfig,
}

impl ProxyModel {
    /// Which distribution this proxy was trained on.
    pub fn kind(&self) -> ProxyKind {
        self.kind
    }

    /// The underlying GIN classifier.
    pub fn classifier(&self) -> &GinClassifier {
        &self.classifier
    }

    /// Predicted attack accuracy on a deployment of `locked` (a
    /// synthesised version with the same input interface): fraction of key
    /// bits the model recovers.
    pub fn predict_accuracy(&self, locked: &LockedCircuit, deployed: &Aig) -> f64 {
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let graphs =
            extract_all_localities(deployed, &positions, locked.key.bits(), &self.subgraph);
        self.classifier.accuracy(&graphs)
    }

    /// Predicted attack accuracy for a whole batch of deployments at
    /// once: locality extraction fans out per candidate on the worker
    /// pool, then *all* candidates' localities are fused into one
    /// block-diagonal [`GinClassifier::forward_batch`] evaluation — one
    /// spmm per GIN round for the entire proposal batch.
    ///
    /// Entry `b` is bit-identical to
    /// [`ProxyModel::predict_accuracy`]`(locked, &deployed[b])` (the
    /// batched forward's row-independence contract carries through the
    /// 0.5 threshold), which is what lets the search engine score `K`
    /// simulated-annealing proposals per step without perturbing the
    /// serial trace.
    pub fn predict_accuracy_batch(
        &self,
        locked: &LockedCircuit,
        deployed: &[Arc<Aig>],
    ) -> Vec<f64> {
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let groups: Vec<Vec<Graph>> = almost_pool::map_indexed(deployed.to_vec(), |_, aig| {
            extract_all_localities(&aig, &positions, locked.key.bits(), &self.subgraph)
        });
        let refs: Vec<&Graph> = groups.iter().flatten().collect();
        let probs = self.classifier.predict_probs_batch(&refs);
        let mut offset = 0;
        groups
            .iter()
            .map(|graphs| {
                if graphs.is_empty() {
                    return 0.0;
                }
                let correct = graphs
                    .iter()
                    .zip(&probs[offset..offset + graphs.len()])
                    .filter(|(g, &p)| (p >= 0.5) == g.label)
                    .count();
                offset += graphs.len();
                correct as f64 / graphs.len() as f64
            })
            .collect()
    }

    /// Mean BCE loss of the model over labelled localities (Eq. 3's inner
    /// objective).
    pub fn mean_loss(&self, graphs: &[Graph]) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        // One reused tape across the probe batch (the SA inner loop calls
        // this per candidate recipe — no per-graph allocation).
        let mut tape = almost_ml::tape::Tape::new();
        let mut total = 0.0f64;
        for g in graphs {
            let p = self.classifier.predict_with(&mut tape, g);
            // Reconstruct logit-space BCE from the probability (clamped).
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            let z = (p / (1.0 - p)).ln();
            let y = g.label as u8 as f32;
            total += (softplus(z) - y * z) as f64;
        }
        total / graphs.len() as f64
    }
}

/// Algorithm 1's inner objective (Eq. 3): the *negated* mean proxy loss
/// on a re-locked probe — the engine minimises, so the adversarial
/// search maximises the loss. Candidates score independently and fan out
/// on the worker pool; the per-graph loss path is kept bit-identical to
/// the pre-engine closure so adversarial training trajectories are
/// unchanged.
struct AdversarialLossObjective<'a> {
    snapshot: &'a ProxyModel,
    probe: &'a LockedCircuit,
    positions: &'a [usize],
}

impl SearchObjective for AdversarialLossObjective<'_> {
    fn score_batch(&self, candidates: &[std::sync::Arc<Aig>]) -> Vec<Score> {
        almost_pool::map_indexed(candidates.to_vec(), |_, synthesised| {
            let graphs = extract_all_localities(
                &synthesised,
                self.positions,
                self.probe.key.bits(),
                &self.snapshot.subgraph,
            );
            Score::plain(-self.snapshot.mean_loss(&graphs))
        })
    }
}

/// Generates labelled localities: re-lock, synthesise with a recipe drawn
/// from `next_recipe`, extract the new key gates' subgraphs.
pub fn generate_samples(
    base: &Aig,
    mut next_recipe: impl FnMut(&mut StdRng) -> Recipe,
    count: usize,
    relock_key_size: usize,
    subgraph: &SubgraphConfig,
    rng: &mut StdRng,
) -> Vec<Graph> {
    let scheme = Rll::new(relock_key_size);
    let mut data = Vec::with_capacity(count);
    while data.len() < count {
        let Ok(relocked) = relock(&scheme, base, rng) else {
            break;
        };
        let recipe = next_recipe(rng);
        let synthesised = recipe.apply(&relocked.aig);
        let positions: Vec<usize> = relocked.key_input_positions().collect();
        data.extend(extract_all_localities(
            &synthesised,
            &positions,
            relocked.key.bits(),
            subgraph,
        ));
    }
    data.truncate(count);
    data
}

/// Trains a proxy model of the given kind on `locked` (Algorithm 1 for
/// [`ProxyKind::Adversarial`]).
pub fn train_proxy(locked: &LockedCircuit, kind: ProxyKind, config: &ProxyConfig) -> ProxyModel {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let base = &locked.aig;

    // Initial dataset.
    let mut data = match kind {
        ProxyKind::Resyn2 => generate_samples(
            base,
            |_| Recipe::resyn2(),
            config.initial_samples,
            config.relock_key_size,
            &config.subgraph,
            &mut rng,
        ),
        ProxyKind::Random | ProxyKind::Adversarial => generate_samples(
            base,
            |r| Recipe::random(RECIPE_LENGTH, r),
            config.initial_samples,
            config.relock_key_size,
            &config.subgraph,
            &mut rng,
        ),
    };

    let mut classifier =
        GinClassifier::new(NUM_FEATURES, config.hidden, config.layers, config.seed);

    if kind != ProxyKind::Adversarial {
        train(
            &mut classifier,
            &data,
            &TrainConfig {
                epochs: config.epochs,
                batch_size: config.batch_size,
                learning_rate: config.learning_rate,
                seed: config.seed ^ 0x7EA1,
            },
        );
        return ProxyModel {
            kind,
            classifier,
            subgraph: config.subgraph,
        };
    }

    // Algorithm 1: train in R-epoch rounds, augmenting with adversarial
    // recipes between rounds.
    let rounds = config.epochs.div_ceil(config.period.max(1));
    for round in 0..rounds {
        let epochs_this_round = config.period.min(config.epochs - round * config.period);
        train(
            &mut classifier,
            &data,
            &TrainConfig {
                epochs: epochs_this_round,
                batch_size: config.batch_size,
                learning_rate: config.learning_rate,
                seed: config.seed ^ (round as u64) << 8,
            },
        );
        if round + 1 == rounds {
            break;
        }
        // Line 6: s* = SA maximising the current model's loss (Eq. 3).
        // The loss of a candidate recipe is estimated on one re-locked,
        // re-synthesised probe batch.
        let probe = relock(&Rll::new(config.relock_key_size), base, &mut rng)
            .expect("circuit was lockable before");
        let probe_positions: Vec<usize> = probe.key_input_positions().collect();
        let snapshot = ProxyModel {
            kind,
            classifier: classifier.clone(),
            subgraph: config.subgraph,
        };
        let mut eval_rng = StdRng::seed_from_u64(config.seed ^ 0xCAFE ^ round as u64);
        let mut sa_cfg = config.adversarial_sa;
        sa_cfg.seed ^= round as u64;
        let objective = AdversarialLossObjective {
            snapshot: &snapshot,
            probe: &probe,
            positions: &probe_positions,
        };
        let mut inner = SearchEngine::new(probe.aig.clone(), &objective);
        let s_star = inner
            .anneal(Recipe::random(RECIPE_LENGTH, &mut eval_rng), &sa_cfg)
            .best;
        // Lines 7: augment the training data with s*-synthesised samples.
        let augmented = generate_samples(
            base,
            |_| s_star.clone(),
            config.augment_samples,
            config.relock_key_size,
            &config.subgraph,
            &mut rng,
        );
        data.extend(augmented);
    }

    ProxyModel {
        kind,
        classifier,
        subgraph: config.subgraph,
    }
}

/// Mean predicted accuracy of `model` over `n` random-recipe deployments
/// of `locked` — the paper's "random set" column in Table I.
pub fn accuracy_on_random_set(
    model: &ProxyModel,
    locked: &LockedCircuit,
    n: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..n {
        let recipe = Recipe::random(RECIPE_LENGTH, &mut rng);
        let deployed = recipe.apply(&locked.aig);
        total += model.predict_accuracy(locked, &deployed);
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_circuits::IscasBenchmark;
    use almost_locking::LockingScheme;

    fn tiny_config() -> ProxyConfig {
        ProxyConfig {
            initial_samples: 72,
            augment_samples: 24,
            epochs: 20,
            period: 10,
            relock_key_size: 24,
            hidden: 12,
            layers: 2,
            batch_size: 24,
            learning_rate: 8e-3,
            subgraph: SubgraphConfig {
                hops: 3,
                max_nodes: 32,
            },
            adversarial_sa: SaConfig {
                iterations: 4,
                seed: 1,
                ..SaConfig::default()
            },
            seed: 5,
        }
    }

    fn locked_c432() -> LockedCircuit {
        let mut rng = StdRng::seed_from_u64(2);
        Rll::new(16)
            .lock(&IscasBenchmark::C432.build(), &mut rng)
            .expect("lockable")
    }

    #[test]
    fn resyn2_proxy_trains_and_predicts() {
        let locked = locked_c432();
        let model = train_proxy(&locked, ProxyKind::Resyn2, &tiny_config());
        assert_eq!(model.kind(), ProxyKind::Resyn2);
        let deployed = Recipe::resyn2().apply(&locked.aig);
        let acc = model.predict_accuracy(&locked, &deployed);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn adversarial_proxy_runs_algorithm_1() {
        let locked = locked_c432();
        let model = train_proxy(&locked, ProxyKind::Adversarial, &tiny_config());
        assert_eq!(model.kind(), ProxyKind::Adversarial);
        let deployed = Recipe::resyn2().apply(&locked.aig);
        let acc = model.predict_accuracy(&locked, &deployed);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn batched_accuracy_matches_serial_prediction_bitwise() {
        let locked = locked_c432();
        let model = train_proxy(&locked, ProxyKind::Resyn2, &tiny_config());
        let mut rng = StdRng::seed_from_u64(17);
        let deployed: Vec<Arc<Aig>> = (0..3)
            .map(|_| Arc::new(Recipe::random(RECIPE_LENGTH, &mut rng).apply(&locked.aig)))
            .collect();
        let batched = model.predict_accuracy_batch(&locked, &deployed);
        assert_eq!(batched.len(), 3);
        for (aig, &acc) in deployed.iter().zip(&batched) {
            assert_eq!(
                acc,
                model.predict_accuracy(&locked, aig),
                "fused batch entry must equal the serial prediction"
            );
        }
        assert!(model.predict_accuracy_batch(&locked, &[]).is_empty());
    }

    #[test]
    fn random_set_accuracy_is_bounded() {
        let locked = locked_c432();
        let model = train_proxy(&locked, ProxyKind::Random, &tiny_config());
        let acc = accuracy_on_random_set(&model, &locked, 3, 9);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn mean_loss_decreases_with_confidence() {
        let locked = locked_c432();
        let model = train_proxy(&locked, ProxyKind::Resyn2, &tiny_config());
        let deployed = Recipe::resyn2().apply(&locked.aig);
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let graphs = extract_all_localities(
            &deployed,
            &positions,
            locked.key.bits(),
            &tiny_config().subgraph,
        );
        let loss = model.mean_loss(&graphs);
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ProxyKind::Resyn2.label(), "M_resyn2");
        assert_eq!(ProxyKind::Random.label(), "M_random");
        assert_eq!(ProxyKind::Adversarial.label(), "M*");
    }
}
