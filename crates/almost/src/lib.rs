//! ALMOST: Adversarial Learning to Mitigate Oracle-less ML Attacks via
//! Synthesis Tuning (DAC 2023) — the paper's primary contribution.
//!
//! ALMOST is *security-aware logic synthesis*: keep the weakest locking
//! scheme (RLL) and search the synthesis-recipe space for recipes that
//! push oracle-less attack accuracy to ~50% (random guessing) while
//! leaving PPA essentially untouched. The two components:
//!
//! 1. **Recipe search** ([`security`], Eq. 1): simulated annealing
//!    ([`sa`]) over fixed-length recipes ([`recipe`], L = 10, seven ABC
//!    transformations) minimising `|acc − 0.5|`.
//! 2. **Adversarially trained proxy M\*** ([`proxy`], Algorithm 1): a GIN
//!    key-bit classifier that predicts attack accuracy for any recipe,
//!    trained with every-R-epochs adversarial recipe augmentation (the
//!    min–max objective of Eq. 6).
//!
//! Every search (security, PPA re-synthesis, joint, RL episodes, the
//! adversarial inner loop) runs on the unified batched engine in
//! [`engine`]: a recipe-trie synthesis cache sharing intermediates
//! across sibling proposals, pool-parallel candidate synthesis, and
//! batch-fused GIN scoring behind one [`engine::SearchObjective`] trait.
//!
//! [`pipeline::run_almost`] glues the full Fig.-3 flow together;
//! [`ppa_opt`] reproduces the attacker-re-synthesis study (Fig. 5);
//! [`config::Scale`] switches between laptop-quick and paper-scale
//! hyperparameters.
//!
//! # Example
//!
//! ```no_run
//! use almost_core::pipeline::{run_almost, AlmostConfig};
//! use almost_circuits::IscasBenchmark;
//!
//! let design = IscasBenchmark::C1355.build();
//! let outcome = run_almost(&design, &AlmostConfig::default()).expect("lockable");
//! println!("S_ALMOST = {}", outcome.recipe);
//! println!("predicted attack accuracy = {:.1}%", outcome.search.accuracy * 100.0);
//! ```

pub mod config;
pub mod engine;
pub mod multi_objective;
pub mod pipeline;
pub mod ppa_opt;
pub mod proxy;
pub mod recipe;
pub mod rl;
pub mod sa;
pub mod security;

pub use config::Scale;
pub use engine::{
    EngineRun, EngineStats, MappedPpaObjective, ProxyAccuracyObjective, Score, SearchEngine,
    SearchObjective, WeightedJointObjective,
};
pub use multi_objective::{joint_search, JointResult, JointWeights};
pub use pipeline::{run_almost, AlmostConfig, AlmostOutcome};
pub use ppa_opt::{resynthesis_search, PpaObjective, ResynthesisResult};
pub use proxy::{accuracy_on_random_set, train_proxy, ProxyConfig, ProxyKind, ProxyModel};
pub use recipe::{Recipe, RecipeTrie, TrieStats, RECIPE_LENGTH, TRIE_NODE_BUDGET};
pub use rl::{reinforce, RecipePolicy, ReinforceConfig, ReinforceResult};
pub use sa::{anneal, SaConfig, SaTrace};
pub use security::{generate_secure_recipe, SecurityResult};
